"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` serves every bench in the session, so heavy
intermediates (datasets, matcher sweeps, tuned blocking) are computed once.
Matcher sweeps additionally persist to ``.benchcache/`` in the repository
root — delete that directory to force a full re-run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner

#: Scale of all benchmark runs: 1.0 = the CI-scale dataset sizes.
BENCH_SIZE_FACTOR = 1.0


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    cache_dir = Path(__file__).resolve().parent.parent / ".benchcache"
    return ExperimentRunner(
        size_factor=BENCH_SIZE_FACTOR, seed=0, cache_dir=cache_dir
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
