"""Scale-mode benchmark: streaming sharded sweep throughput at 10^5–10^6.

Runs ``repro.scale`` sweeps at growing record counts with a fixed shard
size and records the records/sec trajectory to ``BENCH_scale.json``.
Because the shard size is constant, per-shard work is constant — the
trajectory is the proof that the streaming path scales linearly instead
of super-linearly (no dataset-sized state accumulates across shards).
Each point must clear ``RATE_FLOOR`` records/sec and keep blocking
recall above ``PC_FLOOR`` and end-to-end F1 above ``F1_FLOOR``;
``scripts/verify.sh`` re-checks the recorded floors in its scale stage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.runtime.guard import read_rss_mb
from repro.scale import ScaleConfig, ShardedSweep

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
DATASET = "Ds2"
SHARD_SIZE = 10_000
RECORD_COUNTS = (100_000, 316_000, 1_000_000)
SEED = 0

#: End-to-end (generate + block + match + checkpoint) records/sec every
#: trajectory point must clear. Measured ~6k on a dev container; the
#: floor leaves headroom for slower CI machines.
RATE_FLOOR = 1000.0
#: Per-shard LSH blocking recall stays shard-local, so it must not decay
#: with the record count.
PC_FLOOR = 0.9
F1_FLOOR = 0.6


@pytest.mark.scale_bench
def test_scale_throughput_trajectory(tmp_path):
    trajectory = []
    for records in RECORD_COUNTS:
        config = ScaleConfig(
            dataset_id=DATASET,
            records=records,
            shard_size=SHARD_SIZE,
            blocker="lsh",
            matcher="SA",
            seed=SEED,
        )
        start = time.perf_counter()
        report = ShardedSweep(config, cache_dir=tmp_path / str(records)).run()
        wall = time.perf_counter() - start
        assert report.complete
        trajectory.append({
            "records": report.n_records,
            "n_shards": report.n_shards,
            "wall_seconds": round(wall, 2),
            "records_per_sec": round(report.n_records / wall, 1),
            "pair_completeness": round(report.pair_completeness, 4),
            "pairs_quality": round(report.pairs_quality, 4),
            "f1": round(report.f1, 4),
            "rss_mb": round(rss, 1) if (rss := read_rss_mb()) else None,
        })

    record = {
        "dataset": DATASET,
        "shard_size": SHARD_SIZE,
        "seed": SEED,
        "blocker": "lsh",
        "matcher": "SA",
        "rate_floor": RATE_FLOOR,
        "pc_floor": PC_FLOOR,
        "f1_floor": F1_FLOOR,
        "cpu_count": os.cpu_count(),
        "trajectory": trajectory,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    for point in trajectory:
        records = point["records"]
        assert point["records_per_sec"] >= RATE_FLOOR, (
            f"{records} records: {point['records_per_sec']} records/sec "
            f"below the {RATE_FLOOR} floor"
        )
        assert point["pair_completeness"] >= PC_FLOOR, (
            f"{records} records: PC {point['pair_completeness']} below "
            f"{PC_FLOOR}"
        )
        assert point["f1"] >= F1_FLOOR, (
            f"{records} records: F1 {point['f1']} below {F1_FLOOR}"
        )
