"""Ablation: negative-pair sampling strategy drives benchmark difficulty.

DESIGN.md calls out negative sampling as the central lever behind the
difficulty of the established benchmarks: random negatives emulate loose
blocking (easy, linearly separable candidate sets), nearest-neighbour
negatives emulate strict blocking (hard). This bench sweeps the hard
fraction on one generated source pair and checks that the degree of
linearity decreases monotonically-ish with it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.linearity import degree_of_linearity
from repro.datasets import load_source_pair
from repro.datasets.generator import build_task_from_sources

HARD_FRACTIONS = (0.0, 0.5, 1.0)


def _sweep():
    sources = load_source_pair("amazon_google")
    linearity = {}
    for hard_fraction in HARD_FRACTIONS:
        task = build_task_from_sources(
            sources,
            n_pairs=800,
            positive_fraction=0.15,
            hard_negative_fraction=hard_fraction,
            seed=13,
            name=f"ablation_h{hard_fraction}",
        )
        linearity[hard_fraction] = degree_of_linearity(task, "cosine").max_f1
    return linearity


def test_sampling_ablation(runner, benchmark):
    linearity = run_once(benchmark, _sweep)
    print()
    for hard_fraction, value in linearity.items():
        print(f"hard_negative_fraction={hard_fraction:.1f}  F1_CS^max={value:.3f}")

    # Loose blocking (random negatives) yields a far more separable task
    # than strict blocking (nearest-neighbour negatives).
    assert linearity[0.0] > linearity[1.0] + 0.1
    # The middle setting sits between the extremes (with slack for noise).
    assert linearity[0.5] <= linearity[0.0] + 0.02
    assert linearity[0.5] >= linearity[1.0] - 0.02
    assert linearity[0.0] == max(linearity.values())
