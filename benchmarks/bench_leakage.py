"""Ablation: train/test entity leakage (the finding of Wang et al. [13]).

The paper credits one prior critique of these benchmarks: a large portion
of entities is shared between training and testing sets, and performance
drops on unseen test entities. This bench measures the leakage rate of the
established benchmarks and reproduces the performance drop: a deep matcher
retrained on a record-disjoint (unseen-entity) re-split scores no better —
and typically worse — than on the standard random split.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.leakage import entity_leakage, unseen_entity_split
from repro.datasets import load_established_task
from repro.matchers.deep import EMTransformerNet

LEAKAGE_DATASETS = ("Ds1", "Ds4", "Ds6")


def _sweep():
    outcome = {}
    for dataset_id in LEAKAGE_DATASETS:
        task = load_established_task(dataset_id)
        outcome[dataset_id] = entity_leakage(task).leakage_rate

    # The performance drop on one easy dataset: standard vs unseen split.
    task = load_established_task("Ds1")
    standard = EMTransformerNet("B", epochs=15).evaluate(task)
    unseen_task = unseen_entity_split(task, seed=3)
    unseen = EMTransformerNet("B", epochs=15).evaluate(unseen_task)
    outcome["f1_standard"] = standard.f1
    outcome["f1_unseen"] = unseen.f1
    return outcome


def test_entity_leakage(runner, benchmark):
    outcome = run_once(benchmark, _sweep)
    print()
    for dataset_id in LEAKAGE_DATASETS:
        print(f"{dataset_id}: leakage rate = {outcome[dataset_id]:.2f}")
    print(
        f"Ds1 EMTransformer-B F1: standard split {outcome['f1_standard']:.3f} "
        f"vs unseen-entity split {outcome['f1_unseen']:.3f}"
    )

    # Random pair splits leak entities heavily, as [13] reported.
    for dataset_id in LEAKAGE_DATASETS:
        assert outcome[dataset_id] > 0.3, dataset_id

    # Removing the leakage does not help — the standard split's score is
    # inflated (or at best equal).
    assert outcome["f1_unseen"] <= outcome["f1_standard"] + 0.02
