"""ANN blocking benchmark: tuned LSH vs the exhaustive q-gram baseline.

Runs the provenance sweep on the largest generated profile
(``dblp_scholar`` at CI scale) and records the recall/cost trade-off to
``BENCH_ann.json``: the tuned LSH backend must reach pair completeness
>= ``PC_FLOOR`` while keeping at least ``REDUCTION_FLOOR``x fewer
candidate pairs than the exhaustive :class:`QGramBlocker` baseline, and
the winning configuration must be bit-deterministic across runs.
``scripts/verify.sh`` re-checks the recorded floors in its ANN stage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.blocking import AnnBlocker, QGramBlocker, evaluate_blocking, tune_ann
from repro.blocking.ann import AnnConfig
from repro.datasets.sources import build_source_pair

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_ann.json"
DATASET = "dblp_scholar"
SCALE = 1.0
SEED = 0
PC_FLOOR = 0.9
REDUCTION_FLOOR = 10.0


def _measure(label: str, candidate_fn, sources) -> dict:
    start = time.perf_counter()
    candidates = candidate_fn()
    seconds = time.perf_counter() - start
    result = evaluate_blocking(candidates, sources)
    cross = len(sources.left) * len(sources.right)
    return {
        "backend": label,
        "pair_completeness": round(result.pair_completeness, 4),
        "pairs_quality": round(result.pairs_quality, 4),
        "n_candidates": result.n_candidates,
        "cssr": round(result.n_candidates / cross, 6) if cross else 0.0,
        "seconds": round(seconds, 3),
    }


@pytest.mark.ann_bench
def test_ann_blocking_cost_and_recall():
    sources = build_source_pair(DATASET, SCALE)
    cross = len(sources.left) * len(sources.right)

    exhaustive_blocker = QGramBlocker(q=3)
    exhaustive = _measure(
        "exhaustive",
        lambda: exhaustive_blocker.candidates(sources),
        sources,
    )

    tune_start = time.perf_counter()
    tuned = tune_ann(sources, recall_target=PC_FLOOR, seed=SEED)
    tune_seconds = time.perf_counter() - tune_start
    lsh = _measure(
        "lsh", lambda: AnnBlocker(tuned.config).candidates(sources), sources
    )
    lsh["config"] = tuned.config.describe()
    lsh["tune_seconds"] = round(tune_seconds, 3)

    graph = _measure(
        "graph",
        lambda: AnnBlocker(
            AnnConfig(backend="graph", seed=SEED)
        ).candidates(sources),
        sources,
    )

    # Bit-determinism: an identical config on a fresh blocker must
    # regenerate the tuner's exact candidate set.
    rerun = AnnBlocker(tuned.config).candidates(sources)
    deterministic = frozenset(rerun) == tuned.result.candidates

    reduction = (
        exhaustive["n_candidates"] / lsh["n_candidates"]
        if lsh["n_candidates"]
        else float("inf")
    )
    record = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "left_records": len(sources.left),
        "right_records": len(sources.right),
        "n_matches": sources.n_matches,
        "cross_product": cross,
        "pc_floor": PC_FLOOR,
        "reduction_floor": REDUCTION_FLOOR,
        "candidate_reduction": round(reduction, 2),
        "deterministic": deterministic,
        "cpu_count": os.cpu_count(),
        "backends": {
            "exhaustive": exhaustive,
            "lsh": lsh,
            "graph": graph,
        },
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert deterministic, "tuned LSH config is not bit-deterministic"
    assert lsh["pair_completeness"] >= PC_FLOOR, (
        f"tuned LSH recall {lsh['pair_completeness']} below {PC_FLOOR}"
    )
    assert reduction >= REDUCTION_FLOOR, (
        f"LSH examines only {reduction:.1f}x fewer candidates than the "
        f"exhaustive baseline (floor {REDUCTION_FLOOR}x)"
    )
