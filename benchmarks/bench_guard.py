"""Supervision overhead: guarded sweeps vs plain runner, ≤2% budget.

Times the same fresh matcher sweep with the full supervision stack armed
(memory + disk budgets, adaptive deadlines, run lease on a cache-less
runner the lease cannot help) and without, best-of-N interleaved, and
writes the measurements to ``BENCH_guard.json`` in the repository root.
On the healthy path supervision costs one rate-limited resource probe
per unit plus a deadline-model append, so DESIGN.md §7 budgets it at
≤2%; a small absolute guard keeps sub-100ms timing jitter from failing
a run within noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.runner import ExperimentRunner, RunnerConfig

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_guard.json"
SCALE = 0.3
DATASETS = ("Ds5", "Ds7")
REPS = 3
OVERHEAD_BUDGET_PCT = 2.0
#: Absolute slack: differences below this are timing noise, not overhead.
NOISE_FLOOR_SECONDS = 0.1


def _timed(guarded: bool) -> float:
    """Wall seconds of fresh, uncached sweeps with/without supervision."""
    options = (
        dict(
            memory_budget_mb=1_000_000.0,
            disk_reserve_mb=1.0,
            adaptive_deadlines=True,
        )
        if guarded
        else {}
    )
    runner = ExperimentRunner(
        config=RunnerConfig(scale=SCALE, **options)
    )
    start = time.perf_counter()
    runner.sweep_all(DATASETS)
    return time.perf_counter() - start


def test_guard_overhead():
    # Warm-up: the first sweep pays dataset generation and allocator
    # warm-up that would otherwise be billed to whichever mode runs first.
    _timed(False)
    # Interleave the modes so slow drift (thermal, co-tenants) hits both.
    plain_seconds = float("inf")
    guarded_seconds = float("inf")
    for _ in range(REPS):
        plain_seconds = min(plain_seconds, _timed(False))
        guarded_seconds = min(guarded_seconds, _timed(True))
    delta = guarded_seconds - plain_seconds
    overhead_pct = 100.0 * delta / plain_seconds
    within_budget = (
        overhead_pct <= OVERHEAD_BUDGET_PCT or delta <= NOISE_FLOOR_SECONDS
    )

    record = {
        "scale": SCALE,
        "datasets": list(DATASETS),
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "plain_seconds": round(plain_seconds, 4),
        "guarded_seconds": round(guarded_seconds, 4),
        "delta_seconds": round(delta, 4),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        "within_budget": within_budget,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert within_budget, (
        f"supervision overhead {overhead_pct:.2f}% "
        f"({delta:.3f}s) exceeds the 2% budget"
    )
