"""Socket front-end benchmark: overload shedding and admitted tail latency.

Starts a :class:`~repro.serve.frontend.SocketFrontend` over the same
dblp_scholar task :mod:`benchmarks.bench_serve` uses, then drives it at
two operating points and records to ``BENCH_frontend.json``:

* **1x** — one closed-loop client: baseline throughput and p99 latency;
* **4x** — several concurrent closed-loop clients against a deliberately
  small admission queue: sustained overload.

The acceptance contract (ISSUE 9): under ~4x load the front end sheds
excess requests with structured ``overloaded`` responses instead of
queuing unboundedly or crashing, the *admitted* query p99 stays within
``P99_RATIO_CEILING`` of the 1x p99 (admission control protects the work
it accepts), and every admitted answer is bit-identical to the offline
session's answer for the same probe.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.datasets.generator import build_task_from_sources
from repro.datasets.sources import build_source_pair
from repro.serve import FrontendConfig, SocketFrontend, open_session
from repro.serve.loop import ServeLoop

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"
DATASET = "dblp_scholar"
SCALE = 1.0
SEED = 0
K = 5
N_BASELINE = 120
N_WARMUP = 30
N_BURST_CLIENTS = 4
N_PER_BURST_CLIENT = 60
MAX_QUEUE_DEPTH = 2
COALESCE_MAX = 2
P99_RATIO_CEILING = 5.0


def _payload(record) -> dict:
    return {
        "record_id": record.record_id,
        "source": record.source,
        "values": dict(record.values),
    }


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _run_client(address: str, requests: list[dict], out: dict) -> None:
    """One closed-loop client; records latencies per outcome bucket."""
    host, _, port = address.rpartition(":")
    latencies: list[tuple[str, float, dict]] = []
    try:
        sock = socket.create_connection((host, int(port)), timeout=60)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        handle = sock.makefile("r", encoding="utf-8")
        for request in requests:
            line = (json.dumps(request) + "\n").encode("utf-8")
            started = time.perf_counter()
            sock.sendall(line)
            raw = handle.readline()
            elapsed = time.perf_counter() - started
            if not raw:
                latencies.append(("disconnect", elapsed, {}))
                break
            response = json.loads(raw)
            if response.get("ok"):
                bucket = "ok"
            else:
                bucket = response.get("error", "error")
            latencies.append((bucket, elapsed, response))
        sock.close()
    except OSError as exc:
        latencies.append(("oserror", 0.0, {"detail": str(exc)}))
    out[threading.get_ident()] = latencies


@pytest.mark.frontend_bench
def test_frontend_sheds_under_overload_with_bounded_admitted_p99():
    sources = build_source_pair(DATASET, SCALE)
    task = build_task_from_sources(
        sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=SEED,
        name=f"{DATASET}_frontend",
    )
    session = open_session(task, k=K, seed=SEED)
    probes = task.left.records()[:N_BASELINE]
    # The ground truth for parity: the offline session's own answers.
    expected = {
        probe.record_id: result.to_dict()
        for probe, result in zip(probes, session.query_batch(probes, K))
    }

    frontend = SocketFrontend(
        ServeLoop(session),
        listen="127.0.0.1:0",
        # A deliberately tight queue: the point is to force shedding and
        # bound how long any admitted request can wait behind others.
        config=FrontendConfig(
            max_queue_depth=MAX_QUEUE_DEPTH, coalesce_max=COALESCE_MAX
        ),
    )
    frontend.start()
    try:
        address = frontend.address()

        # -- 1x: one closed-loop client ---------------------------------
        requests = [
            {"op": "query", "record": _payload(probe), "k": K}
            for probe in probes
        ]
        # Cold similarity caches inflate the first queries; warm them so
        # the 1x baseline measures steady state.
        warmup_out: dict = {}
        _run_client(address, requests[:N_WARMUP], warmup_out)
        baseline_out: dict = {}
        started = time.perf_counter()
        _run_client(address, requests, baseline_out)
        baseline_seconds = time.perf_counter() - started
        (baseline,) = baseline_out.values()
        baseline_ok = [lat for bucket, lat, _ in baseline if bucket == "ok"]
        assert len(baseline_ok) == N_BASELINE, (
            f"1x load already failing: {len(baseline_ok)}/{N_BASELINE} ok"
        )
        p99_1x = _percentile(baseline_ok, 0.99)
        qps_1x = N_BASELINE / baseline_seconds

        # -- 4x: concurrent closed-loop clients vs a tiny queue ---------
        burst_out: dict = {}
        threads = []
        for client_no in range(N_BURST_CLIENTS):
            client_requests = [
                {
                    "op": "query",
                    "record": _payload(
                        probes[(client_no + 3 * i) % len(probes)]
                    ),
                    "k": K,
                }
                for i in range(N_PER_BURST_CLIENT)
            ]
            threads.append(
                threading.Thread(
                    target=_run_client,
                    args=(address, client_requests, burst_out),
                )
            )
        burst_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        burst_seconds = time.perf_counter() - burst_started
        assert not any(thread.is_alive() for thread in threads)

        outcomes = [entry for client in burst_out.values() for entry in client]
        admitted = [entry for entry in outcomes if entry[0] == "ok"]
        shed = [entry for entry in outcomes if entry[0] == "overloaded"]
        expired = [
            entry for entry in outcomes if entry[0] == "deadline_exceeded"
        ]
        hard_failures = [
            entry
            for entry in outcomes
            if entry[0] in ("disconnect", "oserror", "internal")
        ]
        parity_mismatches = sum(
            1
            for _, _, response in admitted
            if response["result"]
            != expected[response["result"]["query_id"]]
        )
        p99_admitted = _percentile([lat for _, lat, _ in admitted], 0.99)

        # The daemon survived the burst and still answers liveness.
        health_out: dict = {}
        _run_client(address, [{"op": "health"}], health_out)
        (health,) = health_out.values()
        assert health[0][0] == "ok"
        stats = frontend.frontend_stats()
    finally:
        frontend.stop()

    record = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "k": K,
        "max_queue_depth": MAX_QUEUE_DEPTH,
        "coalesce_max": COALESCE_MAX,
        "baseline_requests": N_BASELINE,
        "baseline_qps": round(qps_1x, 1),
        "baseline_p99_seconds": round(p99_1x, 6),
        "burst_clients": N_BURST_CLIENTS,
        "burst_requests": N_BURST_CLIENTS * N_PER_BURST_CLIENT,
        "burst_seconds": round(burst_seconds, 3),
        "burst_throughput_qps": round(len(admitted) / burst_seconds, 1),
        "admitted": len(admitted),
        "shed": len(shed),
        "deadline_exceeded": len(expired),
        "hard_failures": len(hard_failures),
        "shed_rate": round(len(shed) / max(1, len(outcomes)), 3),
        "admitted_p99_seconds": round(p99_admitted, 6),
        "p99_ratio": round(p99_admitted / p99_1x, 2) if p99_1x else None,
        "p99_ratio_ceiling": P99_RATIO_CEILING,
        "parity_mismatches": parity_mismatches,
        "coalesced": stats["counts"]["coalesced"],
        "batches": stats["counts"]["batches"],
        "cpu_count": os.cpu_count(),
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert len(shed) > 0, (
        "4x load never shed: admission control is not engaging"
    )
    assert not hard_failures, (
        f"{len(hard_failures)} hard failure(s) under overload "
        "(disconnects/internal errors): shedding must be graceful"
    )
    assert parity_mismatches == 0, (
        f"{parity_mismatches} admitted answer(s) diverge from the "
        "offline session"
    )
    assert p99_admitted <= P99_RATIO_CEILING * p99_1x, (
        f"admitted p99 {p99_admitted:.4f}s exceeds "
        f"{P99_RATIO_CEILING}x baseline {p99_1x:.4f}s"
    )
