"""Table VI: F1 of every matcher on the 8 new benchmarks.

Shape assertions from Section VI-A: (near-)perfect performance across the
board on D_n3 and very strong on D_n8 (the linearly separable bibliographic
pairs), and a clear non-linear advantage on the challenging new benchmarks
(D_n1, D_n2, D_n6, D_n7).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.registry import SOURCE_DATASET_IDS
from repro.experiments.matcher_suite import family_of
from repro.experiments.report import render
from repro.experiments.tables import table6


def test_table6(runner, benchmark):
    headers, rows = run_once(benchmark, table6, runner)
    print()
    print(render((headers, rows), title="Table VI — F1 per matcher (new benchmarks)"))

    labels = headers[2:]
    columns = {label: index + 2 for index, label in enumerate(labels)}
    assert len(labels) == len(SOURCE_DATASET_IDS)

    def best_f1(label: str, family: str | None = None) -> float:
        values = []
        for row in rows:
            if family is not None and family_of(row[0]) != family:
                continue
            cell = row[columns[label]]
            if cell != "-":
                values.append(float(cell))
        return max(values)

    # D_n3: everyone near-perfect, even linear matchers.
    assert best_f1("Dn3", "linear") > 95.0
    assert best_f1("Dn3", "dl") > 95.0

    # D_n8: strong across the board.
    assert best_f1("Dn8") > 85.0

    # Challenging new benchmarks: non-linear matchers clearly win.
    for label in ("Dn1", "Dn2", "Dn6", "Dn7"):
        non_linear = max(best_f1(label, "dl"), best_f1(label, "ml"))
        linear = best_f1(label, "linear")
        assert non_linear - linear > 5.0, label
