"""Ablation: blocking methods compared on the PC/PQ plane.

The paper's Section VI premise is that DeepBlocker is the state of the art
worth building benchmarks with; this bench compares it against the classic
baselines (token blocking, q-gram blocking, sorted neighborhood) on one
source pair and checks the expected dominance structure: at comparable
recall, DeepBlocker needs fewer candidates than q-gram blocking; token
blocking reaches high recall only with a large candidate set.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.blocking import (
    QGramBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    evaluate_blocking,
    tune_deepblocker,
)
from repro.datasets import load_source_pair


def _sweep():
    sources = load_source_pair("abt_buy")
    outcome = {}
    outcome["token"] = evaluate_blocking(
        TokenBlocker(min_common=1).candidates(sources), sources
    )
    outcome["qgram"] = evaluate_blocking(
        QGramBlocker(q=3, min_common=3).candidates(sources), sources
    )
    outcome["sorted_neighborhood"] = evaluate_blocking(
        SortedNeighborhoodBlocker(window=6).candidates(sources), sources
    )
    outcome["deepblocker"] = tune_deepblocker(sources, recall_target=0.9).result
    return outcome


def test_blocker_comparison(runner, benchmark):
    outcome = run_once(benchmark, _sweep)
    print()
    for name, result in outcome.items():
        print(
            f"{name:20s} PC={result.pair_completeness:.3f} "
            f"PQ={result.pairs_quality:.3f} |C|={result.n_candidates}"
        )

    deep = outcome["deepblocker"]
    token = outcome["token"]
    qgram = outcome["qgram"]

    # Tuned DeepBlocker reaches the recall target.
    assert deep.pair_completeness >= 0.9
    # Token blocking with one shared token reaches high recall only by
    # flooding candidates: DeepBlocker is far more precise at similar PC.
    assert token.pair_completeness >= 0.85
    assert deep.pairs_quality > token.pairs_quality
    assert deep.n_candidates < token.n_candidates
    # q-gram blocking is even less precise than token blocking here
    # (typo-robustness costs block quality).
    assert qgram.n_candidates >= token.n_candidates * 0.5
