"""Table IV: F1 of every matcher on the 13 established benchmarks.

The heaviest experiment of the reproduction: the full matcher roster
(5 DL families x 2 epoch budgets + EMTransformer checkpoint variants,
Magellan x 4 heads, ZeroER, 6 ESDE variants) on all 13 datasets. Shape
assertions mirror Section V-B: the trivial dataset (D_s7) is aced by the
best matcher of every family, ZeroER collapses on hard/dirty data, and on
the challenging datasets the best non-linear matcher clearly beats the
best linear one.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.registry import ESTABLISHED_DATASET_IDS
from repro.experiments.matcher_suite import family_of
from repro.experiments.report import render
from repro.experiments.tables import table4


def _collect(runner):
    return table4(runner)


def test_table4(runner, benchmark):
    headers, rows = run_once(benchmark, _collect, runner)
    print()
    print(render((headers, rows), title="Table IV — F1 per matcher and dataset"))

    columns = {dataset: index + 2 for index, dataset in enumerate(ESTABLISHED_DATASET_IDS)}

    def best_f1(dataset: str, family: str | None = None) -> float:
        values = []
        for row in rows:
            if family is not None and family_of(row[0]) != family:
                continue
            cell = row[columns[dataset]]
            if cell != "-":
                values.append(float(cell))
        return max(values)

    # D_s7: every family solves it (perfect or near-perfect F1).
    for family in ("dl", "ml", "linear"):
        assert best_f1("Ds7", family) > 95.0, family

    # The challenging quartet: non-linear matchers clearly beat linear ones.
    for dataset in ("Ds4", "Ds6", "Dd4", "Dt1"):
        non_linear = max(best_f1(dataset, "dl"), best_f1(dataset, "ml"))
        linear = best_f1(dataset, "linear")
        assert non_linear - linear > 5.0, dataset

    # ZeroER collapses on the hard product datasets, as in the paper.
    zeroer = {row[0]: row for row in rows}["ZeroER"]
    assert float(zeroer[columns["Ds4"]]) < 40.0
    assert float(zeroer[columns["Ds6"]]) < 40.0

    # Easy bibliographic data: even linear matchers stay strong.
    assert best_f1("Ds1", "linear") > 85.0
