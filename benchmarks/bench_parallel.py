"""Sequential vs parallel wall time for the CI-scale matcher sweeps.

Times a full established-benchmark regeneration with ``workers=1`` and
``workers=4`` on fresh caches, asserts the results are identical (the
scheduler's determinism guarantee), and writes the measurements to
``BENCH_parallel.json`` in the repository root.

The speedup is recorded, not asserted — but the parallel run opts into
worker auto-degrade (``auto_degrade_workers``): on a single-core machine
(such as most CI containers; see the ``cpu_count`` field of the record)
forked workers time-slice one core and no wall-time win is physically
possible, so the scheduler falls back to the sequential loop and the
historical 0.67x regression reads ~1x instead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SIZE_FACTOR
from repro.datasets.registry import ESTABLISHED_DATASET_IDS
from repro.experiments.runner import ExperimentRunner

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
PARALLEL_WORKERS = 4


def _timed_sweep(cache_dir, workers: int):
    runner = ExperimentRunner(
        size_factor=BENCH_SIZE_FACTOR,
        seed=0,
        cache_dir=cache_dir,
        workers=workers,
        auto_degrade_workers=workers > 1,
    )
    start = time.perf_counter()
    results = runner.sweep_all(ESTABLISHED_DATASET_IDS)
    elapsed = time.perf_counter() - start
    scores = {
        dataset_id: {
            name: (r.precision, r.recall, r.f1, r.degraded)
            for name, r in dataset_results.items()
        }
        for dataset_id, dataset_results in results.items()
    }
    return scores, elapsed, runner


def test_parallel_speedup(tmp_path):
    sequential_scores, sequential_seconds, _ = _timed_sweep(
        tmp_path / "seq", workers=1
    )
    parallel_scores, parallel_seconds, parallel_runner = _timed_sweep(
        tmp_path / "par", workers=PARALLEL_WORKERS
    )

    identical = parallel_scores == sequential_scores
    fork_pids = {
        report.worker_pid
        for report in parallel_runner.worker_reports()
        if report.worker_pid != os.getpid()
    }
    record = {
        "workers": PARALLEL_WORKERS,
        "auto_degraded_to_sequential": not fork_pids,
        "cpu_count": os.cpu_count(),
        "scale": BENCH_SIZE_FACTOR,
        "datasets": list(ESTABLISHED_DATASET_IDS),
        "sequential_seconds": round(sequential_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(sequential_seconds / parallel_seconds, 3),
        "identical": identical,
        "failures": len(parallel_runner.failure_records()),
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    # Determinism is the hard guarantee; the speedup is hardware-bound.
    assert identical
    assert parallel_runner.failure_records() == []
