"""Serving benchmark: resident-session throughput and tail latency.

Opens a :class:`~repro.serve.MatcherSession` over ``dblp_scholar`` at CI
scale and records to ``BENCH_serve.json``:

* batched query throughput (must clear ``QPS_FLOOR`` queries/sec) and
  the per-phase p50/p99 latencies at ``K`` candidates per query;
* incremental ``add_records`` throughput, asserting the index is never
  rebuilt (the ``blocking.ann.index_builds`` counter stays at 1);
* serve-vs-offline prediction parity on the same candidate pairs.

``scripts/verify.sh`` runs a separate live serve smoke over the JSONL
loop; this benchmark prices the session API itself.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs as obs_package
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.datasets.generator import build_task_from_sources
from repro.datasets.sources import build_source_pair
from repro.experiments.matcher_suite import build_matcher
from repro.obs import Observability
from repro.serve import open_session

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
DATASET = "dblp_scholar"
SCALE = 1.0
SEED = 0
K = 10
N_QUERIES = 200
N_ADDED = 200
QPS_FLOOR = 100.0


@pytest.mark.serve_bench
def test_serve_throughput_and_parity():
    sources = build_source_pair(DATASET, SCALE)
    task = build_task_from_sources(
        sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=SEED,
        name=f"{DATASET}_serve",
    )
    with obs_package.use(Observability()) as o:
        fit_start = time.perf_counter()
        session = open_session(task, k=K, seed=SEED)
        open_seconds = time.perf_counter() - fit_start
        # Fitting uses the classic rebuild path; serving must not.
        rebuilds_baseline = o.metrics.counter("features.incidence_rebuilds")

        probes = task.left.records()[:N_QUERIES]
        query_start = time.perf_counter()
        results = session.query_batch(probes)
        query_seconds = time.perf_counter() - query_start
        qps = len(probes) / query_seconds if query_seconds else float("inf")

        # Incremental adds: clones of indexed records under fresh ids.
        donors = task.right.records()
        fresh = [
            Record(f"bench_{i}", donor.source, dict(donor.values))
            for i, donor in enumerate(
                donors[i % len(donors)] for i in range(N_ADDED)
            )
        ]
        add_start = time.perf_counter()
        session.add_records(fresh)
        add_seconds = time.perf_counter() - add_start
        adds_per_second = (
            N_ADDED / add_seconds if add_seconds else float("inf")
        )
        session.query_batch(probes[:20])
        index_builds = o.metrics.counter("blocking.ann.index_builds")
        incidence_rebuilds = (
            o.metrics.counter("features.incidence_rebuilds")
            - rebuilds_baseline
        )

    # Parity: the offline matcher's predictions on the same pairs.
    pair_set = LabeledPairSet()
    online = {}
    for probe, result in zip(probes, results):
        for record_id, verdict in zip(result.candidates.ids, result.predictions):
            key = (probe.record_id, record_id)
            online[key] = verdict
            if key not in pair_set:
                pair_set.add(RecordPair(probe, task.right.get(record_id)), 0)
    offline = build_matcher(task, session.config.matcher, SEED)
    offline.fit(task)
    mismatches = sum(
        int(int(verdict) != online[pair.key])
        for pair, verdict in zip(pair_set.pairs, offline.predict(pair_set))
    )

    latency = session.stats()["latency"]
    record = {
        "dataset": DATASET,
        "scale": SCALE,
        "seed": SEED,
        "k": K,
        "indexed_records": len(session),
        "n_queries": len(probes),
        "qps_floor": QPS_FLOOR,
        "open_seconds": round(open_seconds, 3),
        "queries_per_second": round(qps, 1),
        "incremental_adds": N_ADDED,
        "adds_per_second": round(adds_per_second, 1),
        "index_builds": index_builds,
        "incidence_rebuilds_during_serve": incidence_rebuilds,
        "parity_pairs": len(pair_set),
        "parity_mismatches": mismatches,
        "cpu_count": os.cpu_count(),
        "latency": latency,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert mismatches == 0, (
        f"{mismatches} serve predictions diverge from the offline matcher"
    )
    assert index_builds == 1.0, (
        f"incremental add_records triggered {index_builds - 1:.0f} rebuild(s)"
    )
    assert incidence_rebuilds == 0.0, (
        "serving rebuilt the incidence structure "
        f"{incidence_rebuilds:.0f} time(s)"
    )
    assert qps >= QPS_FLOOR, (
        f"serve throughput {qps:.1f} queries/sec below floor {QPS_FLOOR}"
    )
