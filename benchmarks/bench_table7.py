"""Table VII: existing vs new benchmarks of the same origin.

Shape assertions from Section VI: the new bibliographic benchmark (D_n3)
blocks far more precisely than its established counterpart, while the
product benchmarks built with a documented 0.9-recall blocking end up with
*more* negatives (lower PQ) than the established ones — the paper's
evidence that the established candidate sets had negatives removed or
inserted in an undocumented way.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.report import render
from repro.experiments.tables import table7


def test_table7(runner, benchmark):
    headers, rows = run_once(benchmark, table7, runner)
    print()
    print(render((headers, rows), title="Table VII — existing vs new benchmarks"))

    assert len(rows) == 5
    by_existing = {row[0]: row for row in rows}

    # DBLP-ACM: the new benchmark has far higher PQ than the established one
    # (paper: 0.953 vs 0.137 — almost 7x).
    dblp = by_existing["Ds1"]
    assert float(dblp[6]) > 3 * float(dblp[2])

    # Product pairs: the documented 0.9-recall blocking keeps many more
    # negatives than the established benchmarks did (PQ' < PQ).
    for existing_id in ("Dt1", "Ds4", "Ds6"):
        row = by_existing[existing_id]
        assert float(row[6]) < float(row[2]), existing_id

    # Every new benchmark documents PC >= 0.85.
    for row in rows:
        assert float(row[5]) >= 0.85
