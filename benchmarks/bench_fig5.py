"""Figure 5: complexity measures of the new benchmarks.

Shape assertions from Section VI-A: the bibliographic benchmarks have the
lowest mean complexity scores, while the challenging product benchmarks
(D_n1, D_n2, D_n6, D_n7) exceed the 0.40 easy cut.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure5
from repro.experiments.report import render


def test_figure5(runner, benchmark):
    figure = run_once(benchmark, figure5, runner)
    print()
    print(render(figure, title="Figure 5 — complexity measures (new)"))

    means = {label: series["mean"] for label, series in figure.items()}

    # The bibliographic benchmarks are the simplest.
    assert means["Dn3"] < 0.40
    assert means["Dn8"] < 0.40

    # The challenging product benchmarks exceed the cut.
    for label in ("Dn1", "Dn2", "Dn6", "Dn7"):
        assert means[label] > 0.40, label

    # All individual scores bounded.
    for series in figure.values():
        assert all(0.0 <= value <= 1.0 for value in series.values())
