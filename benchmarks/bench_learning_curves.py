"""Ablation: epoch sensitivity of the deep matchers.

Section V-B singles out the number of epochs as the most important DL
hyperparameter and therefore reports every method at two budgets. This
bench traces the full validation-F1 curve instead and checks the structure
behind those two columns: on an easy benchmark training plateaus early
(the "(15)" column already captures the peak), and with validation-based
model selection more epochs never hurt the selected model.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets import load_established_task
from repro.experiments.learning_curves import learning_curve
from repro.matchers.deep import DeepMatcherNet, EMTransformerNet


def _sweep():
    curves = {}
    easy = load_established_task("Ds1")
    hard = load_established_task("Ds6")
    curves["easy"] = learning_curve(EMTransformerNet("B", epochs=40), easy)
    curves["hard"] = learning_curve(EMTransformerNet("B", epochs=40), hard)
    curves["easy_short"] = learning_curve(DeepMatcherNet(epochs=15), easy)
    curves["easy_long"] = learning_curve(DeepMatcherNet(epochs=40), easy)
    return curves


def test_epoch_sensitivity(runner, benchmark):
    curves = run_once(benchmark, _sweep)
    print()
    for name, curve in curves.items():
        print(
            f"{name:11s} {curve.matcher:22s} plateau@{curve.plateau_epoch:2d} "
            f"best@{curve.best_epoch:2d} test F1={curve.test_f1:.3f}"
        )

    # Easy data plateaus within the paper's default budget of 15 epochs.
    assert curves["easy"].plateau_epoch <= 15
    # With validation model selection, 40 epochs never select a worse model
    # than 15 (the paper's two columns differ little on easy data).
    assert (
        max(curves["easy_long"].validation_f1[:15])
        <= max(curves["easy_long"].validation_f1) + 1e-12
    )
    assert abs(curves["easy_long"].test_f1 - curves["easy_short"].test_f1) < 0.10
    # Every recorded point is a valid F1.
    for curve in curves.values():
        assert all(0.0 <= value <= 1.0 for value in curve.validation_f1)
