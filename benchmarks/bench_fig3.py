"""Figure 3: non-linear boost and learning-based margin (established).

Shape assertions from Section V-B's conclusion: exactly the quartet
{D_s4, D_s6, D_d4, D_t1} clears both practical bars (>5%), D_s7 reduces
both measures to ~0, and the easy bibliographic datasets have a tiny LBM
(practically solved).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3
from repro.experiments.report import render

CHALLENGING = ("Ds4", "Ds6", "Dd4", "Dt1")


def test_figure3(runner, benchmark):
    figure = run_once(benchmark, figure3, runner)
    print()
    print(render(figure, title="Figure 3 — NLB and LBM (established)"))

    # The challenging quartet clears both 5% bars.
    for dataset in CHALLENGING:
        series = figure[dataset]
        assert series["nlb"] > 0.05, dataset
        assert series["lbm"] > 0.05, dataset

    # D_s7 is solved by everyone: both measures collapse.
    assert figure["Ds7"]["nlb"] < 0.04
    assert figure["Ds7"]["lbm"] < 0.02

    # The easy bibliographic benchmarks are practically solved (low LBM).
    assert figure["Ds1"]["lbm"] < 0.05

    # Most non-challenging datasets fail at least one bar.
    easy_failing = [
        dataset
        for dataset, series in figure.items()
        if dataset not in CHALLENGING
        and (series["nlb"] <= 0.05 or series["lbm"] <= 0.05)
    ]
    assert len(easy_failing) >= 6
