"""Table III: characteristics of the 13 established benchmarks.

Regenerates the dataset-statistics table and checks its shape against the
published one: 13 datasets, the documented attribute counts, and the class
imbalance ratios of the original benchmarks (iTunes-Amazon and Company most
balanced, Walmart-Amazon around 9%).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.report import render
from repro.experiments.tables import table3


def test_table3(runner, benchmark):
    headers, rows = run_once(benchmark, table3, runner)
    print()
    print(render((headers, rows), title="Table III — established benchmarks"))

    assert len(rows) == 13
    by_id = {row[0]: row for row in rows}
    # Attribute counts follow the original datasets.
    assert by_id["Ds1"][3] == "4"   # DBLP-ACM
    assert by_id["Ds3"][3] == "8"   # iTunes-Amazon
    assert by_id["Ds7"][3] == "6"   # Fodors-Zagats
    assert by_id["Dt2"][3] == "1"   # Company (textual)

    def imbalance(dataset_id: str) -> float:
        return float(by_id[dataset_id][-1].rstrip("%"))

    # The imbalance ordering of Table III: Ds3/Dt2 most balanced (~24%),
    # Ds4 among the most skewed (~9%).
    assert imbalance("Ds3") > 20.0
    assert imbalance("Dt2") > 20.0
    assert imbalance("Ds4") < 12.0
