"""Table V: the new benchmarks produced by tuned DeepBlocker.

Shape assertions from Section VI: every benchmark reaches (close to) the
0.9 recall target; the bibliographic pairs block precisely (D_n3 at K=1
with PQ above 0.9, D_n8 with PQ far above the product/movie pairs), while
the product/movie pairs need large K and end up heavily imbalanced.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.registry import SOURCE_DATASET_IDS
from repro.experiments.report import render
from repro.experiments.tables import table5


def test_table5(runner, benchmark):
    headers, rows = run_once(benchmark, table5, runner)
    print()
    print(render((headers, rows), title="Table V — new benchmarks (DeepBlocker)"))

    assert len(rows) == len(SOURCE_DATASET_IDS)
    by_label = {row[0]: row for row in rows}
    pc = {label: float(row[6]) for label, row in by_label.items()}
    pq = {label: float(row[7]) for label, row in by_label.items()}

    # Recall target: every dataset at or near 0.9 (the paper's PCs dip to
    # 0.891 on stubborn movie data).
    assert all(value >= 0.85 for value in pc.values())

    # D_n3 (DBLP-ACM): precise blocking at K=1, like the paper (PQ 0.953).
    assert pq["Dn3"] > 0.9
    assert "K=1" in by_label["Dn3"][10]

    # Bibliographic PQ dominates product/movie PQ.
    assert pq["Dn8"] > 0.1
    for label in ("Dn2", "Dn4", "Dn5", "Dn6", "Dn7"):
        assert pq[label] < 0.1, label

    # The product/movie benchmarks are heavily imbalanced (<10% positives).
    for label in ("Dn2", "Dn4", "Dn5", "Dn6", "Dn7"):
        imbalance = float(by_label[label][-1].rstrip("%"))
        assert imbalance < 10.0, label
