"""The paper's headline conclusion: the four-gate verdict tables.

Asserts the two central claims of the paper end-to-end:

* Section V: exactly {D_s4, D_s6, D_d4, D_t1} of the 13 established
  benchmarks survive all four difficulty gates;
* Section VI-A: exactly {D_n1, D_n2, D_n6, D_n7} of the new benchmarks do.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.registry import SOURCE_DATASET_IDS
from repro.experiments.report import render
from repro.experiments.tables import verdict_table

CHALLENGING_ESTABLISHED = {"Ds4", "Ds6", "Dd4", "Dt1"}
CHALLENGING_NEW = {"Dn1", "Dn2", "Dn6", "Dn7"}


def test_established_verdicts(runner, benchmark):
    headers, rows = run_once(benchmark, verdict_table, runner)
    print()
    print(render((headers, rows), title="Verdicts — established benchmarks"))
    challenging = {row[0] for row in rows if row[-1] == "CHALLENGING"}
    assert challenging == CHALLENGING_ESTABLISHED


def test_new_verdicts(runner, benchmark):
    headers, rows = run_once(
        benchmark, verdict_table, runner, SOURCE_DATASET_IDS
    )
    print()
    print(render((headers, rows), title="Verdicts — new benchmarks"))
    challenging = {row[0] for row in rows if row[-1] == "CHALLENGING"}
    assert challenging == CHALLENGING_NEW
