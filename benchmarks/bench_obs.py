"""Observability overhead: traced+metered sweeps vs disabled, ≤2% budget.

Times the same fresh matcher sweep with the active
:class:`~repro.obs.Observability` enabled and disabled (best-of-N to
filter scheduler noise on shared machines) and writes the measurements to
``BENCH_obs.json`` in the repository root. DESIGN.md §8 budgets the
enabled path at ≤2% overhead; the assertion carries a small absolute
guard so sub-100ms timing jitter cannot fail a run that is within noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import obs as obs_module
from repro.experiments.runner import ExperimentRunner, RunnerConfig
from repro.obs import Observability

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
SCALE = 0.3
DATASETS = ("Ds5", "Ds7")
REPS = 3
OVERHEAD_BUDGET_PCT = 2.0
#: Absolute slack: differences below this are timing noise, not overhead.
NOISE_FLOOR_SECONDS = 0.1


def _one_sweep() -> float:
    """Wall seconds of fresh, uncached sweeps under the active obs."""
    runner = ExperimentRunner(config=RunnerConfig(scale=SCALE))
    start = time.perf_counter()
    runner.sweep_all(DATASETS)
    return time.perf_counter() - start


def _timed(enabled: bool) -> float:
    previous = obs_module.activate(Observability(enabled=enabled))
    try:
        return _one_sweep()
    finally:
        obs_module.activate(previous)


def test_observability_overhead():
    # Warm-up: the first sweep pays dataset generation and allocator
    # warm-up that would otherwise be billed to whichever mode runs first.
    _timed(enabled=False)
    # Interleave the modes so slow drift (thermal, co-tenants) hits both.
    disabled_seconds = float("inf")
    enabled_seconds = float("inf")
    for _ in range(REPS):
        disabled_seconds = min(disabled_seconds, _timed(enabled=False))
        enabled_seconds = min(enabled_seconds, _timed(enabled=True))
    delta = enabled_seconds - disabled_seconds
    overhead_pct = 100.0 * delta / disabled_seconds
    within_budget = (
        overhead_pct <= OVERHEAD_BUDGET_PCT or delta <= NOISE_FLOOR_SECONDS
    )

    record = {
        "scale": SCALE,
        "datasets": list(DATASETS),
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "delta_seconds": round(delta, 4),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        "within_budget": within_budget,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert within_budget, (
        f"observability overhead {overhead_pct:.2f}% "
        f"({delta:.3f}s) exceeds the 2% budget"
    )
