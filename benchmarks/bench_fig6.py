"""Figure 6: NLB and LBM of the new benchmarks.

(The paper reports these numbers alongside Figure 5.) Shape assertions
from Section VI-A: both practical measures collapse on D_n3, stay small on
D_n8, and clear the 5% bars on the four challenging benchmarks — which
therefore pass all four difficulty gates.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure6
from repro.experiments.report import render

CHALLENGING_NEW = ("Dn1", "Dn2", "Dn6", "Dn7")


def test_figure6(runner, benchmark):
    figure = run_once(benchmark, figure6, runner)
    print()
    print(render(figure, title="Figure 6 — NLB and LBM (new benchmarks)"))

    # D_n3 is solved by everyone: both measures near zero.
    assert figure["Dn3"]["nlb"] < 0.04
    assert figure["Dn3"]["lbm"] < 0.04

    # D_n8 stays small (the paper reports ~4.3% for both).
    assert figure["Dn8"]["lbm"] < 0.15

    # The challenging new benchmarks clear both bars.
    for label in CHALLENGING_NEW:
        assert figure[label]["nlb"] > 0.05, label
        assert figure[label]["lbm"] > 0.05, label
