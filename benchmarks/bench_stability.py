"""Ablation: DeepBlocker's stochastic stability (the paper's 10 repetitions).

Section VI: "Given that DeepBlocker constitutes a stochastic approach, the
performance reported corresponds to the average after 10 repetitions. For
this reason, in some cases, PC drops slightly lower than 0.9." This bench
runs the repetition protocol (5 runs at bench scale) and checks both facts:
the mean PC honours the target up to small dips, and the run-to-run spread
is modest.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets import load_source_pair
from repro.experiments.stability import blocking_stability


def _sweep():
    sources = load_source_pair("abt_buy")
    return blocking_stability(
        sources, repetitions=5, recall_target=0.9, base_seed=0
    )


def test_blocking_stability(runner, benchmark):
    summaries = run_once(benchmark, _sweep)
    print()
    for summary in summaries.values():
        print(summary.describe())

    pc = summaries["pair_completeness"]
    # The average honours the recall target; individual runs may dip a
    # little below it, exactly as the paper observes.
    assert pc.mean >= 0.88
    assert pc.minimum >= 0.85
    # The tuner's outcome is reasonably stable across seeds.
    assert pc.std < 0.05
    assert summaries["pairs_quality"].std < 0.05
