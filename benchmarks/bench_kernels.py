"""Vectorized feature-kernel speedup: end-to-end ESDE extraction, ≥5x.

Times the full feature-extraction flow of one ESDE experiment on an
established dataset — fit extraction over the training and validation
splits plus predict extraction over a blocking-style candidate set (every
left record paired with ``CANDIDATES_PER_LEFT`` sampled right records) —
and compares two implementations of identical semantics:

* **scalar**: the per-pair oracle (``extractor.features(pair)`` in a
  Python loop, with the extractor's own per-record caches), which is the
  pre-vectorization behavior: fit and predict both walked every pair and
  computed the variant's full feature vector;
* **vector**: the batched path through the shared per-task
  :class:`~repro.text.feature_store.FeatureStore` —
  ``feature_matrix`` for the fit splits and the single-column
  ``feature_column`` fast path for predict.

Both paths must produce bit-identical features (asserted here, and more
exhaustively in ``tests/matchers/test_feature_parity.py``). Results go
to ``BENCH_kernels.json`` in the repository root. DESIGN.md §9 budgets
the vectorized flow at a ≥5x speedup for the q-gram profiles (SAQ/SBQ);
the assertion applies to the best rep of each side, interleaved to
absorb machine drift.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.task import MatchingTask
from repro.datasets import load_established_task
from repro.matchers.features import EsdeFeatureExtractor

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
DATASET = "Ds2"
VARIANTS = ("SAQ", "SBQ")
CANDIDATES_PER_LEFT = 25
#: Column extracted on the predict path (any valid index works; parity is
#: checked against the scalar oracle's same column).
PREDICT_COLUMN = 5
REPS = 2
SPEEDUP_FLOOR = 5.0


def _candidate_pairs(base: MatchingTask, seed: int = 0) -> LabeledPairSet:
    """A blocking-style candidate set: each left × sampled rights."""
    rights = list(base.right)
    rng = np.random.default_rng(seed)
    candidates = LabeledPairSet()
    for left in base.left:
        chosen = rng.choice(
            len(rights), size=CANDIDATES_PER_LEFT, replace=False
        )
        for index in chosen:
            candidates.add(RecordPair(left, rights[int(index)]), 0)
    return candidates


def _fresh_task(base: MatchingTask) -> MatchingTask:
    """A new task object so each measurement gets a fresh feature store."""
    return MatchingTask(
        "bench_kernels",
        base.left,
        base.right,
        base.training,
        base.validation,
        base.testing,
    )


def _scalar_flow(base, candidates, variant):
    """(seconds, matrices) for the per-pair oracle flow."""
    extractor = EsdeFeatureExtractor(variant, _fresh_task(base))
    task = extractor.task
    start = time.perf_counter()
    training = np.vstack([extractor.features(p) for p, __ in task.training])
    validation = np.vstack(
        [extractor.features(p) for p, __ in task.validation]
    )
    predict = np.vstack([extractor.features(p) for p in candidates.pairs])
    elapsed = time.perf_counter() - start
    return elapsed, (training, validation, predict[:, PREDICT_COLUMN])


def _vector_flow(base, candidates, variant):
    """(seconds, matrices) for the batched feature-store flow."""
    extractor = EsdeFeatureExtractor(variant, _fresh_task(base))
    task = extractor.task
    start = time.perf_counter()
    training = extractor.feature_matrix(task.training)
    validation = extractor.feature_matrix(task.validation)
    predict = extractor.feature_column(candidates, PREDICT_COLUMN)
    elapsed = time.perf_counter() - start
    return elapsed, (training, validation, predict)


def test_kernel_speedup():
    base = load_established_task(DATASET)
    candidates = _candidate_pairs(base)

    results = {}
    for variant in VARIANTS:
        # Warm-up rep pays allocator and import costs for both sides.
        _vector_flow(base, candidates, variant)
        scalar_seconds = float("inf")
        vector_seconds = float("inf")
        parity = True
        for __ in range(REPS):
            elapsed, scalar_out = _scalar_flow(base, candidates, variant)
            scalar_seconds = min(scalar_seconds, elapsed)
            elapsed, vector_out = _vector_flow(base, candidates, variant)
            vector_seconds = min(vector_seconds, elapsed)
            parity = parity and all(
                np.array_equal(scalar_block, vector_block)
                for scalar_block, vector_block in zip(scalar_out, vector_out)
            )
        results[variant] = {
            "scalar_seconds": round(scalar_seconds, 4),
            "vector_seconds": round(vector_seconds, 4),
            "speedup": round(scalar_seconds / vector_seconds, 2),
            "bit_identical": parity,
        }

    record = {
        "dataset": DATASET,
        "candidates_per_left": CANDIDATES_PER_LEFT,
        "candidate_pairs": len(candidates),
        "training_pairs": len(base.training),
        "validation_pairs": len(base.validation),
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "speedup_floor": SPEEDUP_FLOOR,
        "variants": results,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    for variant, result in results.items():
        assert result["bit_identical"], (
            f"{variant}: vectorized features differ from the scalar oracle"
        )
        assert result["speedup"] >= SPEEDUP_FLOOR, (
            f"{variant}: speedup {result['speedup']}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
