"""Figure 1: degree of linearity of the established benchmarks.

Shape assertions from Section V-A: several datasets exceed 0.8 linearity
(the easy ones), D_s7 attains (near-)perfect linear separability, and the
four datasets the paper finally marks challenging (D_s4, D_s6, D_d4, D_t1)
all stay below 0.8.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure1
from repro.experiments.report import render


def test_figure1(runner, benchmark):
    figure = run_once(benchmark, figure1, runner)
    print()
    print(render(figure, title="Figure 1 — degree of linearity (established)"))

    def linearity(dataset_id: str) -> float:
        series = figure[dataset_id]
        return max(series["f1_cosine"], series["f1_jaccard"])

    # D_s7 (Fodors-Zagats) is perfectly linearly separable.
    assert linearity("Ds7") > 0.97
    # At least five further datasets exceed 0.8 — "rather easy tasks".
    easy = [d for d in figure if linearity(d) > 0.8]
    assert len(easy) >= 6
    # The paper's challenging quartet stays clearly below 0.8.
    for dataset_id in ("Ds4", "Ds6", "Dd4", "Dt1"):
        assert linearity(dataset_id) < 0.8, dataset_id
    # Textual data: cosine is at least as strong as Jaccard *on average*
    # (the paper reports a 12.3% average advantage across the textual
    # datasets; per-dataset the two can tie within noise).
    textual_cosine = sum(figure[d]["f1_cosine"] for d in ("Dt1", "Dt2")) / 2
    textual_jaccard = sum(figure[d]["f1_jaccard"] for d in ("Dt1", "Dt2")) / 2
    assert textual_cosine >= textual_jaccard - 1e-6
