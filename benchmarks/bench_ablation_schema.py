"""Ablation: schema-agnostic vs schema-aware theoretical measures.

Section III notes that schema-aware variants of the theoretical measures
"showed no significant difference in performance in comparison to the
schema-agnostic settings". This bench compares the best schema-agnostic
threshold F1 (Algorithm 1) with the best per-attribute threshold F1 on the
same datasets and checks the two agree on the easy/hard verdict.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.linearity import degree_of_linearity, schema_aware_linearity
from repro.datasets import load_established_task

DATASETS = ("Ds1", "Ds4", "Ds7")


def _sweep():
    outcome = {}
    for dataset_id in DATASETS:
        task = load_established_task(dataset_id)
        agnostic = degree_of_linearity(task, "cosine")
        per_attribute = schema_aware_linearity(task, "cosine")
        outcome[dataset_id] = {
            "schema_agnostic": agnostic.max_f1,
            "schema_aware": max(
                result.max_f1 for result in per_attribute.values()
            ),
        }
    return outcome


def test_schema_ablation(runner, benchmark):
    outcome = run_once(benchmark, _sweep)
    print()
    for dataset_id, values in outcome.items():
        print(
            f"{dataset_id}: schema-agnostic={values['schema_agnostic']:.3f} "
            f"schema-aware(best attr)={values['schema_aware']:.3f}"
        )

    # The two settings agree on the easy/hard verdict (0.8 cut) for every
    # dataset probed — the paper's reason for reporting only one of them.
    for dataset_id, values in outcome.items():
        agnostic_easy = values["schema_agnostic"] > 0.8
        aware_easy = values["schema_aware"] > 0.8
        assert agnostic_easy == aware_easy, dataset_id
