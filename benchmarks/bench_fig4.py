"""Figure 4: degree of linearity of the new benchmarks.

Shape assertions from Section VI-A: the bibliographic benchmarks (D_n3,
D_n8) stay highly linearly separable, while the product benchmarks are
far below them — the a-priori evidence that the methodology produced
harder tasks.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure4
from repro.experiments.report import render


def test_figure4(runner, benchmark):
    figure = run_once(benchmark, figure4, runner)
    print()
    print(render(figure, title="Figure 4 — degree of linearity (new)"))

    def linearity(label: str) -> float:
        series = figure[label]
        return max(series["f1_cosine"], series["f1_jaccard"])

    # Bibliographic benchmarks stay (nearly) linearly separable.
    assert linearity("Dn3") > 0.87
    assert linearity("Dn8") > 0.80

    # The challenging product/movie benchmarks are far below.
    for label in ("Dn1", "Dn2", "Dn6", "Dn7"):
        assert linearity(label) < 0.72, label

    # The bibliographic ones dominate every other benchmark.
    hardest_bib = min(linearity("Dn3"), linearity("Dn8"))
    for label in ("Dn1", "Dn2", "Dn5", "Dn6", "Dn7"):
        assert linearity(label) < hardest_bib, label
