"""Ablation: the blocking recall target trades difficulty for imbalance.

Section VI step 2: "the selected recall level determines the difficulty of
the labeled instances. The higher the recall levels are, the more difficult
to classify positive instances are included at the expense of including
more and easier negative instances". This bench runs the methodology at
increasing recall targets and checks both directions of the trade-off:
candidates grow (imbalance worsens) and the retained positives become
harder (lower mean similarity).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.methodology import create_benchmark
from repro.datasets import load_source_pair
from repro.text.similarity import jaccard_similarity

RECALL_TARGETS = (0.6, 0.75, 0.9)


def _sweep():
    sources = load_source_pair("abt_buy")
    outcome = {}
    for target in RECALL_TARGETS:
        built = create_benchmark(
            sources, label=f"ablation_r{target}", recall_target=target, seed=0
        )
        positives = [
            jaccard_similarity(pair.left.tokens(), pair.right.tokens())
            for pair, label in built.task.all_pairs()
            if label == 1
        ]
        outcome[target] = {
            "candidates": built.blocking.result.n_candidates,
            "pq": built.blocking.pairs_quality,
            "mean_positive_similarity": float(np.mean(positives)),
        }
    return outcome


def test_recall_ablation(runner, benchmark):
    outcome = run_once(benchmark, _sweep)
    print()
    for target, values in outcome.items():
        print(
            f"recall>={target:.2f}: |C|={values['candidates']:6d} "
            f"PQ={values['pq']:.3f} "
            f"mean positive similarity={values['mean_positive_similarity']:.3f}"
        )

    lowest, middle, highest = (outcome[t] for t in RECALL_TARGETS)
    # Higher recall target -> more candidates and lower precision.
    assert highest["candidates"] >= middle["candidates"] >= lowest["candidates"]
    assert highest["pq"] <= lowest["pq"]
    # Higher recall keeps harder (less similar) positives.
    assert (
        highest["mean_positive_similarity"]
        <= lowest["mean_positive_similarity"] + 1e-9
    )
