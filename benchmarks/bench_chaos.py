"""Circuit-breaker overhead: breakered sweeps vs plain policy, ≤2% budget.

Times the same fresh matcher sweep with the execution policy's circuit
breakers attached and without (best-of-N to filter scheduler noise) and
writes the measurements to ``BENCH_chaos.json`` in the repository root.
On the healthy path a breaker costs one registry lookup plus one success
record per unit, so DESIGN.md §7 budgets it at ≤2%; a small absolute
guard keeps sub-100ms timing jitter from failing a run within noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.runner import ExperimentRunner, RunnerConfig

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
SCALE = 0.3
DATASETS = ("Ds5", "Ds7")
REPS = 3
OVERHEAD_BUDGET_PCT = 2.0
#: Absolute slack: differences below this are timing noise, not overhead.
NOISE_FLOOR_SECONDS = 0.1


def _timed(breaker_threshold: int | None) -> float:
    """Wall seconds of fresh, uncached sweeps under the given breakers."""
    runner = ExperimentRunner(
        config=RunnerConfig(scale=SCALE, breaker_threshold=breaker_threshold)
    )
    start = time.perf_counter()
    runner.sweep_all(DATASETS)
    return time.perf_counter() - start


def test_breaker_overhead():
    # Warm-up: the first sweep pays dataset generation and allocator
    # warm-up that would otherwise be billed to whichever mode runs first.
    _timed(None)
    # Interleave the modes so slow drift (thermal, co-tenants) hits both.
    plain_seconds = float("inf")
    breakered_seconds = float("inf")
    for _ in range(REPS):
        plain_seconds = min(plain_seconds, _timed(None))
        breakered_seconds = min(breakered_seconds, _timed(5))
    delta = breakered_seconds - plain_seconds
    overhead_pct = 100.0 * delta / plain_seconds
    within_budget = (
        overhead_pct <= OVERHEAD_BUDGET_PCT or delta <= NOISE_FLOOR_SECONDS
    )

    record = {
        "scale": SCALE,
        "datasets": list(DATASETS),
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "plain_seconds": round(plain_seconds, 4),
        "breakered_seconds": round(breakered_seconds, 4),
        "delta_seconds": round(delta, 4),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        "within_budget": within_budget,
    }
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2))

    assert within_budget, (
        f"circuit-breaker overhead {overhead_pct:.2f}% "
        f"({delta:.3f}s) exceeds the 2% budget"
    )
