"""Figure 2: complexity measures of the established benchmarks.

Shape assertions from Section V-A: D_s7 has the lowest mean complexity, the
easy datasets fall below the paper's 0.40 mean cut, and the challenging
ones (D_s4, D_s6, D_d4, D_t1, D_t2) exceed it.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure2
from repro.experiments.report import render


def test_figure2(runner, benchmark):
    figure = run_once(benchmark, figure2, runner)
    print()
    print(render(figure, title="Figure 2 — complexity measures (established)"))

    means = {dataset_id: series["mean"] for dataset_id, series in figure.items()}
    # D_s7 is the simplest dataset of all.
    assert means["Ds7"] == min(means.values())
    # Easy bibliographic benchmarks stay under the 0.40 cut...
    for dataset_id in ("Ds1", "Ds7"):
        assert means[dataset_id] < 0.40, dataset_id
    # ...while the challenging ones exceed it.
    for dataset_id in ("Ds4", "Ds6", "Dd4", "Dt1"):
        assert means[dataset_id] > 0.40, dataset_id
    # Every individual measure is in [0, 1].
    for series in figure.values():
        assert all(0.0 <= value <= 1.0 for value in series.values())
