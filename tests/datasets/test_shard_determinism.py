"""The ``repro.scale`` tentpole invariant: sharding never changes bytes.

Per-entity RNG streams (structure and render) plus fixed family blocks
make an entity's records a pure function of ``(profile.seed,
entity_index)`` — so grouping entities into shards of any size, or into
one all-covering shard ("monolithic"), must produce bit-identical
records and ground truth for every established profile shape.
"""

from __future__ import annotations

import pytest

from repro.datasets.established import ESTABLISHED_PROFILES
from repro.datasets.generator import (
    generate_shard,
    generate_source_pair,
    shard_count,
    total_entities,
)
from repro.scale import scale_profile

#: Entities small enough for CI, large enough to cross several family
#: blocks (FAMILY_BLOCK = 64) and shard boundaries.
CI_RECORDS = 240

#: Shard sizes to cross-check: tiny (many shards, none block-aligned),
#: mid-sized, and larger than any profile (the monolithic reference).
SHARD_SIZES = (31, 100, 10_000)


def _fingerprint(pair):
    """Everything observable about a source pair, order included."""
    return (
        [(r.record_id, r.source, dict(r.values)) for r in pair.left],
        [(r.record_id, r.source, dict(r.values)) for r in pair.right],
        sorted(pair.matches),
    )


@pytest.mark.parametrize("dataset_id", sorted(ESTABLISHED_PROFILES))
def test_sharded_equals_monolithic_for_every_profile(dataset_id):
    profile = scale_profile(dataset_id, CI_RECORDS)
    monolithic = _fingerprint(generate_source_pair(profile, shard_size=10_000))
    for shard_size in SHARD_SIZES[:-1]:
        sharded = _fingerprint(
            generate_source_pair(profile, shard_size=shard_size)
        )
        assert sharded == monolithic, (
            f"{dataset_id}: shard_size={shard_size} changed the output"
        )


def test_single_shards_reassemble_the_dataset():
    profile = scale_profile("Ds2", CI_RECORDS)
    whole = generate_source_pair(profile, shard_size=10_000)
    left, right, matches = [], [], set()
    shard_size = 37
    for shard_index in range(shard_count(profile, shard_size)):
        shard = generate_shard(profile, shard_index, shard_size)
        left.extend(
            (r.record_id, r.source, dict(r.values)) for r in shard.left
        )
        right.extend(
            (r.record_id, r.source, dict(r.values)) for r in shard.right
        )
        assert not matches & shard.matches  # matches never cross shards
        matches |= shard.matches
    assert left == [
        (r.record_id, r.source, dict(r.values)) for r in whole.left
    ]
    assert right == [
        (r.record_id, r.source, dict(r.values)) for r in whole.right
    ]
    assert matches == set(whole.matches)


def test_matches_stay_within_their_shard():
    """A shared entity renders left *and* right in its own shard."""
    profile = scale_profile("Ds5", CI_RECORDS)
    shard_size = 50
    for shard_index in range(shard_count(profile, shard_size)):
        shard = generate_shard(profile, shard_index, shard_size)
        left_ids = {r.record_id for r in shard.left}
        right_ids = {r.record_id for r in shard.right}
        for left_id, right_id in shard.matches:
            assert left_id in left_ids
            assert right_id in right_ids


def test_shard_is_independent_of_factory_reuse():
    """A fresh factory per shard and a shared one agree bit-for-bit."""
    from repro.datasets.entities import EntityFactory

    profile = scale_profile("Ds4", CI_RECORDS)
    factory = EntityFactory(profile.domain, seed=profile.seed)
    for shard_index in range(shard_count(profile, 64)):
        fresh = generate_shard(profile, shard_index, 64)
        shared = generate_shard(profile, shard_index, 64, factory=factory)
        assert _fingerprint(fresh) == _fingerprint(shared)


def test_legacy_path_unchanged_and_distinct():
    """``shard_size=None`` keeps the calibrated sequential-RNG sample.

    Same ids and order (roles are contiguous by entity index on both
    paths) but a different — equally valid — rendering sample.
    """
    profile = scale_profile("Ds2", CI_RECORDS)
    legacy = generate_source_pair(profile)
    sharded = generate_source_pair(profile, shard_size=64)
    assert [r.record_id for r in legacy.left] == [
        r.record_id for r in sharded.left
    ]
    assert [r.record_id for r in legacy.right] == [
        r.record_id for r in sharded.right
    ]
    assert legacy.matches == sharded.matches
    legacy_values = [dict(r.values) for r in legacy.left]
    sharded_values = [dict(r.values) for r in sharded.left]
    assert legacy_values != sharded_values


def test_shard_bounds_validated():
    profile = scale_profile("Ds2", CI_RECORDS)
    n_shards = shard_count(profile, 64)
    assert n_shards == -(-total_entities(profile) // 64)
    with pytest.raises(ValueError):
        generate_shard(profile, n_shards, 64)
    with pytest.raises(ValueError):
        generate_shard(profile, -1, 64)
    with pytest.raises(ValueError):
        shard_count(profile, 0)
