"""Tests for the corruption channels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.noise import NoiseModel, abbreviate, typo

words = st.text(alphabet="abcdefgh", min_size=1, max_size=10)


class TestTypo:
    @given(words, st.integers(0, 1000))
    def test_edit_distance_at_most_one_char_class(self, word, seed):
        rng = np.random.default_rng(seed)
        mutated = typo(word, rng)
        assert abs(len(mutated) - len(word)) <= 1

    def test_empty_word_unchanged(self):
        assert typo("", np.random.default_rng(0)) == ""

    def test_changes_something_eventually(self):
        rng = np.random.default_rng(1)
        assert any(typo("widget", rng) != "widget" for __ in range(10))


class TestAbbreviate:
    def test_first_letter(self):
        assert abbreviate("john") == "j"

    def test_empty(self):
        assert abbreviate("") == ""


class TestNoiseModel:
    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            NoiseModel(typo_rate=1.5)
        with pytest.raises(ValueError):
            NoiseModel(drop_rate=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(drop_rate=0.5, drop_rate_max=0.3)

    def test_zero_noise_is_identity(self):
        model = NoiseModel()
        tokens = ["alpha", "beta", "gamma"]
        rng = np.random.default_rng(0)
        assert model.corrupt_tokens(tokens, rng) == tokens

    def test_never_empties_token_list(self):
        model = NoiseModel(drop_rate=0.99)
        rng = np.random.default_rng(1)
        for __ in range(50):
            assert model.corrupt_tokens(["a", "b", "c"], rng)

    def test_drop_reduces_tokens(self):
        model = NoiseModel(drop_rate=0.5)
        rng = np.random.default_rng(2)
        tokens = ["t"] * 100
        assert len(model.corrupt_tokens(tokens, rng)) < 80

    def test_variable_drop_varies(self):
        model = NoiseModel(drop_rate=0.0, drop_rate_max=0.9)
        rng = np.random.default_rng(3)
        lengths = {
            len(model.corrupt_tokens(["t"] * 50, rng)) for __ in range(20)
        }
        assert max(lengths) - min(lengths) > 10

    def test_missing_rate(self):
        model = NoiseModel(missing_rate=1.0)
        assert model.drop_attribute(np.random.default_rng(0))
        assert not NoiseModel().drop_attribute(np.random.default_rng(0))

    def test_dirty_misplacement(self):
        model = NoiseModel(dirty_misplacement_rate=1.0)
        rng = np.random.default_rng(4)
        values = {"title": "main", "brand": "acme", "price": "9.99"}
        result = model.misplace_values(values, "title", rng)
        assert result["brand"] == ""
        assert result["price"] == ""
        assert "acme" in result["title"] and "9.99" in result["title"]
        assert result["title"].startswith("main")

    def test_dirty_zero_rate_is_identity(self):
        model = NoiseModel()
        values = {"title": "main", "brand": "acme"}
        result = model.misplace_values(values, "title", np.random.default_rng(0))
        assert result == values

    def test_dirty_skips_empty_values(self):
        model = NoiseModel(dirty_misplacement_rate=1.0)
        values = {"title": "main", "brand": ""}
        result = model.misplace_values(values, "title", np.random.default_rng(0))
        assert result["title"] == "main"

    def test_is_dirty_flag(self):
        assert NoiseModel(dirty_misplacement_rate=0.5).is_dirty
        assert not NoiseModel().is_dirty
