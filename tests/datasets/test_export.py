"""Tests for the benchmark batch exporter."""

from __future__ import annotations

import json

import pytest

from repro.data.io import load_task
from repro.datasets.export import export_benchmarks


class TestExportBenchmarks:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        target = tmp_path_factory.mktemp("release")
        manifest = export_benchmarks(
            target,
            established=("Ds5",),
            sources=("dblp_acm",),
            size_factor=0.5,
        )
        return target, manifest

    def test_manifest_written(self, exported):
        target, manifest = exported
        on_disk = json.loads((target / "manifest.json").read_text())
        assert set(on_disk) == set(manifest) == {"Ds5", "Dn3"}

    def test_established_round_trip(self, exported):
        target, manifest = exported
        task = load_task(target / "Ds5")
        assert task.name == "Ds5"
        assert len(task.all_pairs()) == manifest["Ds5"]["pairs"]

    def test_new_benchmark_round_trip(self, exported):
        target, manifest = exported
        task = load_task(target / "Dn3")
        assert manifest["Dn3"]["kind"] == "new"
        assert manifest["Dn3"]["pair_completeness"] >= 0.85
        assert len(task.all_pairs()) == manifest["Dn3"]["pairs"]

    def test_manifest_provenance_fields(self, exported):
        __, manifest = exported
        assert "blocking" in manifest["Dn3"]
        assert "attributes" in manifest["Ds5"]

    def test_unknown_source_raises(self, tmp_path):
        with pytest.raises(KeyError):
            export_benchmarks(tmp_path, established=(), sources=("nope",))
