"""Tests for the two-source generator and pair sampling."""

from __future__ import annotations

import pytest

from repro.datasets.entities import EntityFactory, bibliographic_domain, product_domain
from repro.datasets.generator import (
    GeneratorProfile,
    build_task_from_sources,
    generate_source_pair,
    hard_negative_candidates,
    sample_candidate_pairs,
)
from repro.datasets.noise import NoiseModel
from repro.text.similarity import jaccard_similarity


@pytest.fixture(scope="module")
def profile() -> GeneratorProfile:
    return GeneratorProfile(
        name="gen_test",
        domain=product_domain("gen_test"),
        n_matches=60,
        left_extra=20,
        right_extra=30,
        synonym_rate_right=0.3,
        noise_left=NoiseModel(typo_rate=0.02),
        noise_right=NoiseModel(typo_rate=0.05),
        seed=11,
    )


@pytest.fixture(scope="module")
def sources(profile):
    return generate_source_pair(profile)


class TestEntityFactory:
    def test_generates_requested_count(self):
        factory = EntityFactory(bibliographic_domain(), seed=0)
        entities = factory.generate(25)
        assert len(entities) == 25
        assert len({e.entity_id for e in entities}) == 25

    def test_entities_cover_all_attributes(self):
        domain = bibliographic_domain()
        factory = EntityFactory(domain, seed=0)
        entity = factory.generate(1)[0]
        assert set(entity.parts) == set(domain.attribute_names())

    def test_family_variants_share_title(self):
        domain = bibliographic_domain()
        factory = EntityFactory(domain, seed=1)
        entities = factory.generate(60, family_fraction=0.9)
        titles = [e.parts["title"] for e in entities]
        assert len(set(map(tuple, titles))) < len(titles)

    def test_no_families_when_fraction_zero(self):
        domain = product_domain()
        factory = EntityFactory(domain, seed=2)
        entities = factory.generate(40, family_fraction=0.0)
        names = {tuple(e.parts["name"]) for e in entities}
        assert len(names) == 40


class TestGenerateSourcePair:
    def test_sizes(self, sources, profile):
        assert len(sources.left) == profile.n_matches + profile.left_extra
        assert len(sources.right) == profile.n_matches + profile.right_extra
        assert sources.n_matches == profile.n_matches

    def test_matches_reference_real_records(self, sources):
        for left_id, right_id in sources.matches:
            assert left_id in sources.left
            assert right_id in sources.right

    def test_matching_records_are_similar(self, sources):
        similarities = [
            jaccard_similarity(
                sources.left.get(left_id).tokens(),
                sources.right.get(right_id).tokens(),
            )
            for left_id, right_id in sorted(sources.matches)[:30]
        ]
        assert sum(similarities) / len(similarities) > 0.3

    def test_deterministic(self, profile):
        first = generate_source_pair(profile)
        second = generate_source_pair(profile)
        assert first.matches == second.matches
        assert [r.values for r in first.left] == [r.values for r in second.left]

    def test_vocabulary_attached(self, sources):
        assert sources.vocabulary is not None

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            GeneratorProfile(
                name="bad", domain=product_domain(), n_matches=0,
                left_extra=0, right_extra=0,
            )


class TestHardNegatives:
    def test_sorted_by_similarity(self, sources):
        pool = hard_negative_candidates(sources, per_left=3)
        scores = [score for score, __, __ in pool]
        assert scores == sorted(scores, reverse=True)

    def test_excludes_matches(self, sources):
        pool = hard_negative_candidates(sources, per_left=3)
        keys = {(left_id, right_id) for __, left_id, right_id in pool}
        assert not keys & sources.matches


class TestSampleCandidatePairs:
    def test_counts_and_imbalance(self, sources):
        pairs = sample_candidate_pairs(
            sources, n_pairs=200, positive_fraction=0.2, seed=0
        )
        assert len(pairs) == 200
        assert pairs.positive_count == 40

    def test_positive_cap_by_matches(self, sources):
        pairs = sample_candidate_pairs(
            sources, n_pairs=400, positive_fraction=0.5, seed=0
        )
        assert pairs.positive_count == sources.n_matches

    def test_match_recall_limits_positives(self, sources):
        pairs = sample_candidate_pairs(
            sources, n_pairs=200, positive_fraction=0.5,
            match_recall=0.5, seed=0,
        )
        assert pairs.positive_count == round(sources.n_matches * 0.5)

    def test_hard_negatives_are_harder(self, sources):
        easy = sample_candidate_pairs(
            sources, n_pairs=150, positive_fraction=0.2,
            hard_negative_fraction=0.0, seed=1,
        )
        hard = sample_candidate_pairs(
            sources, n_pairs=150, positive_fraction=0.2,
            hard_negative_fraction=1.0, seed=1,
        )

        def mean_negative_similarity(pairs):
            values = [
                jaccard_similarity(pair.left.tokens(), pair.right.tokens())
                for pair, label in pairs
                if label == 0
            ]
            return sum(values) / len(values)

        assert mean_negative_similarity(hard) > mean_negative_similarity(easy) + 0.05

    def test_no_duplicates_no_matches_mislabeled(self, sources):
        pairs = sample_candidate_pairs(
            sources, n_pairs=250, positive_fraction=0.2,
            hard_negative_fraction=0.5, seed=2,
        )
        for pair, label in pairs:
            is_match = pair.key in sources.matches
            assert label == int(is_match)

    def test_invalid_args(self, sources):
        with pytest.raises(ValueError):
            sample_candidate_pairs(sources, n_pairs=1, positive_fraction=0.5)
        with pytest.raises(ValueError):
            sample_candidate_pairs(sources, n_pairs=10, positive_fraction=0.0)
        with pytest.raises(ValueError):
            sample_candidate_pairs(
                sources, n_pairs=10, positive_fraction=0.5, match_recall=0.0
            )


class TestBuildTask:
    def test_splits_and_metadata(self, sources):
        task = build_task_from_sources(
            sources, n_pairs=300, positive_fraction=0.2, seed=3
        )
        assert len(task.all_pairs()) == 300
        assert task.metadata["vocabulary"] is sources.vocabulary
        assert task.metadata["n_source_matches"] == sources.n_matches
        # 3:1:1 split
        assert len(task.training) == pytest.approx(180, abs=4)
        assert len(task.testing) == pytest.approx(60, abs=4)
