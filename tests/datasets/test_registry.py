"""Tests for the established/source dataset registry."""

from __future__ import annotations

import pytest

from repro.datasets.established import ESTABLISHED_PROFILES, build_established_task
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    SOURCE_DATASET_IDS,
    clear_cache,
    load_established_task,
    load_source_pair,
)
from repro.datasets.sources import NEW_BENCHMARK_LABELS, SOURCE_PROFILES


class TestRegistryListing:
    def test_thirteen_established(self):
        assert len(ESTABLISHED_DATASET_IDS) == 13
        assert ESTABLISHED_DATASET_IDS[0] == "Ds1"
        assert ESTABLISHED_DATASET_IDS[-1] == "Dt2"

    def test_eight_sources(self):
        assert len(SOURCE_DATASET_IDS) == 8
        assert NEW_BENCHMARK_LABELS["abt_buy"] == "Dn1"
        assert NEW_BENCHMARK_LABELS["dblp_scholar"] == "Dn8"

    def test_dirty_variants_mirror_structured(self):
        for structured, dirty in (("Ds1", "Dd1"), ("Ds4", "Dd4")):
            structured_profile = ESTABLISHED_PROFILES[structured]
            dirty_profile = ESTABLISHED_PROFILES[dirty]
            assert dirty_profile.dirty
            assert not structured_profile.dirty
            assert dirty_profile.n_pairs == structured_profile.n_pairs
            assert dirty_profile.seed == structured_profile.seed


class TestEstablishedBuilding:
    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            build_established_task("nope")

    def test_invalid_size_factor(self):
        with pytest.raises(ValueError):
            build_established_task("Ds1", size_factor=0.0)

    def test_small_scale_build(self):
        task = build_established_task("Ds5", size_factor=0.5)
        stats = task.statistics()
        assert stats.training_instances > 50
        assert 0.05 < stats.imbalance_ratio < 0.35

    def test_imbalance_matches_profile(self):
        task = build_established_task("Ds5", size_factor=1.0)
        profile = ESTABLISHED_PROFILES["Ds5"]
        assert task.all_pairs().imbalance_ratio == pytest.approx(
            profile.positive_fraction, abs=0.03
        )

    def test_dirty_variant_differs_from_structured(self):
        structured = build_established_task("Ds3", size_factor=0.5)
        dirty = build_established_task("Dd3", size_factor=0.5)
        # Same pair structure, corrupted values.
        assert len(structured.all_pairs()) == len(dirty.all_pairs())
        structured_record = structured.left.records()[0]
        dirty_record = dirty.left.records()[0]
        assert structured_record.record_id == dirty_record.record_id
        # At least some records must show misplaced values.
        misplaced = 0
        for s_rec, d_rec in zip(structured.left, dirty.left):
            if s_rec.values != d_rec.values:
                misplaced += 1
        assert misplaced > 0

    def test_attribute_counts(self):
        expectations = {"Ds1": 4, "Ds3": 8, "Ds4": 5, "Ds6": 3, "Ds7": 6, "Dt2": 1}
        for dataset_id, n_attributes in expectations.items():
            task = load_established_task(dataset_id, 0.5)
            assert len(task.attributes) == n_attributes, dataset_id


class TestCaching:
    def test_same_object_returned(self):
        clear_cache()
        first = load_established_task("Ds5", 0.5)
        second = load_established_task("Ds5", 0.5)
        assert first is second

    def test_cache_cleared(self):
        first = load_established_task("Ds5", 0.5)
        clear_cache()
        second = load_established_task("Ds5", 0.5)
        assert first is not second

    def test_source_pair_cached(self):
        clear_cache()
        first = load_source_pair("abt_buy", 0.5)
        second = load_source_pair("abt_buy", 0.5)
        assert first is second

    def test_source_determinism_across_cache_clear(self):
        clear_cache()
        first = load_source_pair("dblp_acm", 0.5)
        clear_cache()
        second = load_source_pair("dblp_acm", 0.5)
        assert first.matches == second.matches


class TestSourceProfiles:
    def test_all_sources_build(self):
        for source_id in SOURCE_DATASET_IDS:
            pair = load_source_pair(source_id, 0.25)
            assert pair.n_matches >= 20
            assert len(pair.left) >= pair.n_matches

    def test_expected_attribute_counts(self):
        expectations = {
            "abt_buy": 3, "amazon_google": 3, "dblp_acm": 4,
            "imdb_tmdb": 5, "imdb_tvdb": 4, "tmdb_tvdb": 6,
            "walmart_amazon": 5, "dblp_scholar": 4,
        }
        for source_id, n_attributes in expectations.items():
            profile = SOURCE_PROFILES[source_id]
            assert len(profile.domain.attributes) == n_attributes, source_id


@pytest.mark.slow
class TestFullScaleIntegrity:
    def test_all_established_build_at_ci_scale(self):
        for dataset_id in ESTABLISHED_DATASET_IDS:
            task = load_established_task(dataset_id, 1.0)
            stats = task.statistics()
            # Every benchmark respects Problem 1's split disjointness (the
            # MatchingTask constructor enforces it) and has both classes in
            # every split.
            assert stats.training_positives > 0, dataset_id
            assert stats.testing_positives > 0, dataset_id
            assert stats.training_negatives > 0, dataset_id
            assert stats.testing_negatives > 0, dataset_id
