"""Tests for concept vocabularies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.vocabulary import Concept, ConceptVocabulary, build_vocabulary


class TestConcept:
    def test_canonical(self):
        concept = Concept(0, "brand", ("sony", "soni"))
        assert concept.canonical == "sony"

    def test_no_surfaces_raises(self):
        with pytest.raises(ValueError):
            Concept(0, "brand", ())


class TestConceptVocabulary:
    def test_add_and_lookup(self):
        vocabulary = ConceptVocabulary("test")
        vocabulary.add(Concept(0, "brand", ("sony",)))
        assert vocabulary.get(0).canonical == "sony"
        assert [c.concept_id for c in vocabulary.pool("brand")] == [0]
        assert vocabulary.concepts_for_surface("sony")[0].concept_id == 0

    def test_duplicate_id_raises(self):
        vocabulary = ConceptVocabulary("test")
        vocabulary.add(Concept(0, "brand", ("a",)))
        with pytest.raises(ValueError):
            vocabulary.add(Concept(0, "brand", ("b",)))

    def test_replace(self):
        vocabulary = ConceptVocabulary("test")
        vocabulary.add(Concept(0, "brand", ("a",)))
        vocabulary.replace(0, Concept(0, "brand", ("a", "alias")))
        assert vocabulary.get(0).surfaces == ("a", "alias")
        assert vocabulary.concepts_for_surface("alias")

    def test_replace_wrong_id_raises(self):
        vocabulary = ConceptVocabulary("test")
        vocabulary.add(Concept(0, "brand", ("a",)))
        with pytest.raises(ValueError):
            vocabulary.replace(0, Concept(1, "brand", ("b",)))

    def test_homograph_surfaces(self):
        vocabulary = ConceptVocabulary("test")
        vocabulary.add(Concept(0, "p", ("bank", "lender")))
        vocabulary.add(Concept(1, "p", ("bank", "shore")))
        assert vocabulary.homograph_surfaces() == ["bank"]

    def test_sample_is_from_pool(self):
        vocabulary = ConceptVocabulary("test")
        for index in range(5):
            vocabulary.add(Concept(index, "p", (f"w{index}",)))
        rng = np.random.default_rng(0)
        for __ in range(20):
            assert vocabulary.sample("p", rng).pool == "p"


class TestBuildVocabulary:
    def test_pool_sizes(self):
        vocabulary = build_vocabulary("d", {"a": 10, "b": 5}, seed=0)
        assert len(vocabulary.pool("a")) == 10
        assert len(vocabulary.pool("b")) == 5
        assert set(vocabulary.pool_names()) == {"a", "b"}

    def test_deterministic(self):
        first = build_vocabulary("d", {"a": 20}, seed=7)
        second = build_vocabulary("d", {"a": 20}, seed=7)
        assert [c.surfaces for c in first.concepts] == [
            c.surfaces for c in second.concepts
        ]

    def test_seeds_differ(self):
        first = build_vocabulary("d", {"a": 20}, seed=1)
        second = build_vocabulary("d", {"a": 20}, seed=2)
        assert [c.surfaces for c in first.concepts] != [
            c.surfaces for c in second.concepts
        ]

    def test_synonym_fraction(self):
        vocabulary = build_vocabulary(
            "d", {"a": 200}, synonym_fraction=0.5, homograph_fraction=0.0, seed=3
        )
        with_synonyms = sum(
            1 for c in vocabulary.concepts if len(c.surfaces) > 1
        )
        assert 60 <= with_synonyms <= 140

    def test_no_synonyms(self):
        vocabulary = build_vocabulary(
            "d", {"a": 50}, synonym_fraction=0.0, homograph_fraction=0.0, seed=4
        )
        assert all(len(c.surfaces) == 1 for c in vocabulary.concepts)

    def test_homographs_created(self):
        vocabulary = build_vocabulary(
            "d", {"a": 100}, homograph_fraction=0.1, seed=5
        )
        assert vocabulary.homograph_surfaces()

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError):
            build_vocabulary("d", {"a": 5}, synonym_fraction=1.5)
        with pytest.raises(ValueError):
            build_vocabulary("d", {"a": 5}, homograph_fraction=-0.1)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            build_vocabulary("d", {"a": 0})
