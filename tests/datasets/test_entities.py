"""Tests for domain specs and entity factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.entities import (
    AttributeSpec,
    EntityFactory,
    beer_domain,
    bibliographic_domain,
    company_domain,
    movie_domain,
    music_domain,
    product_domain,
    restaurant_domain,
    rich_product_domain,
    software_domain,
)

ALL_DOMAINS = [
    product_domain(),
    rich_product_domain(),
    software_domain(),
    bibliographic_domain(),
    music_domain(),
    beer_domain(),
    restaurant_domain(),
    movie_domain("movies", ("title", "director", "actors", "year", "genre")),
    company_domain(),
]


class TestAttributeSpec:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "mystery")

    def test_concepts_need_pool(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "concepts")

    def test_bad_part_range(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "concepts", pool="p", min_parts=3, max_parts=2)


class TestDomainCatalogue:
    @pytest.mark.parametrize("domain", ALL_DOMAINS, ids=lambda d: d.name)
    def test_title_attribute_exists(self, domain):
        assert domain.title_attribute in domain.attribute_names()

    @pytest.mark.parametrize("domain", ALL_DOMAINS, ids=lambda d: d.name)
    def test_pools_cover_concept_attributes(self, domain):
        for spec in domain.attributes:
            if spec.kind in ("concepts", "text"):
                assert spec.pool in domain.pools, spec.name
            if spec.kind == "person":
                assert "first_name" in domain.pools
                assert "last_name" in domain.pools

    def test_movie_domain_rejects_unknown_attributes(self):
        with pytest.raises(ValueError):
            movie_domain("bad", ("title", "no_such_attr"))


class TestEntityFactoryRendering:
    @pytest.mark.parametrize("domain", ALL_DOMAINS, ids=lambda d: d.name)
    def test_every_attribute_has_parts(self, domain):
        factory = EntityFactory(domain, seed=9)
        for entity in factory.generate(10, family_fraction=0.0):
            for spec in domain.attributes:
                parts = entity.parts[spec.name]
                assert parts, (domain.name, spec.name)
                for part in parts:
                    assert (part.concept_id is None) != (part.literal is None)

    def test_code_attributes_are_literals(self):
        factory = EntityFactory(rich_product_domain(), seed=2)
        entity = factory.generate(1)[0]
        (code_part,) = entity.parts["modelno"]
        assert code_part.literal is not None
        assert any(char.isdigit() for char in code_part.literal)

    def test_with_code_appends_code(self):
        factory = EntityFactory(product_domain(), seed=3)
        entity = factory.generate(1)[0]
        name_parts = entity.parts["name"]
        assert name_parts[-1].literal is not None  # the appended code
        assert all(part.concept_id is not None for part in name_parts[:-1])

    def test_variant_changes_code_keeps_name_words(self):
        factory = EntityFactory(product_domain(), seed=4)
        rng = np.random.default_rng(0)
        base = factory._fresh(0, rng)
        variant = factory._variant_of(base, 1, rng)
        base_name = base.parts["name"]
        variant_name = variant.parts["name"]
        assert [p.concept_id for p in base_name[:-1]] == [
            p.concept_id for p in variant_name[:-1]
        ]
        assert base_name[-1].literal != variant_name[-1].literal

    def test_invalid_generate_args(self):
        factory = EntityFactory(beer_domain(), seed=0)
        with pytest.raises(ValueError):
            factory.generate(0)
        with pytest.raises(ValueError):
            factory.generate(5, family_fraction=1.5)

    def test_year_and_price_formats(self):
        factory = EntityFactory(bibliographic_domain(), seed=5)
        entity = factory.generate(1)[0]
        (year_part,) = entity.parts["year"]
        assert year_part.literal is not None
        assert 1950 <= int(year_part.literal) <= 2023
