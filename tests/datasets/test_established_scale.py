"""Scale-clamp provenance of the established benchmark builder.

``_scaled`` floors ``n_matches`` at 20 and ``n_pairs`` at 60; tiny
``--scale`` values used to silently produce datasets larger than
requested. The builder now records the effective scale in the task
metadata and warns once per dataset when a floor fires.
"""

from __future__ import annotations

import warnings

import pytest

from repro.datasets.established import (
    ESTABLISHED_PROFILES,
    _reset_clamp_warnings,
    build_established_task,
    effective_scale,
)


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    _reset_clamp_warnings()
    yield
    _reset_clamp_warnings()


class TestEffectiveScale:
    def test_unclamped_at_ci_scale(self):
        info = effective_scale("Ds5", 1.0)
        assert info["clamped"] is False
        assert info["requested"] == 1.0
        assert info["n_matches"] == pytest.approx(1.0)
        assert info["n_pairs"] == pytest.approx(1.0)

    def test_tiny_factor_reports_clamp(self):
        profile = ESTABLISHED_PROFILES["Ds5"]
        info = effective_scale("Ds5", 0.05)
        assert info["clamped"] is True
        # The floors, expressed as factors of the profile's base counts.
        assert info["n_matches"] == pytest.approx(20 / profile.n_matches)
        assert info["n_pairs"] == pytest.approx(60 / profile.n_pairs)
        assert info["n_matches"] > 0.05
        assert info["n_pairs"] > 0.05

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            effective_scale("nope", 1.0)


class TestBuildRecordsProvenance:
    def test_clamped_build_warns_once_and_records_metadata(self):
        with pytest.warns(UserWarning, match="Ds5.*minimums"):
            task = build_established_task("Ds5", size_factor=0.05)
        scale = task.metadata["scale"]
        assert scale["clamped"] is True
        assert scale["requested"] == 0.05
        # The dataset really is bigger than requested: the floors held.
        assert len(task.training) + len(task.validation) + len(task.testing) >= 60

        # Second build of the same dataset: no duplicate warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_established_task("Ds5", size_factor=0.05)

    def test_unclamped_build_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            task = build_established_task("Ds5", size_factor=1.0)
        assert task.metadata["scale"]["clamped"] is False
