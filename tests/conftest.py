"""Shared fixtures: a small deterministic matching task and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record, RecordStore, Schema
from repro.data.task import MatchingTask
from repro.datasets.entities import product_domain
from repro.datasets.generator import (
    GeneratorProfile,
    build_task_from_sources,
    generate_source_pair,
)
from repro.datasets.noise import NoiseModel


def make_record(record_id: str, source: str, **values: str) -> Record:
    """Terse record construction for tests."""
    return Record(record_id=record_id, source=source, values=values)


@pytest.fixture(scope="session")
def tiny_schema() -> Schema:
    return Schema(("name", "description", "price"))


@pytest.fixture(scope="session")
def small_sources():
    """A small generated source pair (product domain, ~160 records/side)."""
    profile = GeneratorProfile(
        name="test_products",
        domain=product_domain("test_products"),
        n_matches=80,
        left_extra=40,
        right_extra=60,
        synonym_rate_right=0.3,
        noise_left=NoiseModel(typo_rate=0.03),
        noise_right=NoiseModel(typo_rate=0.05, drop_rate=0.03),
        family_fraction=0.3,
        seed=42,
    )
    return generate_source_pair(profile)


@pytest.fixture(scope="session")
def small_task(small_sources) -> MatchingTask:
    """A small matching task built from the generated sources."""
    return build_task_from_sources(
        small_sources,
        n_pairs=400,
        positive_fraction=0.2,
        hard_negative_fraction=0.4,
        seed=7,
        name="small_task",
    )


@pytest.fixture()
def handmade_task(tiny_schema) -> MatchingTask:
    """A tiny fully hand-written task with obvious matches.

    Left and right records agree on matching names up to case; negatives
    are entirely different. Useful where exact expectations matter.
    """
    left = RecordStore("L", tiny_schema)
    right = RecordStore("R", tiny_schema)
    matches = []
    for index in range(12):
        left_record = make_record(
            f"a{index}", "A",
            name=f"widget alpha {index}",
            description=f"fine blue widget number {index}",
            price=f"{10 + index}.99",
        )
        right_record = make_record(
            f"b{index}", "B",
            name=f"Widget Alpha {index}",
            description=f"fine blue widget number {index}",
            price=f"{10 + index}.99",
        )
        left.add(left_record)
        right.add(right_record)
        matches.append((left_record, right_record))
    for index in range(12, 24):
        left.add(
            make_record(
                f"a{index}", "A",
                name=f"gadget beta {index}",
                description=f"red gadget item {index}",
                price=f"{50 + index}.49",
            )
        )
        right.add(
            make_record(
                f"b{index}", "B",
                name=f"doohickey gamma {index}",
                description=f"green doohickey piece {index}",
                price=f"{90 + index}.00",
            )
        )

    rng = np.random.default_rng(3)
    pairs = LabeledPairSet()
    for left_record, right_record in matches:
        pairs.add(RecordPair(left_record, right_record), 1)
    left_ids = left.ids()
    right_ids = right.ids()
    while pairs.negative_count < 36:
        key = (
            left_ids[int(rng.integers(0, len(left_ids)))],
            right_ids[int(rng.integers(0, len(right_ids)))],
        )
        pair = RecordPair(left.get(key[0]), right.get(key[1]))
        if key in pairs or key[0].lstrip("a") == key[1].lstrip("b"):
            continue
        pairs.add(pair, 0)

    from repro.data.splits import split_three_way

    training, validation, testing = split_three_way(pairs, seed=5)
    return MatchingTask(
        name="handmade",
        left=left,
        right=right,
        training=training,
        validation=validation,
        testing=testing,
    )
