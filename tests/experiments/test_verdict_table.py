"""Tests for the verdict-table builder (with stubbed assessments)."""

from __future__ import annotations

import pytest

from repro.core.assessment import BenchmarkAssessment
from repro.core.complexity.profile import MEASURE_NAMES, ComplexityProfile
from repro.core.linearity import LinearityResult
from repro.core.practical import PracticalMeasures
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import verdict_table


def _fake_assessment(name: str, challenging: bool) -> BenchmarkAssessment:
    linearity_value = 0.5 if challenging else 0.95
    complexity_value = 0.5 if challenging else 0.2
    practical = (
        PracticalMeasures(0.15, 0.2, 0.8, 0.65)
        if challenging
        else PracticalMeasures(0.01, 0.01, 0.99, 0.98)
    )
    return BenchmarkAssessment(
        task_name=name,
        linearity={
            "cosine": LinearityResult("cosine", linearity_value, 0.5),
            "jaccard": LinearityResult("jaccard", linearity_value, 0.4),
        },
        complexity=ComplexityProfile(
            scores=dict.fromkeys(MEASURE_NAMES, complexity_value)
        ),
        practical=practical,
    )


@pytest.fixture()
def stub_runner(monkeypatch):
    challenging_set = {"Ds4", "Ds6", "Dd4", "Dt1"}

    def fake_assessment(self, dataset_id, with_practical=True):
        return _fake_assessment(dataset_id, dataset_id in challenging_set)

    monkeypatch.setattr(ExperimentRunner, "assessment", fake_assessment)
    return ExperimentRunner(size_factor=1.0)


class TestVerdictTable:
    def test_all_rows_present(self, stub_runner):
        headers, rows = verdict_table(stub_runner)
        assert len(rows) == 13
        assert headers[0] == "dataset" and headers[-1] == "verdict"

    def test_verdicts_follow_assessments(self, stub_runner):
        __, rows = verdict_table(stub_runner)
        challenging = {row[0] for row in rows if row[-1] == "CHALLENGING"}
        assert challenging == {"Ds4", "Ds6", "Dd4", "Dt1"}

    def test_gate_flags_rendered(self, stub_runner):
        __, rows = verdict_table(stub_runner)
        ds4 = next(row for row in rows if row[0] == "Ds4")
        assert ds4[5:8] == ["no", "no", "no"]
        ds1 = next(row for row in rows if row[0] == "Ds1")
        assert "yes" in ds1[5:8]

    def test_custom_dataset_subset(self, stub_runner):
        __, rows = verdict_table(stub_runner, ("Ds4", "Ds5"))
        assert [row[0] for row in rows] == ["Ds4", "Ds5"]

    def test_percent_formatting(self, stub_runner):
        __, rows = verdict_table(stub_runner, ("Ds4",))
        assert rows[0][3] == "+15.0%"
        assert rows[0][4] == "20.0%"
