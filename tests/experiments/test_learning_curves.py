"""Tests for the epoch learning-curve utility."""

from __future__ import annotations

import pytest

from repro.experiments.learning_curves import LearningCurve, learning_curve
from repro.matchers.deep import DeepMatcherNet, EMTransformerNet


class TestLearningCurveDataclass:
    def test_best_epoch(self):
        curve = LearningCurve("m", "t", (0.2, 0.9, 0.8), 0.85)
        assert curve.best_epoch == 2

    def test_plateau_epoch_before_best(self):
        curve = LearningCurve("m", "t", (0.895, 0.9, 0.9), 0.85)
        assert curve.plateau_epoch == 1

    def test_plateau_never_after_best(self):
        curve = LearningCurve("m", "t", (0.1, 0.5, 0.9), 0.85)
        assert curve.plateau_epoch <= curve.best_epoch


class TestLearningCurveExtraction:
    def test_records_one_point_per_epoch(self, handmade_task):
        curve = learning_curve(DeepMatcherNet(epochs=7), handmade_task)
        assert len(curve.validation_f1) == 7
        assert curve.task == "handmade"
        assert 0.0 <= curve.test_f1 <= 1.0

    def test_values_bounded(self, handmade_task):
        curve = learning_curve(EMTransformerNet("B", epochs=5), handmade_task)
        assert all(0.0 <= value <= 1.0 for value in curve.validation_f1)

    def test_longer_training_does_not_hurt_validation_peak(self, handmade_task):
        short = learning_curve(DeepMatcherNet(epochs=5, seed=1), handmade_task)
        long = learning_curve(DeepMatcherNet(epochs=25, seed=1), handmade_task)
        assert max(long.validation_f1) >= max(short.validation_f1) - 1e-9
