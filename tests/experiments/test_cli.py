"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output
        assert "Ds1" in output and "abt_buy" in output

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_audit_requires_dataset(self, capsys):
        assert main(["audit"]) == 2
        assert "requires a dataset" in capsys.readouterr().out

    def test_table3_half_scale(self, capsys, tmp_path):
        assert main(["table3", "--scale", "0.5", "--cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Table III" in output
        assert "Ds1" in output and "Dt2" in output

    def test_fig1_half_scale(self, capsys, tmp_path):
        assert main(["fig1", "--scale", "0.5", "--cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "f1_cosine" in output

    @pytest.mark.slow
    def test_audit_dataset(self, capsys, tmp_path):
        assert main(
            ["audit", "Ds5", "--scale", "0.5", "--cache", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "CHALLENGING" in output
        assert "non-linear boost" in output
