"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output
        assert "Ds1" in output and "abt_buy" in output

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_audit_requires_dataset(self, capsys):
        assert main(["audit"]) == 2
        assert "requires a dataset" in capsys.readouterr().out

    def test_scale_up_small_run_and_resume(self, capsys, tmp_path):
        args = [
            "scale-up", "Ds2", "--records", "600", "--shard-size", "150",
            "--cache", str(tmp_path), "--out", str(tmp_path / "report.json"),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "Scale sweep" in output
        assert "records/sec" in output
        assert (tmp_path / "report.json").exists()
        assert (tmp_path / "scale" / "scale.journal").exists()

        # A rerun resumes every shard from the journal.
        assert main(args[:-2]) == 0
        assert "resumed from the journal" in capsys.readouterr().out

    def test_scale_up_rejects_bad_config(self, capsys, tmp_path):
        assert main(
            ["scale-up", "Ds2", "--records", "600", "--matcher", "SAS",
             "--cache", str(tmp_path)]
        ) == 2
        assert "scale-up:" in capsys.readouterr().out

    def test_table3_half_scale(self, capsys, tmp_path):
        assert main(["table3", "--scale", "0.5", "--cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Table III" in output
        assert "Ds1" in output and "Dt2" in output

    def test_fig1_half_scale(self, capsys, tmp_path):
        assert main(["fig1", "--scale", "0.5", "--cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "f1_cosine" in output

    @pytest.mark.slow
    def test_audit_dataset(self, capsys, tmp_path):
        assert main(
            ["audit", "Ds5", "--scale", "0.5", "--cache", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "CHALLENGING" in output
        assert "non-linear boost" in output
