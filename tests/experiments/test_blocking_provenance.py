"""Tests for the ANN blocking-provenance wiring (runner/table/stability)."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main
from repro.experiments.runner import ExperimentRunner
from repro.experiments.stability import ann_stability
from repro.experiments.tables import blocking_provenance_table


@pytest.fixture(scope="module")
def small_runner() -> ExperimentRunner:
    return ExperimentRunner(size_factor=0.15, seed=0, cache_dir=None)


class TestRunnerProvenance:
    def test_memoized(self, small_runner):
        first = small_runner.blocking_provenance("abt_buy")
        second = small_runner.blocking_provenance("abt_buy")
        assert first is second
        assert set(first) == {"exhaustive", "lsh", "graph"}

    def test_cssr_consistent(self, small_runner):
        from repro.datasets.registry import load_source_pair

        sweep = small_runner.blocking_provenance("abt_buy")
        sources = load_source_pair("abt_buy", 0.15)
        cross = len(sources.left) * len(sources.right)
        for provenance in sweep.values():
            assert provenance.cssr == pytest.approx(
                provenance.result.n_candidates / cross
            )


class TestProvenanceTable:
    def test_structure(self, small_runner):
        headers, rows = blocking_provenance_table(
            small_runner, dataset_ids=("abt_buy",)
        )
        assert headers[0] == "dataset"
        assert [row[1] for row in rows] == ["exhaustive", "lsh", "graph"]
        for row in rows:
            assert len(row) == len(headers)


class TestAnnStability:
    def test_repetition_protocol(self, small_sources):
        summaries = ann_stability(small_sources, repetitions=3)
        assert set(summaries) == {
            "pair_completeness",
            "pairs_quality",
            "n_candidates",
        }
        assert len(summaries["pair_completeness"].values) == 3
        assert 0.0 <= summaries["pair_completeness"].mean <= 1.0

    def test_invalid_repetitions(self, small_sources):
        with pytest.raises(ValueError):
            ann_stability(small_sources, repetitions=0)


class TestBlockingCli:
    def test_blocking_experiment(self, capsys):
        code = main(
            [
                "blocking",
                "--scale", "0.15",
                "--cache", "",
                "--datasets", "abt_buy",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lsh" in out and "graph" in out and "exhaustive" in out

    def test_blocker_filter(self, capsys):
        code = main(
            [
                "blocking",
                "--scale", "0.15",
                "--cache", "",
                "--datasets", "abt_buy",
                "--blocker", "ann",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "exhaustive" not in out

    def test_rejects_established_ids(self, capsys):
        code = main(
            ["blocking", "--cache", "", "--datasets", "Ds1"]
        )
        assert code == 2
        assert "source dataset ids" in capsys.readouterr().out
