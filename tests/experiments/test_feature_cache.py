"""Runner wiring of the content-addressed feature-matrix cache."""

from __future__ import annotations

from repro import obs
from repro.experiments.runner import ExperimentRunner
from repro.obs import Observability


class TestRunnerFeatureCache:
    def test_envelopes_persist_and_warm_the_next_run(self, tmp_path):
        runner = ExperimentRunner(size_factor=0.5, cache_dir=tmp_path)
        first = runner.matcher_results("Ds5")
        features_dir = tmp_path / "features"
        assert list(features_dir.glob("features_*.json"))

        # Drop the suite-level result envelopes so the next runner must
        # re-run every matcher — but keep the feature matrices.
        for envelope in tmp_path.glob("suite_*.json"):
            envelope.unlink()
        with obs.use(Observability()):
            clone = ExperimentRunner(size_factor=0.5, cache_dir=tmp_path)
            second = clone.matcher_results("Ds5")
            assert obs.counter("features.cache_hit") > 0
        assert {name: result.f1 for name, result in first.items()} == {
            name: result.f1 for name, result in second.items()
        }

    def test_feature_cache_disabled_by_config(self, tmp_path):
        runner = ExperimentRunner(
            size_factor=0.5, cache_dir=tmp_path, feature_cache=False
        )
        assert runner.feature_cache is None

    def test_feature_cache_needs_a_cache_dir(self):
        assert ExperimentRunner(size_factor=0.5).feature_cache is None
