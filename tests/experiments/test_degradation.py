"""Integration tests for graceful degradation and checkpoint resume.

The acceptance scenario of the fault-tolerant execution layer: a suite
run with a matcher forced to fail and a pre-corrupted cache entry must
complete end-to-end, render explicitly marked degraded cells, list every
:class:`FailureRecord` in the report, and a killed-then-restarted run
must resume from the checkpoint journal without recomputing completed
units. Tests marked ``fault_smoke`` form the fast smoke set that
``scripts/verify.sh`` runs.
"""

from __future__ import annotations

import pytest

import repro.experiments.snapshot as snapshot_module
from repro.experiments.cli import main
from repro.experiments.runner import ExperimentRunner, JOURNAL_NAME
from repro.experiments.tables import DEGRADED_CELL, _f1_table
from repro.experiments.report import render_failures, render_table
from repro.runtime import FailureRecord, faults

SCALE = 0.3
DATASET = "Ds5"
FAILING_MATCHER = "DITTO (15)"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def make_runner(cache_dir) -> ExperimentRunner:
    return ExperimentRunner(size_factor=SCALE, seed=0, cache_dir=cache_dir)


@pytest.mark.fault_smoke
class TestMatcherFaultDegradation:
    def test_suite_completes_with_marked_cell_and_failure_record(self, tmp_path):
        runner = make_runner(tmp_path)
        with faults.injected(f"matcher:{FAILING_MATCHER}"):
            results = runner.matcher_results(DATASET)

        # The sweep completed: every matcher has a result, exactly one
        # of them the degraded placeholder.
        assert len(results) > 20
        assert results[FAILING_MATCHER].degraded
        assert results[FAILING_MATCHER].f1 == 0.0
        healthy = [r for r in results.values() if not r.degraded]
        assert len(healthy) == len(results) - 1

        # The table renders the degraded cell explicitly.
        headers, rows = _f1_table(runner, (DATASET,))
        rendered = render_table(headers, rows)
        failing_row = next(r for r in rows if r[0] == FAILING_MATCHER)
        assert failing_row[2] == DEGRADED_CELL
        assert DEGRADED_CELL in rendered

        # The failure surfaces as a structured record in the report.
        failures = runner.failure_records()
        assert [f.unit_id for f in failures] == [f"{DATASET}/{FAILING_MATCHER}"]
        assert failures[0].phase == "matcher"
        report = render_failures(failures)
        assert FAILING_MATCHER in report and "InjectedFault" in report


@pytest.mark.fault_smoke
class TestCorruptCacheDegradation:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        make_runner(tmp_path).matcher_results(DATASET)
        cache_file = next(tmp_path.glob(f"suite_{DATASET}_*.json"))
        cache_file.write_text("{ truncated mid-write", encoding="utf-8")

        runner = make_runner(tmp_path)
        results = runner.matcher_results(DATASET)

        assert len(results) > 20
        assert not any(r.degraded for r in results.values())
        failures = runner.failure_records()
        assert [f.phase for f in failures] == ["cache"]
        assert f"sweep:{DATASET}" in failures[0].unit_id
        assert list(tmp_path.glob("*.quarantined"))
        # The recomputed entry replaced the corrupt one.
        assert cache_file.exists()

    def test_injected_corruption_equivalent(self, tmp_path):
        make_runner(tmp_path).matcher_results(DATASET)
        runner = make_runner(tmp_path)
        with faults.injected("cache:read", "corrupt"):
            results = runner.matcher_results(DATASET)
        assert len(results) > 20
        assert [f.phase for f in runner.failure_records()] == ["cache"]


class TestCheckpointResume:
    def test_restart_resumes_without_recompute(self, tmp_path):
        first = make_runner(tmp_path)
        first.matcher_results(DATASET)
        assert first.journal is not None
        assert first.journal.is_done(f"sweep:{DATASET}")
        assert (tmp_path / JOURNAL_NAME).exists()

        # "Restart": a fresh runner (fresh process state) over the same
        # cache dir. Arm a fault on the sweep site — if the unit were
        # recomputed instead of resumed, the sweep would blow up and
        # come back empty.
        resumed = make_runner(tmp_path)
        with faults.injected(f"sweep:{DATASET}", times=None):
            results = resumed.matcher_results(DATASET)
        assert len(results) > 20
        assert resumed.failure_records() == []
        assert resumed.journal.is_done(f"sweep:{DATASET}")

    def test_sweep_failure_degrades_to_empty_and_is_not_checkpointed(
        self, tmp_path
    ):
        runner = make_runner(tmp_path)
        with faults.injected(f"sweep:{DATASET}", times=None):
            results = runner.matcher_results(DATASET)
        assert results == {}
        failures = runner.failure_records()
        assert [f.phase for f in failures] == ["sweep"]
        assert not runner.journal.is_done(f"sweep:{DATASET}")
        # And the degraded dataset renders as hyphens, not a crash.
        headers, rows = _f1_table(runner, (DATASET,))
        assert rows == []  # no roster at all for a single failed dataset

    def test_retry_policy_recovers_transient_sweep_fault(self, tmp_path):
        from repro.runtime import ExecutionPolicy

        policy = ExecutionPolicy(
            max_attempts=2, backoff_base=0.0, seed=0, sleep=lambda _s: None
        )
        runner = ExperimentRunner(
            size_factor=SCALE, seed=0, cache_dir=tmp_path, policy=policy
        )
        with faults.injected(f"sweep:{DATASET}", times=1):
            results = runner.matcher_results(DATASET)
        assert len(results) > 20
        assert runner.failure_records() == []


class TestSnapshotFailures:
    def test_snapshot_lists_failure_records(self, tmp_path, monkeypatch):
        # Stub the heavy builders; the failure plumbing is what's under test.
        monkeypatch.setattr(
            snapshot_module, "compare_all", lambda runner: ([], [])
        )
        for name in ("table3", "table4", "table5", "table6", "table7"):
            monkeypatch.setattr(
                snapshot_module.tables, name, lambda runner: ([], [])
            )
        for name in ("figure1", "figure2", "figure3", "figure4", "figure5",
                     "figure6"):
            monkeypatch.setattr(
                snapshot_module.figures, name, lambda runner: {}
            )
        monkeypatch.setattr(
            ExperimentRunner,
            "assessment",
            lambda self, dataset_id, with_practical=True: type(
                "A", (), {"summary": lambda self: {}}
            )(),
        )
        runner = make_runner(tmp_path)
        runner.record_failure(
            FailureRecord("sweep:Ds4", "sweep", 3, "ValueError", "boom", 1.0)
        )
        snapshot = snapshot_module.save_snapshot(runner, tmp_path / "snap.json")
        assert snapshot["failures"] == [
            {
                "unit_id": "sweep:Ds4",
                "phase": "sweep",
                "attempts": 3,
                "exception_type": "ValueError",
                "message": "boom",
                "elapsed_seconds": 1.0,
            }
        ]


@pytest.mark.fault_smoke
class TestCliResilience:
    def test_bad_scale_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table3", "--scale", "-1"])
        assert excinfo.value.code == 2
        assert "size factor must be > 0" in capsys.readouterr().err

    def test_non_numeric_scale(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table3", "--scale", "big"])
        assert excinfo.value.code == 2
        assert "expected a number" in capsys.readouterr().err

    def test_non_integer_seed(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table3", "--seed", "7.5"])
        assert excinfo.value.code == 2
        assert "expected an integer seed" in capsys.readouterr().err

    def test_unwritable_cache_dir(self, capsys, tmp_path):
        blocked = tmp_path / "occupied"
        blocked.write_text("a file where the cache dir should go")
        assert main(["table3", "--cache", str(blocked)]) == 2
        output = capsys.readouterr().out
        assert "not writable" in output and "hint" in output

    def test_bad_inject_spec(self, capsys, tmp_path):
        assert main(
            ["table3", "--cache", str(tmp_path), "--inject", "nonsense"]
        ) == 2
        assert "bad fault spec" in capsys.readouterr().out

    def test_audit_with_injected_fault_reports_degradation(
        self, capsys, tmp_path
    ):
        rc = main([
            "audit", DATASET,
            "--scale", str(SCALE),
            "--cache", str(tmp_path),
            "--inject", f"matcher:{FAILING_MATCHER}=error",
        ])
        assert rc == 0
        output = capsys.readouterr().out
        assert "CHALLENGING" in output
        assert "Degraded units" in output
        assert FAILING_MATCHER in output
