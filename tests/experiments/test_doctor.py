"""Tests for ``repro doctor``: state auditing, repair, and idempotency."""

from __future__ import annotations

import json
import os

from repro.experiments.cli import main
from repro.runtime.cache import QUARANTINE_SUFFIX, write_envelope
from repro.runtime.doctor import (
    JOURNAL_NAME,
    SCALE_JOURNAL_NAME,
    SCALE_MANIFEST_NAME,
    SERVE_JOURNAL_NAME,
    SERVE_SNAPSHOT_NAME,
    DoctorReport,
    report_to_json,
    run_doctor,
)
from repro.runtime.journal import CheckpointJournal

#: A pid no live process plausibly holds (far above default pid_max).
DEAD_PID = 99999999


def _tear_journal(cache_dir) -> None:
    """A journal with one duplicate entry and a torn trailing line."""
    journal = CheckpointJournal(cache_dir / JOURNAL_NAME)
    journal.mark_done("sweep:Ds5", attempt=1)
    journal.mark_done("sweep:Ds5", attempt=2)  # supersedes -> duplicate line
    journal.mark_done("sweep:Ds7")
    with (cache_dir / JOURNAL_NAME).open("a", encoding="utf-8") as handle:
        handle.write('{"unit": "sweep:Ds1", "truncat')  # kill mid-append


def _broken_cache(tmp_path):
    """A cache directory exhibiting every category the doctor audits."""
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    _tear_journal(cache_dir)
    write_envelope(cache_dir / "good.json", {"fine": True})
    (cache_dir / "corrupt.json").write_text('{"payload": ', encoding="utf-8")
    (cache_dir / ("old.json" + QUARANTINE_SUFFIX)).write_text("evidence")
    (cache_dir / f"stale.json.tmp{DEAD_PID}").write_text("partial")
    return cache_dir


def _future(cache_dir, days: float = 30.0) -> float:
    """A ``now`` far enough past every file's mtime to expire retention."""
    mtime = (cache_dir / ("old.json" + QUARANTINE_SUFFIX)).stat().st_mtime
    return mtime + days * 86400.0


class TestCheckMode:
    def test_check_finds_everything_and_touches_nothing(self, tmp_path):
        cache_dir = _broken_cache(tmp_path)
        before = sorted(path.name for path in cache_dir.iterdir())
        journal_bytes = (cache_dir / JOURNAL_NAME).read_bytes()

        report = run_doctor(cache_dir, check=True, now=_future(cache_dir))
        assert not report.clean
        assert {finding.category for finding in report.findings} == {
            "journal", "cache", "quarantine", "tmp",
        }
        assert all(
            finding.action.startswith("would ") for finding in report.findings
        )
        # Nothing moved, nothing rewritten.
        assert sorted(path.name for path in cache_dir.iterdir()) == before
        assert (cache_dir / JOURNAL_NAME).read_bytes() == journal_bytes

    def test_clean_directory_reports_clean(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        write_envelope(cache_dir / "good.json", {"fine": True})
        report = run_doctor(cache_dir, check=True)
        assert report.clean
        assert report.files_scanned == 1

    def test_missing_directory_is_clean(self, tmp_path):
        report = run_doctor(tmp_path / "nowhere", check=True)
        assert report.clean
        assert report.files_scanned == 0


class TestRepair:
    def test_repair_then_recheck_is_clean(self, tmp_path):
        cache_dir = _broken_cache(tmp_path)
        now = _future(cache_dir)

        repaired = run_doctor(cache_dir, now=now)
        assert len(repaired.findings) == 4
        # Torn line shed, duplicate compacted; both healed units survive.
        journal = CheckpointJournal(cache_dir / JOURNAL_NAME)
        assert journal.completed == {"sweep:Ds5", "sweep:Ds7"}
        assert journal.torn_lines == 0 and journal.duplicate_lines == 0
        # The corrupt envelope moved to quarantine; the stale artifacts died.
        assert not (cache_dir / "corrupt.json").exists()
        assert (cache_dir / ("corrupt.json" + QUARANTINE_SUFFIX)).exists()
        assert not (cache_dir / ("old.json" + QUARANTINE_SUFFIX)).exists()
        assert not (cache_dir / f"stale.json.tmp{DEAD_PID}").exists()
        # The healthy envelope was left alone.
        assert (cache_dir / "good.json").exists()

        # Idempotency (the issue's acceptance criterion): a second pass
        # finds a fully healed directory. Real wall-clock here, so the
        # quarantine pass one just created is inside its retention window
        # and kept as evidence.
        second = run_doctor(cache_dir)
        assert second.clean, second.findings

    def test_fresh_quarantine_survives_retention(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        target = cache_dir / ("entry.json" + QUARANTINE_SUFFIX)
        target.write_text("evidence")
        report = run_doctor(
            cache_dir, now=target.stat().st_mtime + 86400.0
        )  # 1 day old, 7 day retention
        assert report.clean
        assert target.exists()

    def test_live_writer_tmp_file_is_kept(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        live = cache_dir / f"busy.json.tmp{os.getpid()}"
        live.write_text("mid-write")
        report = run_doctor(cache_dir)
        assert report.clean
        assert live.exists()

    def test_retention_days_zero_sweeps_everything(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        target = cache_dir / ("entry.json" + QUARANTINE_SUFFIX)
        target.write_text("evidence")
        report = run_doctor(cache_dir, retention_days=0.0)
        assert not report.clean
        assert not target.exists()


class TestServeState:
    """Auditing ``repro serve --state`` directories (PR-9 satellite)."""

    @staticmethod
    def _serve_state(tmp_path, *, snapshot=True, journal_entries=0):
        state = tmp_path / "state"
        state.mkdir()
        if snapshot:
            write_envelope(state / SERVE_SNAPSHOT_NAME, {"session": True})
        journal = CheckpointJournal(state / SERVE_JOURNAL_NAME)
        journal.path.touch(exist_ok=True)
        for index in range(journal_entries):
            journal.mark_done(f"add-{index}", records=index + 1)
        return state

    def test_healthy_pair_is_clean(self, tmp_path):
        state = self._serve_state(tmp_path, journal_entries=2)
        assert run_doctor(state, check=True).clean

    def test_journal_without_snapshot_is_deleted(self, tmp_path):
        # A journal entry means "covered by a snapshot"; with the
        # snapshot gone, replayed adds would be journal-skipped and the
        # records silently lost — the journal must go so adds replay.
        state = self._serve_state(tmp_path, snapshot=False, journal_entries=2)
        checked = run_doctor(state, check=True)
        assert {f.category for f in checked.findings} == {"serve"}
        assert "would delete" in checked.findings[0].action
        assert (state / SERVE_JOURNAL_NAME).exists()

        repaired = run_doctor(state)
        assert not repaired.clean
        assert not (state / SERVE_JOURNAL_NAME).exists()
        assert run_doctor(state, check=True).clean  # idempotent

    def test_empty_journal_without_snapshot_is_fine(self, tmp_path):
        # A fresh daemon that never snapshotted: journal touched at
        # init, zero entries — a legitimate layout, not torn state.
        state = self._serve_state(tmp_path, snapshot=False)
        assert run_doctor(state, check=True).clean

    def test_snapshot_without_journal_gets_one(self, tmp_path):
        state = self._serve_state(tmp_path)
        (state / SERVE_JOURNAL_NAME).unlink()
        checked = run_doctor(state, check=True)
        assert {f.category for f in checked.findings} == {"serve"}
        assert not (state / SERVE_JOURNAL_NAME).exists()

        repaired = run_doctor(state)
        assert not repaired.clean
        assert (state / SERVE_JOURNAL_NAME).exists()
        assert run_doctor(state, check=True).clean  # idempotent

    def test_torn_serve_journal_compacts(self, tmp_path):
        state = self._serve_state(tmp_path, journal_entries=2)
        with (state / SERVE_JOURNAL_NAME).open(
            "a", encoding="utf-8"
        ) as handle:
            handle.write('{"unit": "add-9", "torn')  # kill mid-append
        repaired = run_doctor(state)
        assert {f.category for f in repaired.findings} == {"journal"}
        journal = CheckpointJournal(state / SERVE_JOURNAL_NAME)
        assert journal.completed == {"add-0", "add-1"}
        assert journal.torn_lines == 0
        assert run_doctor(state, check=True).clean

    def test_corrupt_snapshot_quarantined_and_journal_follows(self, tmp_path):
        # A corrupt snapshot quarantines like any envelope; the next
        # pass then sees a journal whose snapshot is gone and clears it.
        state = self._serve_state(tmp_path, journal_entries=1)
        (state / SERVE_SNAPSHOT_NAME).write_text("garbage", encoding="utf-8")
        first = run_doctor(state)
        assert "cache" in {f.category for f in first.findings}
        assert not (state / SERVE_SNAPSHOT_NAME).exists()
        second = run_doctor(state)
        assert {f.category for f in second.findings} == {"serve"}
        assert not (state / SERVE_JOURNAL_NAME).exists()
        assert run_doctor(state, check=True).clean


class TestScaleState:
    """Auditing ``repro scale-up`` state directories (PR-10 tentpole)."""

    FINGERPRINT = "aaaa1111bbbb2222"

    @classmethod
    def _scale_state(
        cls, tmp_path, *, manifest=True, shards=0, fingerprint=None
    ):
        fingerprint = fingerprint or cls.FINGERPRINT
        state = tmp_path / "state"
        state.mkdir(exist_ok=True)
        if manifest:
            write_envelope(
                state / SCALE_MANIFEST_NAME,
                {"fingerprint": cls.FINGERPRINT, "n_shards": max(shards, 1)},
            )
        journal = CheckpointJournal(state / SCALE_JOURNAL_NAME)
        journal.path.touch(exist_ok=True)
        for index in range(shards):
            journal.mark_done(
                f"scale:shard:{index:05d}", config=fingerprint, tp=index
            )
        return state

    def test_healthy_pair_is_clean(self, tmp_path):
        state = self._scale_state(tmp_path, shards=3)
        assert run_doctor(state, check=True).clean

    def test_journal_without_manifest_is_deleted(self, tmp_path):
        # Per-shard counts are meaningless without the config that
        # produced them; shards are deterministic and recompute.
        state = self._scale_state(tmp_path, manifest=False, shards=2)
        checked = run_doctor(state, check=True)
        assert {f.category for f in checked.findings} == {"scale"}
        assert "would delete" in checked.findings[0].action
        assert (state / SCALE_JOURNAL_NAME).exists()

        repaired = run_doctor(state)
        assert not repaired.clean
        assert not (state / SCALE_JOURNAL_NAME).exists()
        assert run_doctor(state, check=True).clean  # idempotent

    def test_empty_journal_without_manifest_is_fine(self, tmp_path):
        state = self._scale_state(tmp_path, manifest=False)
        assert run_doctor(state, check=True).clean

    def test_fingerprint_mismatch_deletes_journal(self, tmp_path):
        state = self._scale_state(tmp_path, shards=2, fingerprint="stale")
        checked = run_doctor(state, check=True)
        assert {f.category for f in checked.findings} == {"scale"}
        assert "different config" in checked.findings[0].problem

        repaired = run_doctor(state)
        # The stale journal is deleted; the manifest audit later in the
        # same walk re-materializes an empty one (the healthy pairing).
        assert not CheckpointJournal(state / SCALE_JOURNAL_NAME).completed
        assert run_doctor(state, check=True).clean

    def test_manifest_without_journal_gets_one(self, tmp_path):
        state = self._scale_state(tmp_path)
        (state / SCALE_JOURNAL_NAME).unlink()
        checked = run_doctor(state, check=True)
        assert {f.category for f in checked.findings} == {"scale"}
        assert not (state / SCALE_JOURNAL_NAME).exists()

        repaired = run_doctor(state)
        assert (state / SCALE_JOURNAL_NAME).exists()
        assert run_doctor(state, check=True).clean

    def test_torn_scale_journal_compacts(self, tmp_path):
        state = self._scale_state(tmp_path, shards=2)
        with (state / SCALE_JOURNAL_NAME).open(
            "a", encoding="utf-8"
        ) as handle:
            handle.write('{"unit": "scale:shard:0000')  # kill mid-append
        repaired = run_doctor(state)
        assert {f.category for f in repaired.findings} == {"journal"}
        journal = CheckpointJournal(state / SCALE_JOURNAL_NAME)
        assert journal.completed == {"scale:shard:00000", "scale:shard:00001"}
        assert journal.torn_lines == 0
        assert run_doctor(state, check=True).clean

    def test_corrupt_manifest_quarantined_then_journal_follows(self, tmp_path):
        state = self._scale_state(tmp_path, shards=1)
        (state / SCALE_MANIFEST_NAME).write_text("garbage", encoding="utf-8")
        first = run_doctor(state)
        categories = {f.category for f in first.findings}
        # The unreadable manifest already orphans the journal this pass.
        assert "scale" in categories or "cache" in categories
        assert not (state / SCALE_MANIFEST_NAME).exists()
        run_doctor(state)
        assert not (state / SCALE_JOURNAL_NAME).exists() or not CheckpointJournal(
            state / SCALE_JOURNAL_NAME
        ).completed
        assert run_doctor(state, check=True).clean


class TestReportSurface:
    def test_to_table_and_json(self, tmp_path):
        cache_dir = _broken_cache(tmp_path)
        report = run_doctor(cache_dir, check=True, now=_future(cache_dir))
        headers, rows = report.to_table()
        assert headers == ["category", "path", "problem", "action"]
        assert len(rows) == len(report.findings)
        parsed = json.loads(report_to_json(report))
        assert parsed["clean"] is False
        assert parsed["check_only"] is True
        assert len(parsed["findings"]) == len(report.findings)

    def test_summary_counts(self, tmp_path):
        report = DoctorReport(
            cache_dir=str(tmp_path),
            check_only=True,
            findings=(),
            files_scanned=3,
            journal_units=2,
        )
        assert "clean" in report.summary()
        assert "3 file(s)" in report.summary()


class TestDoctorCli:
    def test_check_exit_codes_track_findings(self, tmp_path, capsys):
        cache_dir = _broken_cache(tmp_path)
        # Audit: dirty -> exit 1. (Retention stays default, so the aged
        # quarantine is invisible here; the other categories suffice.)
        assert main(["doctor", "--cache", str(cache_dir), "--check"]) == 1
        out = capsys.readouterr().out
        assert "doctor (check)" in out
        assert "would" in out
        # Repair -> exit 0, then a re-audit is clean -> exit 0.
        assert main(["doctor", "--cache", str(cache_dir)]) == 0
        assert main(["doctor", "--cache", str(cache_dir), "--check"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_doctor_requires_cache_dir(self, capsys):
        assert main(["doctor", "--cache", ""]) == 2
        assert "requires a cache directory" in capsys.readouterr().out

    def test_retention_days_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / ("entry.json" + QUARANTINE_SUFFIX)).write_text("x")
        assert main(
            ["doctor", "--cache", str(cache_dir), "--retention-days", "1e-9"]
        ) == 0  # repair mode always exits 0
        assert not (cache_dir / ("entry.json" + QUARANTINE_SUFFIX)).exists()
