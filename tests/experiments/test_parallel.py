"""Integration tests for parallel sweeps (--workers N).

The acceptance scenario of the parallel scheduler: fanning the
per-matcher units of one sweep — or the per-dataset sweeps of a full
regeneration — across worker processes must yield results identical to
the sequential run, marshal degraded results and failure records back to
the parent, skip journal-complete units on resume, and keep shared cache
directories valid under concurrent writers.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.runtime import faults

SCALE = 0.3
DATASET = "Ds5"
DATASETS = ("Ds5", "Ds7")
FAILING_MATCHER = "DITTO (15)"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def make_runner(cache_dir, workers: int = 1) -> ExperimentRunner:
    return ExperimentRunner(
        size_factor=SCALE, seed=0, cache_dir=cache_dir, workers=workers
    )


def scores(results) -> dict[str, tuple[float, float, float, bool]]:
    """The deterministic slice of a sweep (timings vary run to run)."""
    return {
        name: (r.precision, r.recall, r.f1, r.degraded)
        for name, r in results.items()
    }


class TestParallelEqualsSequential:
    def test_single_sweep_fanned_over_matchers(self):
        sequential = make_runner(None).matcher_results(DATASET)
        parallel_runner = make_runner(None, workers=2)
        parallel = parallel_runner.matcher_results(DATASET)
        assert scores(parallel) == scores(sequential)
        assert list(parallel) == list(sequential)  # deterministic order
        assert parallel_runner.failure_records() == []
        assert parallel_runner.worker_reports() != []

    def test_sweep_all_fanned_over_datasets(self, tmp_path):
        sequential = {
            d: scores(make_runner(None).matcher_results(d)) for d in DATASETS
        }
        runner = make_runner(tmp_path, workers=2)
        parallel = runner.sweep_all(DATASETS)
        assert {d: scores(r) for d, r in parallel.items()} == sequential
        assert runner.failure_records() == []
        # Parent journals every unit and writes the envelopes.
        for dataset_id in DATASETS:
            assert runner.journal.is_done(f"sweep:{dataset_id}")
            assert list(tmp_path.glob(f"suite_{dataset_id}_*.json"))

    def test_sweep_all_with_one_worker_is_the_sequential_loop(self):
        runner = make_runner(None)
        results = runner.sweep_all((DATASET,))
        assert scores(results[DATASET]) == scores(
            runner.matcher_results(DATASET)
        )
        assert runner.worker_reports() == []


class TestParallelDegradation:
    def test_degraded_matcher_marshalled_from_worker(self):
        # Faults armed before the pool forks are inherited by workers.
        runner = make_runner(None, workers=2)
        with faults.injected(f"matcher:{FAILING_MATCHER}", times=None):
            results = runner.matcher_results(DATASET)
        assert results[FAILING_MATCHER].degraded
        healthy = [r for r in results.values() if not r.degraded]
        assert len(healthy) == len(results) - 1
        failures = runner.failure_records()
        assert [f.unit_id for f in failures] == [f"{DATASET}/{FAILING_MATCHER}"]
        assert failures[0].phase == "matcher"

    def test_failed_sweep_degrades_one_dataset_not_the_batch(self, tmp_path):
        runner = make_runner(tmp_path, workers=2)
        with faults.injected(f"sweep:{DATASET}", times=None):
            results = runner.sweep_all(DATASETS)
        assert results[DATASET] == {}
        assert len(results["Ds7"]) > 20
        failures = runner.failure_records()
        assert [f.unit_id for f in failures] == [f"sweep:{DATASET}"]
        assert not runner.journal.is_done(f"sweep:{DATASET}")
        assert runner.journal.is_done("sweep:Ds7")


class TestJournalResume:
    def test_journal_complete_units_are_not_dispatched(self, tmp_path):
        first = make_runner(tmp_path, workers=2)
        baseline = {d: scores(r) for d, r in first.sweep_all(DATASETS).items()}

        # "Restart": a fresh parallel runner over the same cache dir. If
        # any completed unit were dispatched again, the armed sweep fault
        # would blow it up and the dataset would come back empty.
        resumed = make_runner(tmp_path, workers=2)
        with faults.injected("sweep:Ds5", times=None), faults.injected(
            "sweep:Ds7", times=None
        ):
            results = resumed.sweep_all(DATASETS)
        assert {d: scores(r) for d, r in results.items()} == baseline
        assert resumed.failure_records() == []

    def test_journal_cache_divergence_is_surfaced(self, tmp_path):
        first = make_runner(tmp_path)
        first.matcher_results(DATASET)
        # Simulate losing the envelope while the journal survives.
        for cache_file in tmp_path.glob(f"suite_{DATASET}_*.json"):
            cache_file.unlink()

        resumed = make_runner(tmp_path)
        results = resumed.matcher_results(DATASET)
        assert len(results) > 20  # recomputed, not crashed
        divergences = [
            f for f in resumed.failure_records() if f.phase == "journal"
        ]
        assert [f.unit_id for f in divergences] == [f"sweep:{DATASET}"]
        assert divergences[0].exception_type == "JournalDivergence"


def _sweep_into_queue(cache_dir: str, queue) -> None:
    runner = ExperimentRunner(size_factor=SCALE, seed=0, cache_dir=cache_dir)
    queue.put(scores(runner.matcher_results(DATASET)))


class TestConcurrentCacheSharing:
    def test_two_processes_sharing_one_cache_dir(self, tmp_path):
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        procs = [
            context.Process(target=_sweep_into_queue, args=(str(tmp_path), queue))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        first, second = queue.get(timeout=120), queue.get(timeout=120)
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        # Both writers saw identical results and left a valid cache:
        # no quarantined envelopes, and a fresh runner gets a clean hit.
        assert first == second
        assert not list(tmp_path.glob("*.quarantined"))
        reader = make_runner(tmp_path)
        assert scores(reader.matcher_results(DATASET)) == first
        assert reader.failure_records() == []
