"""Tests for the table/figure builders on a reduced-scale runner.

The full experiment suite is exercised by ``benchmarks/``; these tests
check the builders' mechanics (shapes, labels, derived values) on two
cheap datasets through a half-scale runner with a stubbed sweep.
"""

from __future__ import annotations

import pytest

from repro.core.practical import PracticalMeasures
from repro.experiments.figures import _linearity_series, _practical_series
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import _established_provenance


@pytest.fixture(scope="module")
def half_runner(tmp_path_factory) -> ExperimentRunner:
    return ExperimentRunner(
        size_factor=0.5, seed=0, cache_dir=tmp_path_factory.mktemp("cache")
    )


class TestLinearitySeries:
    def test_series_structure(self, half_runner):
        figure = _linearity_series(half_runner, ("Ds5", "Ds7"))
        assert set(figure) == {"Ds5", "Ds7"}
        for series in figure.values():
            assert set(series) == {
                "f1_cosine",
                "threshold_cosine",
                "f1_jaccard",
                "threshold_jaccard",
            }
            assert 0.0 <= series["f1_cosine"] <= 1.0

    def test_ds7_half_scale_still_trivial(self, half_runner):
        figure = _linearity_series(half_runner, ("Ds7",))
        assert figure["Ds7"]["f1_cosine"] > 0.95


class TestPracticalSeries:
    def test_series_from_sweep(self, half_runner):
        figure = _practical_series(half_runner, ("Ds5",))
        series = figure["Ds5"]
        assert set(series) == {
            "nlb",
            "lbm",
            "best_linear_f1",
            "best_non_linear_f1",
        }
        assert series["nlb"] == pytest.approx(
            series["best_non_linear_f1"] - series["best_linear_f1"]
        )
        assert series["lbm"] == pytest.approx(
            1.0 - max(series["best_linear_f1"], series["best_non_linear_f1"])
        )


class TestProvenance:
    def test_established_provenance(self, half_runner):
        pair_completeness, pairs_quality, imbalance = _established_provenance(
            half_runner, "Ds5"
        )
        assert 0.0 < pair_completeness <= 1.0
        assert pairs_quality == imbalance  # PQ == IR for labeled candidates
        task = half_runner.established_task("Ds5")
        assert imbalance == pytest.approx(task.all_pairs().imbalance_ratio)


class TestAssessmentIntegration:
    def test_assessment_with_practical(self, half_runner):
        assessment = half_runner.assessment("Ds5", with_practical=True)
        assert assessment.has_practical
        assert isinstance(assessment.practical, PracticalMeasures)
        summary = assessment.summary()
        assert {"nlb", "lbm", "challenging"} <= set(summary)

    def test_assessment_cached(self, half_runner):
        first = half_runner.assessment("Ds5", with_practical=False)
        second = half_runner.assessment("Ds5", with_practical=False)
        assert first is second

    def test_linearity_shortcut(self, half_runner):
        linearity = half_runner.linearity("Ds5")
        assert set(linearity) == {"cosine", "jaccard"}
