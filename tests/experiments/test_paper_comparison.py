"""Tests for the paper-reference data and comparison machinery."""

from __future__ import annotations

import pytest

from repro.experiments.matcher_suite import family_of
from repro.experiments.paper_comparison import (
    DatasetComparison,
    render_comparison_markdown,
)
from repro.experiments.paper_reference import (
    ESTABLISHED_ORDER,
    NEW_ORDER,
    PAPER_CHALLENGING_ESTABLISHED,
    PAPER_CHALLENGING_NEW,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
    paper_best_f1,
)


class TestReferenceData:
    def test_table4_row_lengths(self):
        for name, row in PAPER_TABLE4.items():
            assert len(row) == len(ESTABLISHED_ORDER), name

    def test_table6_row_lengths(self):
        for name, row in PAPER_TABLE6.items():
            assert len(row) == len(NEW_ORDER), name

    def test_table5_covers_all_new(self):
        assert set(PAPER_TABLE5) == set(NEW_ORDER)

    def test_every_matcher_name_classifies(self):
        for name in PAPER_TABLE4:
            assert family_of(name) in ("dl", "ml", "linear"), name

    def test_f1_values_in_range(self):
        for table in (PAPER_TABLE4, PAPER_TABLE6):
            for row in table.values():
                for value in row:
                    if value is not None:
                        assert 0.0 <= value <= 100.0

    def test_challenging_sets(self):
        assert PAPER_CHALLENGING_ESTABLISHED == {"Ds4", "Ds6", "Dd4", "Dt1"}
        assert PAPER_CHALLENGING_NEW == {"Dn1", "Dn2", "Dn6", "Dn7"}

    def test_known_cells(self):
        # Spot-checks against the paper text.
        column = ESTABLISHED_ORDER.index("Ds7")
        assert PAPER_TABLE4["EMTransformer-R (15)"][column] == 100.00
        column = NEW_ORDER.index("Dn3")
        assert PAPER_TABLE6["Magellan-RF"][column] == 99.66


class TestPaperBestF1:
    def test_overall_best(self):
        best = paper_best_f1(PAPER_TABLE4, ESTABLISHED_ORDER, "Ds7")
        assert best == 100.00

    def test_family_filtered(self):
        best_linear = paper_best_f1(
            PAPER_TABLE4, ESTABLISHED_ORDER, "Ds6",
            lambda name: family_of(name) == "linear",
        )
        assert best_linear == pytest.approx(54.13)  # SAQ-ESDE

    def test_hyphens_skipped(self):
        # On Dt2 several methods have no value; the max must still resolve.
        best = paper_best_f1(PAPER_TABLE4, ESTABLISHED_ORDER, "Dt2")
        assert best == 100.00

    def test_no_values_raises(self):
        table = {"only": (None,)}
        with pytest.raises(KeyError):
            paper_best_f1(table, ("D",), "D")


def _comparison(paper_nlb_big: bool, measured_nlb_big: bool) -> DatasetComparison:
    return DatasetComparison(
        dataset="X",
        paper_best_dl=90.0 if paper_nlb_big else 80.0,
        paper_best_ml=70.0,
        paper_best_linear=79.0,
        measured_best_dl=92.0 if measured_nlb_big else 80.0,
        measured_best_ml=70.0,
        measured_best_linear=79.0,
        paper_challenging=True,
        measured_challenging=True,
    )


class TestDatasetComparison:
    def test_nlb_derivation(self):
        comparison = _comparison(True, True)
        assert comparison.paper_nlb == pytest.approx(11.0)
        assert comparison.measured_nlb == pytest.approx(13.0)

    def test_nlb_sign_agreement(self):
        assert _comparison(True, True).nlb_sign_agrees
        assert not _comparison(True, False).nlb_sign_agrees
        assert _comparison(False, False).nlb_sign_agrees

    def test_verdict_agreement(self):
        comparison = _comparison(True, True)
        assert comparison.verdict_agrees


class TestMarkdownRendering:
    def test_renders_tables_and_agreement(self):
        established = [_comparison(True, True), _comparison(False, False)]
        new = [_comparison(True, True)]
        markdown = render_comparison_markdown(established, new)
        assert "Established benchmarks" in markdown
        assert "New benchmarks" in markdown
        assert "Verdict agreement: **2/2**" in markdown
        assert "Verdict agreement: **1/1**" in markdown
        assert markdown.count("| X ") == 3
