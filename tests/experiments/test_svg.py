"""Tests for the SVG bar-chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.svg import PALETTE, SvgBarChart, save_figure_svg


@pytest.fixture()
def figure():
    return {
        "Ds1": {"f1_cosine": 0.91, "f1_jaccard": 0.92},
        "Ds4": {"f1_cosine": 0.43, "f1_jaccard": 0.44},
    }


class TestSvgBarChart:
    def test_renders_valid_svg_envelope(self, figure):
        svg = SvgBarChart(figure, title="Figure 1").render()
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_bar_per_group_series(self, figure):
        svg = SvgBarChart(figure).render()
        # 4 data bars + background rect + 2 legend swatches.
        assert svg.count("<rect ") == 4 + 1 + 2

    def test_group_labels_present(self, figure):
        svg = SvgBarChart(figure, title="T").render()
        assert ">Ds1<" in svg and ">Ds4<" in svg

    def test_title_escaped(self, figure):
        svg = SvgBarChart(figure, title="a < b & c").render()
        assert "a &lt; b &amp; c" in svg

    def test_tooltips_carry_values(self, figure):
        svg = SvgBarChart(figure).render()
        assert "Ds1 f1_cosine: 0.910" in svg

    def test_values_clamped_to_max(self):
        chart = SvgBarChart({"D": {"x": 5.0}}, value_max=1.0)
        svg = chart.render()
        assert "<svg" in svg  # renders without error; bar clamped

    def test_empty_figure_raises(self):
        with pytest.raises(ValueError):
            SvgBarChart({})

    def test_missing_series_raises(self):
        with pytest.raises(ValueError):
            SvgBarChart({"A": {"x": 1.0}, "B": {"y": 1.0}})

    def test_invalid_value_max(self, figure):
        with pytest.raises(ValueError):
            SvgBarChart(figure, value_max=0.0)

    def test_series_subset_selection(self, figure):
        svg = SvgBarChart(figure, series=("f1_cosine",)).render()
        assert "f1_jaccard" not in svg
        assert svg.count("<rect ") == 2 + 1 + 1

    def test_deterministic(self, figure):
        first = SvgBarChart(figure, title="T").render()
        second = SvgBarChart(figure, title="T").render()
        assert first == second

    def test_palette_cycles(self):
        many = {"G": {f"s{i}": 0.5 for i in range(len(PALETTE) + 2)}}
        svg = SvgBarChart(many).render()
        assert PALETTE[0] in svg

    def test_save(self, figure, tmp_path):
        save_figure_svg(figure, tmp_path / "fig1.svg", title="Figure 1")
        content = (tmp_path / "fig1.svg").read_text()
        assert content.startswith("<svg ")
