"""Tests for the experiment snapshot (with stubbed builders)."""

from __future__ import annotations

import json

import pytest

import repro.experiments.snapshot as snapshot_module
from repro.experiments.paper_comparison import DatasetComparison
from repro.experiments.runner import ExperimentRunner


@pytest.fixture()
def stubbed(monkeypatch):
    """Stub out the heavy builders so the snapshot shape can be tested."""

    def fake_table(runner):
        return (["a", "b"], [["1", "2"]])

    def fake_figure(runner):
        return {"D": {"x": 0.5}}

    comparison = DatasetComparison(
        dataset="D",
        paper_best_dl=90.0, paper_best_ml=80.0, paper_best_linear=70.0,
        measured_best_dl=88.0, measured_best_ml=79.0, measured_best_linear=71.0,
        paper_challenging=True, measured_challenging=True,
    )

    for name in ("table3", "table4", "table5", "table6", "table7"):
        monkeypatch.setattr(snapshot_module.tables, name, fake_table)
    for name in ("figure1", "figure2", "figure3", "figure4", "figure5", "figure6"):
        monkeypatch.setattr(snapshot_module.figures, name, fake_figure)
    monkeypatch.setattr(
        snapshot_module, "compare_all", lambda runner: ([comparison], [comparison])
    )

    class FakeAssessment:
        def summary(self):
            return {"task": "D", "challenging": True}

    monkeypatch.setattr(
        ExperimentRunner,
        "assessment",
        lambda self, dataset_id, with_practical=True: FakeAssessment(),
    )
    return ExperimentRunner(size_factor=1.0)


class TestSnapshot:
    def test_shape(self, stubbed):
        snapshot = snapshot_module.take_snapshot(stubbed)
        assert set(snapshot["tables"]) == {
            "table3", "table4", "table5", "table6", "table7"
        }
        assert set(snapshot["figures"]) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"
        }
        assert snapshot["comparisons"]["established"][0]["dataset"] == "D"
        assert len(snapshot["verdicts_established"]) == 13

    def test_json_serializable_and_saved(self, stubbed, tmp_path):
        path = tmp_path / "snapshot.json"
        snapshot = snapshot_module.save_snapshot(stubbed, path)
        loaded = json.loads(path.read_text())
        assert loaded["size_factor"] == snapshot["size_factor"] == 1.0
        assert loaded["tables"]["table3"]["headers"] == ["a", "b"]
