"""Supervision acceptance: hang-proof workers, budgets, and run leases.

The guard layer's end-to-end contracts, driven through the real runner:
a deliberately wedged pool worker is killed and surfaced as a
``WorkerHang`` record while the rest of the sweep completes; two
concurrent runners on one cache directory never interleave (the loser
either waits and reuses the winner's results, or fails cleanly with a
``LeaseHeld`` record); injected memory pressure walks the degradation
ladder without changing a single score.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments.runner import ExperimentRunner, RunnerConfig
from repro.runtime import faults, guard
from repro.runtime.guard import LEASE_NAME, RunLease
from repro.runtime.journal import CheckpointJournal

SCALE = 0.3
DATASET = "Ds5"


@pytest.fixture(autouse=True)
def clean_state():
    faults.reset()
    guard.reset_global_degradations()
    yield
    faults.reset()
    guard.reset_global_degradations()


def make_runner(cache_dir=None, **overrides) -> ExperimentRunner:
    return ExperimentRunner(
        config=RunnerConfig(
            scale=SCALE, seed=0, cache_dir=cache_dir, **overrides
        )
    )


def scores(results) -> dict[str, tuple[float, float, float, bool]]:
    return {
        name: (r.precision, r.recall, r.f1, r.degraded)
        for name, r in results.items()
    }


@pytest.mark.fault_smoke
class TestHangProofWorkers:
    def test_hung_worker_is_replaced_within_the_deadline(self):
        # The wedged child sleeps far longer than the whole test budget;
        # only the watchdog kill can let the sweep finish.
        faults.arm("guard:hang", "hang", times=1, hang_seconds=600.0)
        runner = make_runner(workers=2, hang_deadline_seconds=5.0)
        started = time.monotonic()
        results = runner.matcher_results(DATASET)
        elapsed = time.monotonic() - started
        hangs = [
            record
            for record in runner.failure_records()
            if record.exception_type == "WorkerHang"
        ]
        assert len(hangs) == 1
        assert "terminated by watchdog" in hangs[0].message
        # The shed unit is visibly degraded; every other unit scored.
        assert results[hangs[0].unit_id.split("/", 1)[1]].degraded
        healthy = [name for name, cell in results.items() if not cell.degraded]
        assert len(healthy) == len(results) - 1
        # No wall-clock stall: the 600s sleep never ran its course.
        assert elapsed < 300.0

    def test_healthy_parallel_run_sees_no_watchdog_kills(self):
        runner = make_runner(workers=2, hang_deadline_seconds=600.0)
        results = runner.matcher_results(DATASET)
        assert runner.failure_records() == []
        assert all(not cell.degraded for cell in results.values())


@pytest.mark.fault_smoke
class TestBudgetDegradation:
    def test_injected_oom_degrades_without_changing_scores(self):
        reference = scores(make_runner().matcher_results(DATASET))
        faults.arm("guard:oom", "error", times=2)
        guarded = make_runner(memory_budget_mb=1_000_000.0)
        observed = guarded.matcher_results(DATASET)
        assert scores(observed) == reference
        assert guarded.guard is not None
        assert guarded.guard.degradation_level == 2
        assert guarded.guard.degradations == (
            "shrink-kernel-batch",
            "force-merge-backend",
        )


class TestConcurrentRunners:
    def test_loser_waits_and_reuses_the_winners_results(self, tmp_path):
        winner = make_runner(tmp_path)
        loser = make_runner(tmp_path, lease_timeout_seconds=600.0)
        outcome: dict[str, object] = {}

        def compute_first():
            outcome["winner"] = winner.matcher_results(DATASET)

        thread = threading.Thread(target=compute_first)
        thread.start()
        # Enter the contended window: the winner holds the lease.
        deadline = time.monotonic() + 60.0
        while not (tmp_path / LEASE_NAME).exists():
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("winner never took the lease")
            time.sleep(0.01)
        observed = loser.matcher_results(DATASET)
        thread.join()
        assert scores(observed) == scores(outcome["winner"])
        assert loser.failure_records() == []
        assert winner.failure_records() == []
        # The journal never interleaved: compaction finds nothing to shed.
        journal = CheckpointJournal(tmp_path / "checkpoint.journal")
        assert journal.torn_lines == 0
        assert journal.duplicate_lines == 0
        assert journal.is_done(f"sweep:{DATASET}")

    def test_loser_fails_cleanly_when_not_waiting(self, tmp_path):
        with RunLease(tmp_path):  # a foreign live holder
            loser = make_runner(tmp_path, lease_timeout_seconds=0.0)
            results = loser.matcher_results(DATASET)
        assert results == {}
        (record,) = loser.failure_records()
        assert record.exception_type == "LeaseHeld"
        assert record.phase == "lease"
        assert not (tmp_path / "checkpoint.journal").exists()

    def test_lease_released_after_the_run(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.matcher_results(DATASET)
        assert not (tmp_path / LEASE_NAME).exists()


class TestAdaptiveDeadlines:
    def test_healthy_sequential_run_is_never_deadlined(self):
        runner = make_runner(adaptive_deadlines=True)
        results = runner.matcher_results(DATASET)
        assert runner.failure_records() == []
        assert all(not cell.degraded for cell in results.values())
        assert runner.deadlines is not None
        assert runner.deadlines.samples("matcher") == len(results)
        assert runner.deadlines.samples("sweep") == 1

    def test_matches_unsupervised_scores(self):
        reference = scores(make_runner().matcher_results(DATASET))
        supervised = scores(
            make_runner(adaptive_deadlines=True).matcher_results(DATASET)
        )
        assert supervised == reference
