"""The PR-3 API surface: RunnerConfig, the render() dispatcher, the facade.

Covers the deprecation contract — legacy forms still work, produce the
same objects/bytes, and emit exactly one DeprecationWarning — plus the
shape-dispatch rules of :func:`repro.experiments.report.render`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.report import (
    render,
    render_failures,
    render_figure,
    render_table,
    render_worker_report,
)
from repro.experiments.runner import ExperimentRunner, RunnerConfig
from repro.obs import Observability
from repro.obs.spans import Span
from repro.runtime import ExecutionPolicy, FailureRecord, WorkerReport


class TestRunnerConfig:
    def test_canonical_config_form(self):
        config = RunnerConfig(scale=0.5, seed=7, workers=2)
        runner = ExperimentRunner(config=config)
        assert runner.config is config
        assert runner.scale == 0.5
        assert runner.size_factor == 0.5  # legacy attribute kept
        assert runner.seed == 7
        assert runner.workers == 2

    def test_positional_config_form(self):
        runner = ExperimentRunner(RunnerConfig(scale=0.25))
        assert runner.scale == 0.25

    def test_config_is_frozen_and_keyword_only(self):
        config = RunnerConfig(scale=0.5)
        with pytest.raises(AttributeError):
            config.scale = 1.0
        with pytest.raises(TypeError):
            RunnerConfig(0.5)

    def test_config_validates_like_the_legacy_runner(self):
        with pytest.raises(ValueError, match="size_factor must be > 0"):
            RunnerConfig(scale=0)
        with pytest.raises(TypeError, match="size_factor must be a number"):
            RunnerConfig(scale="big")
        with pytest.raises(TypeError, match="seed must be an integer"):
            RunnerConfig(seed=1.5)

    def test_keyword_legacy_args_map_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = ExperimentRunner(size_factor=0.5, seed=3)
        assert runner.scale == 0.5
        assert runner.seed == 3

    def test_positional_legacy_args_warn_once_and_map(self):
        policy = ExecutionPolicy(max_attempts=2, backoff_base=0.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runner = ExperimentRunner(0.5, 3, None, policy)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "RunnerConfig" in str(deprecations[0].message)
        assert runner.scale == 0.5
        assert runner.seed == 3
        assert runner.policy is policy

    def test_conflicting_forms_are_rejected(self):
        with pytest.raises(TypeError):
            ExperimentRunner(RunnerConfig(), seed=1)
        with pytest.raises(TypeError):
            ExperimentRunner(0.5, config=RunnerConfig())
        with pytest.raises(TypeError):
            ExperimentRunner(scale=1.0, size_factor=1.0)
        with pytest.raises(TypeError):
            ExperimentRunner(bogus_argument=1)

    def test_injected_observability_wins_over_the_active_one(self):
        handle = Observability()
        runner = ExperimentRunner(config=RunnerConfig(obs=handle))
        assert runner.obs is handle

    def test_trace_file_attached_when_cache_dir_set(self, tmp_path):
        handle = Observability()
        ExperimentRunner(
            config=RunnerConfig(cache_dir=tmp_path, obs=handle)
        )
        assert handle.trace.trace_path == tmp_path / "trace.jsonl"
        assert handle.trace.run_id


FAILURE = FailureRecord(
    unit_id="sweep:Ds4",
    phase="sweep",
    attempts=2,
    exception_type="ValueError",
    message="boom",
    elapsed_seconds=1.5,
)


class TestRenderDispatcher:
    def test_table_tuple(self):
        text = render((["a", "bb"], [["1", "2"]]), title="T")
        assert text.splitlines()[0] == "T"
        assert "bb" in text

    def test_figure_mapping(self):
        text = render({"Ds1": {"NLB": 0.25}}, title="F")
        assert "Ds1" in text and "0.250" in text

    def test_metrics_snapshot(self):
        handle = Observability()
        handle.inc("cache.hit", 3)
        handle.observe("fit", 0.5)
        text = render(handle.snapshot())
        assert text.splitlines()[0] == "Metrics"
        assert "cache.hit" in text and "counter" in text
        assert "n=1" in text  # timer summary cell

    def test_failures_sequence(self):
        text = render([FAILURE])
        assert "Degraded units" in text
        assert "sweep:Ds4" in text

    def test_worker_reports_sequence(self):
        text = render([WorkerReport(worker_pid=1, units=2, busy_seconds=0.5)])
        assert "Per-worker timing" in text

    def test_span_sequence_renders_a_tree(self):
        parent = Span(
            span_id="p", parent_id=None, name="sweep",
            attributes={"dataset": "Ds4"}, start_time=0.0, wall_seconds=1.0,
        )
        child = Span(
            span_id="c", parent_id="p", name="matcher",
            attributes={"matcher": "DITTO (15)"}, start_time=1.0,
            wall_seconds=0.5, status="degraded",
        )
        text = render([child, parent])
        lines = text.splitlines()
        assert lines[0] == "Trace"
        assert lines[1].startswith("sweep dataset=Ds4 [ok]")
        assert lines[2].startswith("  matcher matcher=DITTO (15) [degraded]")

    def test_empty_sequence_renders_empty(self):
        assert render([]) == ""

    def test_unknown_artifact_raises(self):
        with pytest.raises(TypeError, match="cannot dispatch"):
            render(42)


class TestDeprecatedAliases:
    @pytest.mark.parametrize(
        "alias, args",
        [
            (render_table, (["a"], [["1"]])),
            (render_figure, ({"Ds1": {"NLB": 0.1}},)),
            (render_failures, ([FAILURE],)),
            (render_worker_report,
             ([WorkerReport(worker_pid=1, units=1, busy_seconds=0.1)],)),
        ],
    )
    def test_alias_warns_once_and_matches_render(self, alias, args):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = alias(*args)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "render()" in str(deprecations[0].message)
        assert legacy == render(args[0] if len(args) == 1 else args)


class TestPackageFacade:
    def test_star_import_surface(self):
        import repro

        for name in (
            "ExperimentRunner", "RunnerConfig", "default_runner", "render",
            "ExecutionPolicy", "Observability", "obs",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_default_runner_importable_from_the_package(self):
        from repro import default_runner

        assert default_runner() is default_runner()  # memoized
