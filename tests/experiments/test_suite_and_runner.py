"""Tests for the matcher suite, runner caching and report rendering."""

from __future__ import annotations

import pytest

from repro.experiments.matcher_suite import (
    build_suite,
    clear_recorded_failures,
    degraded_result,
    evaluate_suite,
    family_of,
    linear_f1_scores,
    non_linear_f1_scores,
    practical_from_results,
    recorded_failures,
)
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import ExperimentRunner
from repro.matchers.base import MatcherResult
from repro.runtime import faults


class TestFamilyOf:
    def test_linear(self):
        assert family_of("SA-ESDE") == "linear"
        assert family_of("SBS-ESDE") == "linear"

    def test_ml(self):
        assert family_of("Magellan-RF") == "ml"
        assert family_of("ZeroER") == "ml"

    def test_dl(self):
        assert family_of("DeepMatcher (15)") == "dl"
        assert family_of("EMTransformer-R (40)") == "dl"
        assert family_of("GNEM (10)") == "dl"


class TestBuildSuite:
    def test_roster_composition(self, handmade_task):
        suite = build_suite(handmade_task)
        names = [matcher.name for matcher in suite]
        assert len(names) == len(set(names))
        families = [family_of(name) for name in names]
        assert families.count("dl") == 12   # 5 methods x 2 epochs (+EMT x2 variants)
        assert families.count("ml") == 5    # Magellan x4 + ZeroER
        assert families.count("linear") == 6

    def test_magellan_heads_share_extractor(self, handmade_task):
        suite = build_suite(handmade_task)
        extractors = {
            id(matcher._extractor)
            for matcher in suite
            if matcher.name.startswith(("Magellan", "ZeroER"))
        }
        assert len(extractors) == 1


class TestEvaluateSuite:
    @pytest.fixture()
    def results(self, handmade_task):
        return evaluate_suite(handmade_task)

    def test_all_matchers_present(self, results, handmade_task):
        assert len(results) == len(build_suite(handmade_task))

    def test_scores_split(self, results):
        linear = linear_f1_scores(results)
        non_linear = non_linear_f1_scores(results)
        assert len(linear) == 6
        assert len(non_linear) == len(results) - 6
        assert not set(linear) & set(non_linear)

    def test_f1_bounds(self, results):
        for result in results.values():
            assert 0.0 <= result.f1 <= 1.0


def _result(name: str, f1: float) -> MatcherResult:
    return MatcherResult(name, "t", f1, f1, f1, 0.0, 0.0)


class TestDegradedExclusion:
    """Regression: degraded placeholders used to pollute NLB/LBM.

    A matcher that failed gets an F1-0.0 placeholder; counting it as a
    real score dragged best-family F1 down (or anchored LBM at 1.0),
    fabricating verdicts from failures.
    """

    def test_degraded_results_excluded_from_scores(self):
        results = {
            "SA-ESDE": _result("SA-ESDE", 0.7),
            "ZeroER": _result("ZeroER", 0.8),
            "DITTO (15)": degraded_result("DITTO (15)", "t"),
        }
        assert "DITTO (15)" not in non_linear_f1_scores(results)
        assert non_linear_f1_scores(results) == {"ZeroER": 0.8}
        assert linear_f1_scores(results) == {"SA-ESDE": 0.7}

    def test_whole_family_degraded_yields_unmeasured(self):
        results = {
            "SA-ESDE": degraded_result("SA-ESDE", "t"),
            "ZeroER": _result("ZeroER", 0.8),
        }
        practical = practical_from_results(results)
        assert not practical.is_measured

    def test_healthy_results_yield_measured(self):
        results = {
            "SA-ESDE": _result("SA-ESDE", 0.7),
            "ZeroER": _result("ZeroER", 0.8),
        }
        practical = practical_from_results(results)
        assert practical.is_measured
        assert practical.non_linear_boost == pytest.approx(0.1)


class TestFailureRegistryScoping:
    """Regression: the module-global failure registry grew without bound
    and double-recorded when a caller also collected failures."""

    @pytest.fixture(autouse=True)
    def clean(self):
        clear_recorded_failures()
        faults.reset()
        yield
        clear_recorded_failures()
        faults.reset()

    def test_caller_supplied_list_suppresses_global_registry(
        self, handmade_task
    ):
        collected = []
        with faults.injected("matcher:SA-ESDE"):
            results = evaluate_suite(handmade_task, failures=collected)
        assert results["SA-ESDE"].degraded
        assert [f.unit_id for f in collected] == [
            f"{handmade_task.name}/SA-ESDE"
        ]
        # Exactly once, and only in the caller's list.
        assert recorded_failures() == []

    def test_global_registry_still_records_and_clears(self, handmade_task):
        with faults.injected("matcher:SA-ESDE"):
            evaluate_suite(handmade_task)
        assert [f.unit_id for f in recorded_failures()] == [
            f"{handmade_task.name}/SA-ESDE"
        ]
        clear_recorded_failures()
        assert recorded_failures() == []


class TestRunner:
    def test_invalid_size_factor(self):
        with pytest.raises(ValueError):
            ExperimentRunner(size_factor=0)

    def test_unknown_dataset(self):
        runner = ExperimentRunner()
        with pytest.raises(KeyError):
            runner.task_for("nope")

    def test_established_task_resolution(self):
        runner = ExperimentRunner(size_factor=0.5)
        task = runner.task_for("Ds5")
        assert task.name == "Ds5"

    def test_disk_cache_round_trip(self, tmp_path):
        runner = ExperimentRunner(size_factor=0.5, cache_dir=tmp_path)
        first = runner.matcher_results("Ds5")
        # A fresh runner with the same cache dir loads from disk.
        clone = ExperimentRunner(size_factor=0.5, cache_dir=tmp_path)
        second = clone.matcher_results("Ds5")
        assert {n: r.f1 for n, r in first.items()} == {
            n: r.f1 for n, r in second.items()
        }
        assert list(tmp_path.glob("suite_Ds5_*.json"))

    def test_practical_from_results(self, tmp_path):
        runner = ExperimentRunner(size_factor=0.5, cache_dir=tmp_path)
        practical = runner.practical("Ds5")
        assert -1.0 <= practical.non_linear_boost <= 1.0
        assert 0.0 <= practical.learning_based_margin <= 1.0


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_validates(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_figure(self):
        figure = {"D1": {"x": 0.5, "y": 1.0}, "D2": {"x": 0.25, "y": 0.0}}
        text = render_figure(figure, title="F")
        assert "0.500" in text and "0.250" in text

    def test_render_empty_figure(self):
        assert render_figure({}, title="empty") == "empty"


class TestMatcherResult:
    def test_f1_percent(self):
        result = MatcherResult("m", "t", 0.5, 0.5, 0.5, 0.0, 0.0)
        assert result.f1_percent == 50.0
