"""Tests for the seed-stability analysis."""

from __future__ import annotations

import pytest

from repro.experiments.stability import (
    StabilitySummary,
    blocking_stability,
    matcher_stability,
)
from repro.matchers.deep import DeepMatcherNet


class TestStabilitySummary:
    def test_statistics(self):
        summary = StabilitySummary("x", (0.8, 0.9, 1.0))
        assert summary.mean == pytest.approx(0.9)
        assert summary.minimum == 0.8 and summary.maximum == 1.0
        assert summary.std > 0.0

    def test_single_value_zero_std(self):
        summary = StabilitySummary("x", (0.5,))
        assert summary.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StabilitySummary("x", ())

    def test_describe(self):
        text = StabilitySummary("pq", (0.1, 0.2)).describe()
        assert "pq" in text and "2 runs" in text


class TestBlockingStability:
    def test_repetition_protocol(self, small_sources):
        summaries = blocking_stability(
            small_sources, repetitions=3, recall_target=0.85,
            k_ladder=(1, 3, 10),
        )
        assert set(summaries) == {
            "pair_completeness", "pairs_quality", "n_candidates"
        }
        assert len(summaries["pair_completeness"].values) == 3
        # Every repetition met the target.
        assert summaries["pair_completeness"].minimum >= 0.85

    def test_invalid_repetitions(self, small_sources):
        with pytest.raises(ValueError):
            blocking_stability(small_sources, repetitions=0)


class TestMatcherStability:
    def test_f1_across_seeds(self, handmade_task):
        summary = matcher_stability(
            lambda seed: DeepMatcherNet(epochs=10, seed=seed),
            handmade_task,
            repetitions=3,
        )
        assert len(summary.values) == 3
        assert all(0.0 <= value <= 1.0 for value in summary.values)
        # Seeds wiggle the result but not catastrophically on an easy task.
        assert summary.maximum - summary.minimum < 0.5
