"""Tests for the task-scoped embedder provider."""

from __future__ import annotations

from repro.embeddings.provider import (
    clear_model_cache,
    contextual_embedder_for_task,
    language_model_for_task,
    sentence_embedder_for_task,
    static_embedder_for_task,
)


class TestLanguageModelProvider:
    def test_model_cached_per_vocabulary(self, small_task):
        clear_model_cache()
        first = language_model_for_task(small_task)
        second = language_model_for_task(small_task)
        assert first is second

    def test_different_dimensions_distinct(self, small_task):
        clear_model_cache()
        small = language_model_for_task(small_task, dimension=16)
        large = language_model_for_task(small_task, dimension=32)
        assert small is not large
        assert small.dimension == 16 and large.dimension == 32

    def test_fallback_without_vocabulary(self, handmade_task):
        clear_model_cache()
        model = language_model_for_task(handmade_task)
        # No vocabulary: every token is OOV and embeds via subwords.
        assert model.token_concepts("widget") == []
        vector = model.token_vector("widget")
        assert vector.shape == (64,)

    def test_clear_cache(self, small_task):
        first = language_model_for_task(small_task)
        clear_model_cache()
        second = language_model_for_task(small_task)
        assert first is not second


class TestEmbedderFactories:
    def test_static(self, small_task):
        embedder = static_embedder_for_task(small_task)
        record = small_task.left.records()[0]
        assert embedder.embed_record(record).shape == (64,)

    def test_contextual_variants(self, small_task):
        bert = contextual_embedder_for_task(small_task, variant="B")
        roberta = contextual_embedder_for_task(small_task, variant="R")
        assert bert.variant == "B" and roberta.variant == "R"
        # Both share the underlying language model.
        assert bert.model is roberta.model

    def test_sentence_fitted_on_sources(self, small_task):
        embedder = sentence_embedder_for_task(small_task)
        record = small_task.right.records()[0]
        vector = embedder.embed_record(record)
        assert vector.shape == (64,)
