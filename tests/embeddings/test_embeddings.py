"""Tests for the synthetic language model and embedders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.vocabulary import Concept, ConceptVocabulary
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.distances import cosine_vector_similarity
from repro.embeddings.lm import SyntheticLanguageModel
from repro.embeddings.sentence import SentenceEmbedder
from repro.embeddings.static import StaticEmbedder
from tests.conftest import make_record


@pytest.fixture(scope="module")
def vocabulary() -> ConceptVocabulary:
    vocab = ConceptVocabulary("test")
    vocab.add(Concept(0, "p", ("laptop", "notebook", "ultrabook")))
    vocab.add(Concept(1, "p", ("phone", "handset")))
    vocab.add(Concept(2, "p", ("camera",)))
    # 'bank' is a homograph of concepts 3 and 4.
    vocab.add(Concept(3, "q", ("institution", "bank")))
    vocab.add(Concept(4, "q", ("riverside", "bank")))
    vocab.add(Concept(5, "q", ("money",)))
    vocab.add(Concept(6, "q", ("water",)))
    return vocab


@pytest.fixture(scope="module")
def model(vocabulary) -> SyntheticLanguageModel:
    return SyntheticLanguageModel(vocabulary, dimension=32, seed=5)


class TestLanguageModel:
    def test_synonyms_are_close(self, model):
        a = model.token_vector("laptop")
        b = model.token_vector("notebook")
        c = model.token_vector("camera")
        assert cosine_vector_similarity(a, b) > cosine_vector_similarity(a, c)

    def test_typos_land_near_original(self, model):
        original = model.token_vector("camera")
        typoed = model.subword_vector("camerra")
        unrelated = model.subword_vector("zzzzq")
        assert cosine_vector_similarity(original, typoed) > cosine_vector_similarity(
            original, unrelated
        )

    def test_oov_token_is_pure_subword(self, model):
        oov = model.token_vector("xq42z")
        np.testing.assert_allclose(oov, model.subword_vector("xq42z"))

    def test_deterministic(self, vocabulary):
        first = SyntheticLanguageModel(vocabulary, dimension=32, seed=5)
        second = SyntheticLanguageModel(vocabulary, dimension=32, seed=5)
        np.testing.assert_allclose(
            first.token_vector("laptop"), second.token_vector("laptop")
        )

    def test_homograph_sits_between_meanings(self, model):
        bank = model.token_vector("bank")
        institution = model.concept_centroid(3)
        riverside = model.concept_centroid(4)
        sim_to_both = (
            cosine_vector_similarity(bank, institution),
            cosine_vector_similarity(bank, riverside),
        )
        assert min(sim_to_both) > 0.5

    def test_disambiguation_picks_context_meaning(self, model):
        # Context: 'money' (concept 5). The disambiguated 'bank' should be
        # closer to the institution meaning iff that centroid is closer to
        # the money centroid; assert consistency instead of a fixed side.
        disambiguated = model.disambiguated_vector("bank", [5])
        institution = model.concept_centroid(3)
        riverside = model.concept_centroid(4)
        money = model.concept_centroid(5)
        expected = 3 if institution @ money > riverside @ money else 4
        expected_centroid = model.concept_centroid(expected)
        other_centroid = institution if expected == 4 else riverside
        assert cosine_vector_similarity(
            disambiguated, expected_centroid
        ) > cosine_vector_similarity(disambiguated, other_centroid)

    def test_invalid_dimension(self, vocabulary):
        with pytest.raises(ValueError):
            SyntheticLanguageModel(vocabulary, dimension=2)


class TestStaticEmbedder:
    def test_record_embedding_unit_norm(self, model):
        embedder = StaticEmbedder(model)
        record = make_record("r1", "A", name="laptop camera")
        vector = embedder.embed_record(record)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self, model):
        embedder = StaticEmbedder(model)
        assert np.linalg.norm(embedder.embed_text("")) == 0.0

    def test_synonym_records_more_similar_than_unrelated(self, model):
        embedder = StaticEmbedder(model)
        base = embedder.embed_text("laptop")
        synonym = embedder.embed_text("ultrabook")
        unrelated = embedder.embed_text("water")
        assert cosine_vector_similarity(base, synonym) > cosine_vector_similarity(
            base, unrelated
        )


class TestContextualEmbedder:
    def test_variants_differ_but_correlate(self, model):
        bert = ContextualEmbedder(model, variant="B")
        roberta = ContextualEmbedder(model, variant="R")
        text = "laptop camera money"
        vector_b = bert.embed_text(text)
        vector_r = roberta.embed_text(text)
        assert not np.allclose(vector_b, vector_r)
        assert cosine_vector_similarity(vector_b, vector_r) > 0.8

    def test_unknown_variant_raises(self, model):
        with pytest.raises(ValueError):
            ContextualEmbedder(model, variant="X")

    def test_context_changes_homograph_encoding(self, model):
        embedder = ContextualEmbedder(model, variant="B")
        money_context = embedder.embed_text("bank money")
        water_context = embedder.embed_text("bank water")
        # The same homograph embeds differently in different contexts.
        assert cosine_vector_similarity(money_context, water_context) < 0.999

    def test_empty_sequence(self, model):
        embedder = ContextualEmbedder(model, variant="B")
        assert np.linalg.norm(embedder.embed_sequence([])) == 0.0


class TestSentenceEmbedder:
    def test_requires_fit(self, model):
        with pytest.raises(RuntimeError):
            SentenceEmbedder(model).embed_text("laptop")

    def test_fit_on_empty_raises(self, model):
        with pytest.raises(ValueError):
            SentenceEmbedder(model).fit([])

    def test_rare_tokens_dominate(self, model):
        corpus = [
            make_record(f"r{index}", "A", name=f"laptop filler{index}")
            for index in range(10)
        ]
        embedder = SentenceEmbedder(model).fit(corpus)
        # 'camera' is rare in the corpus; a camera-bearing text should be
        # closer to pure 'camera' than to pure 'laptop' (the common token).
        mixed = embedder.embed_text("laptop camera")
        camera = embedder.embed_text("camera")
        laptop_only = embedder.embed_text("laptop")
        assert cosine_vector_similarity(mixed, camera) > cosine_vector_similarity(
            mixed, laptop_only
        )
