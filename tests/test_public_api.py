"""Public-API surface tests: everything README documents is importable."""

from __future__ import annotations

import importlib

import pytest


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.linearity",
            "repro.core.complexity",
            "repro.core.practical",
            "repro.core.assessment",
            "repro.core.methodology",
            "repro.core.continuum",
            "repro.core.leakage",
            "repro.data",
            "repro.datasets",
            "repro.datasets.export",
            "repro.text",
            "repro.embeddings",
            "repro.ml",
            "repro.matchers",
            "repro.matchers.deep",
            "repro.blocking",
            "repro.experiments",
            "repro.experiments.cli",
            "repro.experiments.paper_reference",
            "repro.experiments.paper_comparison",
            "repro.experiments.snapshot",
            "repro.experiments.stability",
            "repro.experiments.learning_curves",
            "repro.experiments.svg",
            "repro.obs",
            "repro.obs.metrics",
            "repro.obs.probe",
            "repro.obs.spans",
            "repro.runtime",
            "repro.runtime.registry",
        ],
    )
    def test_module_imports(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.data",
            "repro.datasets",
            "repro.text",
            "repro.embeddings",
            "repro.ml",
            "repro.matchers",
            "repro.blocking",
            "repro",
            "repro.obs",
        ],
    )
    def test_dunder_all_is_accurate(self, module):
        loaded = importlib.import_module(module)
        assert hasattr(loaded, "__all__")
        for name in loaded.__all__:
            assert hasattr(loaded, name), f"{module}.{name} missing"

    def test_readme_quickstart_names(self):
        from repro.core import assess_benchmark
        from repro.datasets import load_established_task

        assert callable(assess_benchmark)
        assert callable(load_established_task)

    def test_every_public_module_has_docstring(self):
        import pathlib

        for path in pathlib.Path("src/repro").rglob("*.py"):
            source = path.read_text()
            if path.name == "__init__.py" and not source.strip():
                continue
            first_statement = source.lstrip()
            assert first_statement.startswith(('"""', 'r"""')), path
