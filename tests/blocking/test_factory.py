"""Tests for the unified blocker/index factory and the Candidates type."""

from __future__ import annotations

import pytest

from repro.blocking import (
    BLOCKER_SPECS,
    INDEX_SPECS,
    AnnBlocker,
    AnnConfig,
    Candidates,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    make_blocker,
    make_index,
)


class TestMakeBlocker:
    def test_every_spec_constructs(self):
        for spec in BLOCKER_SPECS:
            blocker = make_blocker(spec)
            assert hasattr(blocker, "candidates")

    def test_exhaustive_and_qgram_are_qgram(self):
        assert isinstance(make_blocker("exhaustive"), QGramBlocker)
        assert isinstance(make_blocker("qgram", q=4), QGramBlocker)
        assert make_blocker("qgram", q=4).q == 4

    def test_token(self):
        assert isinstance(make_blocker("token"), TokenBlocker)

    def test_sorted_neighborhood(self):
        assert isinstance(
            make_blocker("sorted-neighborhood"),
            SortedNeighborhoodBlocker,
        )

    def test_ann_specs(self):
        lsh = make_blocker("lsh", bands=16, n_hashes=64)
        graph = make_blocker("graph", k=7)
        assert isinstance(lsh, AnnBlocker) and lsh.config.backend == "lsh"
        assert lsh.config.bands == 16
        assert isinstance(graph, AnnBlocker) and graph.config.backend == "graph"
        assert graph.config.k == 7

    def test_ann_config_passthrough(self):
        config = AnnConfig(backend="graph", k=4)
        blocker = make_blocker(config)
        assert blocker.config is config

    def test_passthrough_rejects_extra_options(self):
        with pytest.raises(ValueError, match="options"):
            make_blocker(AnnConfig(), k=3)

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="exhaustive"):
            make_blocker("bogus")

    def test_candidates_equal_direct_construction(self, small_sources):
        direct = AnnBlocker(AnnConfig(backend="lsh")).candidates(small_sources)
        factory = make_blocker("lsh").candidates(small_sources)
        assert direct == factory


class TestMakeIndex:
    def test_backends(self, small_sources):
        records = small_sources.right.records()
        for spec in INDEX_SPECS:
            index = make_index(spec, records)
            assert len(index) == len(records)
            result = index.search(records[0], 3)
            assert isinstance(result, Candidates)
            assert records[0].record_id in result.ids

    def test_config_passthrough(self, small_sources):
        config = AnnConfig(backend="graph", k=4)
        index = make_index(config, small_sources.right.records())
        assert index.config is config

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            make_index("token", [])


class TestCandidates:
    def test_shape_and_iteration(self):
        result = Candidates(
            ids=(("a", "b"), ("a", "c")),
            scores=(0.9, 0.5),
            provenance="test",
        )
        assert len(result) == 2
        assert bool(result)
        assert list(result) == [("a", "b"), ("a", "c")]
        assert result.to_set() == {("a", "b"), ("a", "c")}
        assert result.top(1).ids == (("a", "b"),)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Candidates(ids=(("a", "b"),), scores=(0.9, 0.1), provenance="")

    def test_empty_is_falsy(self):
        assert not Candidates(ids=(), scores=(), provenance="")

    def test_blocker_result_is_typed(self, small_sources):
        result = make_blocker("lsh").candidate_result(small_sources)
        assert isinstance(result, Candidates)
        assert result.to_set() == make_blocker("lsh").candidates(small_sources)
        assert list(result.scores) == sorted(result.scores, reverse=True)
