"""Tests for the blocking substrate: token/q-gram blockers, DeepBlocker, tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking import (
    DeepBlocker,
    DeepBlockerConfig,
    LinearAutoencoder,
    QGramBlocker,
    TokenBlocker,
    evaluate_blocking,
    tune_deepblocker,
)
from repro.blocking.deepblocker import DeepBlockerIndex


class TestEvaluateBlocking:
    def test_perfect_blocking(self, small_sources):
        result = evaluate_blocking(small_sources.matches, small_sources)
        assert result.pair_completeness == 1.0
        assert result.pairs_quality == 1.0

    def test_empty_candidates(self, small_sources):
        result = evaluate_blocking([], small_sources)
        assert result.pair_completeness == 0.0
        assert result.pairs_quality == 0.0
        assert result.n_candidates == 0

    def test_partial(self, small_sources):
        some_matches = sorted(small_sources.matches)[:10]
        extra = [("a0", "b999"), ("a1", "b998")]
        result = evaluate_blocking(some_matches + extra, small_sources)
        assert result.n_matching_candidates == 10
        assert result.pair_completeness == pytest.approx(
            10 / small_sources.n_matches
        )
        assert result.pairs_quality == pytest.approx(10 / 12)

    def test_zero_match_sources_are_vacuously_complete(self):
        # Regression: with no true matches there is nothing a candidate
        # set can miss, so PC must be 1.0 (vacuous completeness). The
        # pre-fix 0.0 made every tuner recall target unreachable on
        # all-negative sources.
        from repro.data.records import Record, RecordStore, Schema
        from repro.datasets.generator import SourcePair

        schema = Schema(("name",))
        sources = SourcePair(
            name="no_matches",
            left=RecordStore(
                "L",
                schema,
                [Record("a0", "L", {"name": "alpha"})],
            ),
            right=RecordStore(
                "R",
                schema,
                [Record("b0", "R", {"name": "omega"})],
            ),
            matches=frozenset(),
        )
        empty = evaluate_blocking([], sources)
        assert empty.pair_completeness == 1.0
        assert empty.pairs_quality == 0.0
        nonempty = evaluate_blocking([("a0", "b0")], sources)
        assert nonempty.pair_completeness == 1.0
        assert nonempty.pairs_quality == 0.0


class TestTokenBlocker:
    def test_finds_most_matches(self, small_sources):
        candidates = TokenBlocker(min_common=1).candidates(small_sources)
        result = evaluate_blocking(candidates, small_sources)
        assert result.pair_completeness > 0.8

    def test_min_common_raises_precision(self, small_sources):
        loose = evaluate_blocking(
            TokenBlocker(min_common=1).candidates(small_sources), small_sources
        )
        strict = evaluate_blocking(
            TokenBlocker(min_common=3).candidates(small_sources), small_sources
        )
        assert strict.n_candidates < loose.n_candidates
        assert strict.pairs_quality >= loose.pairs_quality

    def test_invalid_min_common(self):
        with pytest.raises(ValueError):
            TokenBlocker(min_common=0)


class TestQGramBlocker:
    def test_recall_at_least_token_level(self, small_sources):
        qgram = evaluate_blocking(
            QGramBlocker(q=3, min_common=2, max_block_size=None).candidates(
                small_sources
            ),
            small_sources,
        )
        assert qgram.pair_completeness > 0.85

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            QGramBlocker(q=0)
        with pytest.raises(ValueError):
            QGramBlocker(min_common=0)


class TestAutoencoder:
    def test_reconstruction_improves_over_init(self):
        rng = np.random.default_rng(0)
        # Low-rank data: a 32-dim encoding suffices.
        basis = rng.normal(size=(8, 64))
        data = rng.normal(size=(200, 8)) @ basis
        model = LinearAutoencoder(encoding_dim=16, epochs=120, seed=0).fit(data)
        baseline = float(np.mean(data**2))
        assert model.reconstruction_error_ < baseline * 0.5

    def test_encode_shape(self):
        data = np.random.default_rng(1).normal(size=(50, 20))
        model = LinearAutoencoder(encoding_dim=5, epochs=10).fit(data)
        assert model.encode(data).shape == (50, 5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearAutoencoder().encode(np.zeros((2, 3)))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LinearAutoencoder(encoding_dim=0)


class TestDeepBlocker:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeepBlockerConfig(k=0)

    def test_describe(self):
        config = DeepBlockerConfig(k=5, attribute="name", clean=True, index_left=True)
        assert config.describe() == "attr=name cl=yes K=5 ind=D1"

    def test_candidate_count_bounded_by_k(self, small_sources):
        config = DeepBlockerConfig(k=3)
        candidates = DeepBlocker(config).candidates(small_sources)
        assert len(candidates) <= 3 * len(small_sources.left)

    def test_higher_k_higher_recall(self, small_sources):
        index = DeepBlockerIndex(small_sources)
        low = evaluate_blocking(index.candidates(1, False), small_sources)
        high = evaluate_blocking(index.candidates(10, False), small_sources)
        assert high.pair_completeness >= low.pair_completeness
        assert high.n_candidates > low.n_candidates

    def test_index_directions_give_same_orientation(self, small_sources):
        index = DeepBlockerIndex(small_sources)
        for index_left in (False, True):
            for left_id, right_id in index.candidates(2, index_left):
                assert left_id in small_sources.left
                assert right_id in small_sources.right

    def test_attribute_blocking(self, small_sources):
        index = DeepBlockerIndex(small_sources, attribute="name")
        result = evaluate_blocking(index.candidates(5, False), small_sources)
        assert result.n_candidates > 0

    def test_deterministic(self, small_sources):
        first = DeepBlocker(DeepBlockerConfig(k=3), seed=1).candidates(small_sources)
        second = DeepBlocker(DeepBlockerConfig(k=3), seed=1).candidates(small_sources)
        assert first == second


class TestTuning:
    def test_meets_recall_target(self, small_sources):
        tuned = tune_deepblocker(small_sources, recall_target=0.85)
        assert tuned.pair_completeness >= 0.85

    def test_minimizes_candidates_among_meeting(self, small_sources):
        tuned = tune_deepblocker(
            small_sources, recall_target=0.85, k_ladder=(1, 3, 10, 30)
        )
        # A much larger K would also meet the target but with more
        # candidates; the tuner must not pick it.
        index = DeepBlockerIndex(
            small_sources,
            attribute=tuned.config.attribute,
            clean=tuned.config.clean,
        )
        bigger = evaluate_blocking(
            index.candidates(30, tuned.config.index_left), small_sources
        )
        if bigger.pair_completeness >= 0.85:
            assert tuned.result.n_candidates <= bigger.n_candidates

    def test_unreachable_target_returns_best_effort(self, small_sources):
        tuned = tune_deepblocker(
            small_sources, recall_target=1.0, k_ladder=(1,)
        )
        assert 0.0 < tuned.pair_completeness <= 1.0

    def test_invalid_args(self, small_sources):
        with pytest.raises(ValueError):
            tune_deepblocker(small_sources, recall_target=0.0)
        with pytest.raises(ValueError):
            tune_deepblocker(small_sources, k_ladder=())

    def test_fallback_prefers_fewer_candidates_on_recall_tie(
        self, small_sources, monkeypatch
    ):
        # Regression: when no configuration meets the recall target, PC
        # ties must break toward the *smaller* candidate set. The pre-fix
        # strictly-greater comparison kept the first-seen configuration,
        # which here is deliberately the largest one.
        sizes: list[int] = []
        match = sorted(small_sources.matches)[0]

        class FakeIndex:
            def __init__(self, sources, attribute=None, clean=False, seed=0):
                pass

            def candidates(self, k, index_left):
                # Every call has identical PC (exactly one true match)
                # but a strictly shrinking candidate set.
                fillers = {
                    (f"fake{i}", f"fake{i}")
                    for i in range(50 - 2 * len(sizes))
                }
                result = {match} | fillers
                sizes.append(len(result))
                return result

        import repro.blocking.tuning as tuning

        monkeypatch.setattr(tuning, "DeepBlockerIndex", FakeIndex)
        tuned = tune_deepblocker(
            small_sources, recall_target=0.9, k_ladder=(1, 2)
        )
        assert tuned.pair_completeness < 0.9  # fallback path exercised
        assert tuned.result.n_candidates == min(sizes)
