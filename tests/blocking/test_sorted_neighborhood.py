"""Tests for sorted-neighborhood blocking."""

from __future__ import annotations

import pytest

from repro.blocking.base import evaluate_blocking
from repro.blocking.sorted_neighborhood import (
    SortedNeighborhoodBlocker,
    default_key,
)
from tests.conftest import make_record


class TestDefaultKey:
    def test_token_order_invariant(self):
        a = make_record("a", "A", name="zulu alpha mike")
        b = make_record("b", "B", name="mike zulu alpha")
        assert default_key(a) == default_key(b)

    def test_empty_record(self):
        record = make_record("a", "A", name="")
        assert default_key(record) == ""


class TestSortedNeighborhood:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(window=1)

    def test_finds_most_matches(self, small_sources):
        blocker = SortedNeighborhoodBlocker(window=8)
        result = evaluate_blocking(blocker.candidates(small_sources), small_sources)
        assert result.pair_completeness > 0.5

    def test_wider_window_more_candidates(self, small_sources):
        narrow = SortedNeighborhoodBlocker(window=3).candidates(small_sources)
        wide = SortedNeighborhoodBlocker(window=10).candidates(small_sources)
        assert narrow <= wide
        assert len(wide) > len(narrow)

    def test_candidates_oriented_left_right(self, small_sources):
        for left_id, right_id in SortedNeighborhoodBlocker(window=4).candidates(
            small_sources
        ):
            assert left_id in small_sources.left
            assert right_id in small_sources.right

    def test_candidate_count_bounded_by_window(self, small_sources):
        window = 4
        blocker = SortedNeighborhoodBlocker(window=window)
        candidates = blocker.candidates(small_sources)
        total = len(small_sources.left) + len(small_sources.right)
        assert len(candidates) <= total * (window - 1)

    def test_custom_key(self, small_sources):
        # Keying on the price attribute only: completely different blocks.
        blocker = SortedNeighborhoodBlocker(
            window=4, key=lambda record: record.value("price")
        )
        candidates = blocker.candidates(small_sources)
        assert isinstance(candidates, set)
