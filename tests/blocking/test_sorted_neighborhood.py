"""Tests for sorted-neighborhood blocking."""

from __future__ import annotations

import pytest

from repro.blocking.base import evaluate_blocking
from repro.blocking.sorted_neighborhood import (
    SortedNeighborhoodBlocker,
    default_key,
)
from tests.conftest import make_record


class TestDefaultKey:
    def test_token_order_invariant(self):
        a = make_record("a", "A", name="zulu alpha mike")
        b = make_record("b", "B", name="mike zulu alpha")
        assert default_key(a) == default_key(b)

    def test_empty_record(self):
        record = make_record("a", "A", name="")
        assert default_key(record) == ""


def _tie_sources(n_left: int, n_right: int, key: str = "same"):
    """A source pair where every record shares one blocking key."""
    from repro.data.records import RecordStore, Schema
    from repro.datasets.generator import SourcePair

    schema = Schema(("name",))
    left = RecordStore(
        "L",
        schema,
        [make_record(f"a{i}", "L", name=key) for i in range(n_left)],
    )
    right = RecordStore(
        "R",
        schema,
        [make_record(f"b{i}", "R", name=key) for i in range(n_right)],
    )
    matches = frozenset(
        (f"a{i}", f"b{i}") for i in range(min(n_left, n_right))
    )
    return SourcePair(name="ties", left=left, right=right, matches=matches)


class TestSortedNeighborhood:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(window=1)

    def test_max_block_size_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(max_block_size=-1)

    def test_finds_most_matches(self, small_sources):
        blocker = SortedNeighborhoodBlocker(window=8)
        result = evaluate_blocking(blocker.candidates(small_sources), small_sources)
        assert result.pair_completeness > 0.5

    def test_wider_window_more_candidates(self, small_sources):
        narrow = SortedNeighborhoodBlocker(window=3).candidates(small_sources)
        wide = SortedNeighborhoodBlocker(window=10).candidates(small_sources)
        assert narrow <= wide
        assert len(wide) > len(narrow)

    def test_candidates_oriented_left_right(self, small_sources):
        for left_id, right_id in SortedNeighborhoodBlocker(window=4).candidates(
            small_sources
        ):
            assert left_id in small_sources.left
            assert right_id in small_sources.right

    def test_candidate_count_bounded_by_window(self, small_sources):
        # The pure sliding-window bound only holds with tie expansion
        # disabled (max_block_size=0); expansion deliberately exceeds it.
        window = 4
        blocker = SortedNeighborhoodBlocker(window=window, max_block_size=0)
        candidates = blocker.candidates(small_sources)
        total = len(small_sources.left) + len(small_sources.right)
        assert len(candidates) <= total * (window - 1)

    def test_tie_run_longer_than_window_keeps_all_pairs(self):
        # Regression: 12 left + 12 right records all sharing one key. A
        # window of 5 sliding over the 24-entry sorted order can only see
        # pairs within 4 positions, so the pre-fix blocker silently lost
        # most same-key cross pairs (e.g. PC was far below 1.0 despite a
        # perfect blocking key). Tie expansion must recover the full block.
        sources = _tie_sources(12, 12)
        blocker = SortedNeighborhoodBlocker(window=5)
        result = evaluate_blocking(blocker.candidates(sources), sources)
        assert result.n_candidates == 12 * 12
        assert result.pair_completeness == 1.0

    def test_tie_run_window_only_loses_pairs(self):
        # The companion negative control: with expansion disabled the
        # window alone demonstrably drops cross-source pairs.
        sources = _tie_sources(12, 12)
        blocker = SortedNeighborhoodBlocker(window=5, max_block_size=0)
        result = evaluate_blocking(blocker.candidates(sources), sources)
        assert result.n_candidates < 12 * 12
        assert result.pair_completeness < 1.0

    def test_oversized_tie_run_guarded(self):
        # A degenerate key (every record identical) larger than
        # max_block_size must not explode into the cross product.
        sources = _tie_sources(15, 15)
        blocker = SortedNeighborhoodBlocker(window=3, max_block_size=20)
        windowed = SortedNeighborhoodBlocker(
            window=3, max_block_size=0
        ).candidates(sources)
        assert blocker.candidates(sources) == windowed

    def test_unbounded_expansion(self):
        sources = _tie_sources(15, 15)
        blocker = SortedNeighborhoodBlocker(window=3, max_block_size=None)
        assert len(blocker.candidates(sources)) == 15 * 15

    def test_custom_key(self, small_sources):
        # Keying on the price attribute only: completely different blocks.
        blocker = SortedNeighborhoodBlocker(
            window=4, key=lambda record: record.value("price")
        )
        candidates = blocker.candidates(small_sources)
        assert isinstance(candidates, set)
