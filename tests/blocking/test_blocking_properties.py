"""Property-based tests for blocking evaluation invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.base import evaluate_blocking
from repro.datasets.entities import product_domain
from repro.datasets.generator import GeneratorProfile, generate_source_pair
from repro.datasets.noise import NoiseModel


def _sources(seed: int):
    profile = GeneratorProfile(
        name=f"prop{seed}",
        domain=product_domain(f"prop{seed}"),
        n_matches=25,
        left_extra=10,
        right_extra=15,
        synonym_rate_right=0.2,
        noise_left=NoiseModel(typo_rate=0.02),
        noise_right=NoiseModel(typo_rate=0.03),
        seed=seed,
    )
    return generate_source_pair(profile)


class TestBlockingEvaluationProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50), st.integers(0, 25), st.integers(0, 10))
    def test_pc_pq_consistency(self, seed, n_matches_kept, n_noise):
        """PC * |M| equals the matching candidates; PQ = matching / total."""
        sources = _sources(seed % 3)
        kept = sorted(sources.matches)[:n_matches_kept]
        left_ids = sources.left.ids()
        right_ids = sources.right.ids()
        noise = {
            (left_ids[i % len(left_ids)], right_ids[(i * 7 + 3) % len(right_ids)])
            for i in range(n_noise)
        } - sources.matches
        candidates = set(kept) | noise
        result = evaluate_blocking(candidates, sources)

        assert result.n_matching_candidates == len(set(kept))
        assert result.pair_completeness * sources.n_matches == pytest.approx(
            result.n_matching_candidates
        )
        if candidates:
            assert result.pairs_quality == pytest.approx(
                result.n_matching_candidates / len(candidates)
            )
        assert 0.0 <= result.pair_completeness <= 1.0
        assert 0.0 <= result.pairs_quality <= 1.0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2))
    def test_superset_never_lowers_recall(self, seed):
        """Adding candidates can only keep or raise pair completeness."""
        sources = _sources(seed)
        some = set(sorted(sources.matches)[:10])
        more = some | set(sorted(sources.matches)[10:20])
        assert (
            evaluate_blocking(more, sources).pair_completeness
            >= evaluate_blocking(some, sources).pair_completeness
        )
