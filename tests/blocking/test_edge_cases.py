"""Edge-case matrix shared by every blocker implementation.

Each blocker must survive (not crash on) degenerate inputs — empty
sources, single records, records shorter than q, thresholds no pair can
meet — and always return a well-oriented ``set`` of (left_id, right_id)
pairs. Parameterized over the full blocker roster, ANN backends included.
"""

from __future__ import annotations

import pytest

from repro.blocking import (
    AnnBlocker,
    AnnConfig,
    QGramBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
)
from repro.data.records import RecordStore, Schema
from repro.datasets.generator import SourcePair
from tests.conftest import make_record

SCHEMA = Schema(("name",))


def _pair(left_names: list[str], right_names: list[str]) -> SourcePair:
    left = RecordStore(
        "L",
        SCHEMA,
        [
            make_record(f"a{i}", "L", name=name)
            for i, name in enumerate(left_names)
        ],
    )
    right = RecordStore(
        "R",
        SCHEMA,
        [
            make_record(f"b{i}", "R", name=name)
            for i, name in enumerate(right_names)
        ],
    )
    return SourcePair(name="edge", left=left, right=right, matches=frozenset())


BLOCKERS = [
    pytest.param(lambda: TokenBlocker(), id="token"),
    pytest.param(lambda: QGramBlocker(), id="qgram"),
    pytest.param(lambda: SortedNeighborhoodBlocker(), id="snb"),
    pytest.param(
        lambda: AnnBlocker(AnnConfig(backend="lsh", n_hashes=32, bands=16)),
        id="ann-lsh",
    ),
    pytest.param(
        lambda: AnnBlocker(AnnConfig(backend="graph", k=3)), id="ann-graph"
    ),
]


@pytest.mark.parametrize("blocker_factory", BLOCKERS)
class TestBlockerEdgeCases:
    def test_empty_left_source(self, blocker_factory):
        sources = _pair([], ["laptop pro", "usb cable"])
        assert blocker_factory().candidates(sources) == set()

    def test_empty_both_sources(self, blocker_factory):
        sources = _pair([], [])
        assert blocker_factory().candidates(sources) == set()

    def test_single_record_sources(self, blocker_factory):
        sources = _pair(["laptop pro 15"], ["laptop pro 15"])
        candidates = blocker_factory().candidates(sources)
        assert candidates <= {("a0", "b0")}

    def test_records_shorter_than_q(self, blocker_factory):
        # 1-2 character values produce no 3-grams at all; blockers must
        # degrade to empty/valid output, never crash.
        sources = _pair(["a", "xy", ""], ["b", "yz", ""])
        candidates = blocker_factory().candidates(sources)
        assert isinstance(candidates, set)
        for left_id, right_id in candidates:
            assert left_id.startswith("a") and right_id.startswith("b")

    def test_orientation(self, blocker_factory):
        sources = _pair(
            ["red widget deluxe", "blue widget basic"],
            ["red widget deluxe", "green gadget"],
        )
        for left_id, right_id in blocker_factory().candidates(sources):
            assert left_id in sources.left
            assert right_id in sources.right


class TestThresholdEdgeCases:
    def test_min_common_larger_than_any_overlap(self):
        sources = _pair(["alpha beta"], ["alpha beta"])
        assert TokenBlocker(min_common=50).candidates(sources) == set()
        assert QGramBlocker(min_common=500).candidates(sources) == set()

    def test_qgram_max_block_size_zero(self):
        # Every posting list is larger than 0, so every gram is pruned.
        sources = _pair(["alpha beta"], ["alpha beta"])
        assert QGramBlocker(max_block_size=0).candidates(sources) == set()

    def test_ann_min_shared_bands_unreachable_for_disjoint(self):
        # Disjoint records should not collide on all bands.
        sources = _pair(["aaaaaaaa bbbbbbbb"], ["zzzzzzzz qqqqqqqq"])
        config = AnnConfig(
            backend="lsh", n_hashes=32, bands=32, min_shared_bands=32
        )
        assert AnnBlocker(config).candidates(sources) == set()

    def test_snb_max_block_size_zero_window_only(self):
        sources = _pair(["same"] * 8, ["same"] * 8)
        expanded = SortedNeighborhoodBlocker(window=3).candidates(sources)
        windowed = SortedNeighborhoodBlocker(
            window=3, max_block_size=0
        ).candidates(sources)
        assert windowed < expanded
        assert expanded == {
            (f"a{i}", f"b{j}") for i in range(8) for j in range(8)
        }
