"""Tests for the ANN blocking substrate (minhash LSH + small-world graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking import (
    AnnBlocker,
    AnnConfig,
    QGramBlocker,
    evaluate_blocking,
    make_index,
    provenance_sweep,
    tune_ann,
)
from repro.data.records import RecordStore, Schema
from repro.datasets.generator import SourcePair
from repro.text.kernels import (
    EMPTY_SIGNATURE,
    band_keys,
    minhash_params,
    minhash_signatures,
)
from tests.conftest import make_record


class TestMinhashKernels:
    def test_signature_shape_and_dtype(self):
        rows = [np.array([1, 2, 3], dtype=np.int64), np.array([4], dtype=np.int64)]
        signatures = minhash_signatures(rows, n_hashes=16, seed=0)
        assert signatures.shape == (2, 16)
        assert signatures.dtype == np.uint64

    def test_identical_sets_identical_signatures(self):
        a = np.array([10, 20, 30], dtype=np.int64)
        b = np.array([30, 10, 20, 10], dtype=np.int64)  # same set, dup/order
        signatures = minhash_signatures([a, b], n_hashes=64, seed=3)
        assert np.array_equal(signatures[0], signatures[1])

    def test_collision_rate_tracks_jaccard(self):
        # Signature agreement approximates Jaccard similarity: a pair
        # with J=0.8 must agree on far more hash positions than J=0.
        base = np.arange(100, dtype=np.int64)
        overlapping = np.arange(10, 110, dtype=np.int64)  # J ~ 0.82
        disjoint = np.arange(1000, 1100, dtype=np.int64)  # J = 0
        signatures = minhash_signatures(
            [base, overlapping, disjoint], n_hashes=256, seed=0
        )
        similar = float(np.mean(signatures[0] == signatures[1]))
        dissimilar = float(np.mean(signatures[0] == signatures[2]))
        assert similar > 0.6
        assert dissimilar < 0.1

    def test_empty_row_gets_sentinel(self):
        rows = [np.array([], dtype=np.int64), np.array([5], dtype=np.int64)]
        signatures = minhash_signatures(rows, n_hashes=8, seed=0)
        assert np.all(signatures[0] == EMPTY_SIGNATURE)
        assert not np.all(signatures[1] == EMPTY_SIGNATURE)

    def test_deterministic_per_seed(self):
        rows = [np.array([7, 8, 9], dtype=np.int64)]
        first = minhash_signatures(rows, n_hashes=32, seed=5)
        second = minhash_signatures(rows, n_hashes=32, seed=5)
        other = minhash_signatures(rows, n_hashes=32, seed=6)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_minhash_params_odd_multipliers(self):
        a, b = minhash_params(64, seed=0)
        assert a.dtype == np.uint64 and b.dtype == np.uint64
        assert np.all(a % np.uint64(2) == np.uint64(1))

    def test_band_keys_shape_and_validation(self):
        rows = [np.array([1, 2], dtype=np.int64)] * 3
        signatures = minhash_signatures(rows, n_hashes=16, seed=0)
        keys = band_keys(signatures, bands=4)
        assert keys.shape == (3, 4)
        with pytest.raises(ValueError):
            band_keys(signatures, bands=5)

    def test_band_keys_equal_for_equal_signatures(self):
        rows = [
            np.array([1, 2, 3], dtype=np.int64),
            np.array([1, 2, 3], dtype=np.int64),
        ]
        signatures = minhash_signatures(rows, n_hashes=32, seed=1)
        keys = band_keys(signatures, bands=8)
        assert np.array_equal(keys[0], keys[1])


class TestAnnConfig:
    def test_defaults_valid(self):
        config = AnnConfig()
        assert config.backend == "lsh"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "faiss"},
            {"q": 0},
            {"n_hashes": 0},
            {"n_hashes": 64, "bands": 7},
            {"bands": 0},
            {"n_hashes": 64, "bands": 16, "min_shared_bands": 0},
            {"n_hashes": 64, "bands": 16, "min_shared_bands": 17},
            {"max_bucket": -1},
            {"k": 0},
            {"max_degree": 0},
            {"beam_width": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnnConfig(**kwargs)

    def test_describe(self):
        lsh = AnnConfig(backend="lsh", n_hashes=64, bands=16, min_shared_bands=2)
        assert lsh.describe() == "lsh q=3 sig=64 bands=16 rows=4 shared>=2"
        graph = AnnConfig(backend="graph", k=5, max_degree=8, beam_width=16)
        assert graph.describe() == "graph q=3 K=5 deg=8 beam=16"


class TestAnnBlockerLsh:
    def test_deterministic(self, small_sources):
        config = AnnConfig(backend="lsh", n_hashes=64, bands=16)
        first = AnnBlocker(config).candidates(small_sources)
        second = AnnBlocker(config).candidates(small_sources)
        assert first == second

    def test_oriented_left_right(self, small_sources):
        config = AnnConfig(backend="lsh", n_hashes=64, bands=32)
        for left_id, right_id in AnnBlocker(config).candidates(small_sources):
            assert left_id in small_sources.left
            assert right_id in small_sources.right

    def test_finds_most_matches(self, small_sources):
        config = AnnConfig(backend="lsh", n_hashes=64, bands=32)
        result = evaluate_blocking(
            AnnBlocker(config).candidates(small_sources), small_sources
        )
        assert result.pair_completeness > 0.8

    def test_min_shared_bands_monotone(self, small_sources):
        # Demanding more shared buckets can only shrink the candidate set.
        loose = AnnBlocker(
            AnnConfig(backend="lsh", n_hashes=64, bands=16, min_shared_bands=1)
        ).candidates(small_sources)
        strict = AnnBlocker(
            AnnConfig(backend="lsh", n_hashes=64, bands=16, min_shared_bands=2)
        ).candidates(small_sources)
        assert strict <= loose

    def test_seed_changes_hash_family(self, small_sources):
        first = AnnBlocker(AnnConfig(seed=0)).candidates(small_sources)
        second = AnnBlocker(AnnConfig(seed=99)).candidates(small_sources)
        # Different hash families draw different bucket boundaries.
        assert first != second

    def test_max_bucket_zero_blocks_nothing(self, small_sources):
        config = AnnConfig(backend="lsh", max_bucket=0)
        assert AnnBlocker(config).candidates(small_sources) == set()


class TestAnnBlockerGraph:
    def test_deterministic(self, small_sources):
        config = AnnConfig(backend="graph", k=5)
        first = AnnBlocker(config).candidates(small_sources)
        second = AnnBlocker(config).candidates(small_sources)
        assert first == second

    def test_candidate_count_bounded_by_k(self, small_sources):
        config = AnnConfig(backend="graph", k=4)
        candidates = AnnBlocker(config).candidates(small_sources)
        assert len(candidates) <= 4 * len(small_sources.left)

    def test_oriented_left_right(self, small_sources):
        config = AnnConfig(backend="graph", k=3)
        for left_id, right_id in AnnBlocker(config).candidates(small_sources):
            assert left_id in small_sources.left
            assert right_id in small_sources.right

    def test_finds_most_matches(self, small_sources):
        result = evaluate_blocking(
            AnnBlocker(AnnConfig(backend="graph")).candidates(small_sources),
            small_sources,
        )
        assert result.pair_completeness > 0.7

    def test_search_interface(self, small_sources):
        index = make_index("graph", small_sources.right.records())
        record = next(iter(small_sources.left))
        result = index.search(record, 5)
        assert 0 < len(result) <= 5
        assert len(result.ids) == len(result.scores)
        for record_id in result.ids:
            assert record_id in small_sources.right
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_search_self_retrieval(self, small_sources):
        # Querying with a record *of the indexed source* must retrieve
        # that record itself among the top hits (cosine 1.0 beats all).
        index = make_index("graph", small_sources.right.records())
        record = next(iter(small_sources.right))
        result = index.search(record, 3)
        assert record.record_id in result.ids
        assert max(result.scores) == pytest.approx(1.0)

    def test_insert_matches_rebuild(self, small_sources):
        # Appending records must answer bit-identically to an index
        # built over the full record list from scratch.
        records = small_sources.right.records()
        half = len(records) // 2
        grown = make_index("graph", records[:half])
        grown.insert(records[half:])
        rebuilt = make_index("graph", records)
        for probe in small_sources.left.records()[:15]:
            a, b = grown.search(probe, 5), rebuilt.search(probe, 5)
            assert a.ids == b.ids
            assert a.scores == b.scores

    def test_lsh_index_insert_matches_rebuild(self, small_sources):
        records = small_sources.right.records()
        half = len(records) // 2
        grown = make_index("lsh", records[:half])
        grown.insert(records[half:])
        rebuilt = make_index("lsh", records)
        for probe in small_sources.left.records()[:15]:
            a, b = grown.search(probe, 5), rebuilt.search(probe, 5)
            assert a.ids == b.ids
            assert a.scores == b.scores

    def test_insert_never_rebuilds(self, small_sources):
        from repro import obs as obs_package
        from repro.obs import Observability

        records = small_sources.right.records()
        with obs_package.use(Observability()) as o:
            index = make_index("graph", records[:20])
            index.insert(records[20:40])
            index.insert(records[40:60])
            assert o.metrics.counter("blocking.ann.index_builds") == 1.0
            assert o.metrics.counter("blocking.ann.index_inserts") == 40.0

    def test_deprecated_build_index_still_works(self, small_sources):
        blocker = AnnBlocker(AnnConfig(backend="graph"))
        with pytest.warns(DeprecationWarning, match="build_index"):
            index = blocker.build_index(small_sources)
        record = next(iter(small_sources.right))
        with pytest.warns(DeprecationWarning, match="GraphIndex.query"):
            hits = index.query(record, 3)
        assert record.record_id in {hit.record_id for hit in hits}


class TestTuneAnn:
    def test_meets_recall_target(self, small_sources):
        tuned = tune_ann(small_sources, recall_target=0.85)
        assert tuned.pair_completeness >= 0.85

    def test_tuned_config_reproduces_standalone(self, small_sources):
        # The determinism acceptance: rerunning the winning config from a
        # fresh blocker must rebuild the exact candidate set.
        tuned = tune_ann(small_sources, recall_target=0.85)
        standalone = AnnBlocker(tuned.config).candidates(small_sources)
        assert frozenset(standalone) == tuned.result.candidates

    def test_unreachable_target_returns_best_effort(self, small_sources):
        tuned = tune_ann(
            small_sources,
            recall_target=1.0,
            signature_grid=(16,),
            band_grid=(2,),
            min_shared_grid=(2,),
        )
        assert 0.0 <= tuned.pair_completeness <= 1.0

    def test_zero_match_sources_meet_any_target(self):
        # Integration of the vacuous-PC fix: with no true matches every
        # config meets the target, so the tuner picks the *smallest*
        # candidate set instead of falling back.
        schema = Schema(("name",))
        sources = SourcePair(
            name="no_matches",
            left=RecordStore(
                "L",
                schema,
                [make_record("a0", "L", name="alpha beta gamma")],
            ),
            right=RecordStore(
                "R",
                schema,
                [make_record("b0", "R", name="delta epsilon zeta")],
            ),
            matches=frozenset(),
        )
        tuned = tune_ann(sources, recall_target=0.9)
        assert tuned.pair_completeness == 1.0

    def test_invalid_args(self, small_sources):
        with pytest.raises(ValueError):
            tune_ann(small_sources, recall_target=0.0)
        with pytest.raises(ValueError):
            tune_ann(small_sources, signature_grid=())


class TestProvenanceSweep:
    def test_all_backends_present(self, small_sources):
        sweep = provenance_sweep(small_sources, recall_target=0.85)
        assert set(sweep) == {"exhaustive", "lsh", "graph"}
        for provenance in sweep.values():
            assert 0.0 <= provenance.cssr <= 1.0
            assert provenance.seconds >= 0.0
            assert provenance.config

    def test_lsh_prunes_the_cross_product(self, small_sources):
        sweep = provenance_sweep(small_sources, recall_target=0.85)
        assert sweep["lsh"].result.n_candidates < (
            len(small_sources.left) * len(small_sources.right)
        )

    def test_backend_subset(self, small_sources):
        sweep = provenance_sweep(
            small_sources, recall_target=0.85, backends=("exhaustive",)
        )
        assert set(sweep) == {"exhaustive"}
        baseline = evaluate_blocking(
            QGramBlocker(q=3).candidates(small_sources), small_sources
        )
        assert sweep["exhaustive"].result.n_candidates == baseline.n_candidates
