"""Tests for Algorithm 1 (degree of linearity)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.linearity import (
    DEGENERATE_THRESHOLD,
    best_threshold_f1,
    degree_of_linearity,
    linearity_profile,
    pair_similarities,
)
from repro.text.similarity import cosine_similarity, jaccard_similarity


class TestBestThresholdF1:
    def test_perfectly_separable(self):
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        labels = np.array([0, 0, 0, 1, 1])
        f1, threshold = best_threshold_f1(scores, labels)
        assert f1 == 1.0
        assert 0.3 < threshold <= 0.8

    def test_inseparable_overlap(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        f1, __ = best_threshold_f1(scores, labels)
        assert f1 == pytest.approx(2 / 3)  # predict all positive

    def test_no_positives_degenerate_sentinel(self):
        # Regression: an all-negative fold used to come back with
        # threshold 0.0, so `scores >= threshold` predicted *everything*
        # as a match. The sentinel sits above any attainable score.
        f1, threshold = best_threshold_f1(
            np.array([0.2, 0.4]), np.array([0, 0])
        )
        assert f1 == 0.0 and threshold == DEGENERATE_THRESHOLD
        assert not np.any(np.array([0.2, 0.4]) >= threshold)

    def test_scores_below_grid_degenerate_sentinel(self):
        # All scores below every grid threshold: no threshold predicts a
        # single positive, even though positives exist.
        f1, threshold = best_threshold_f1(
            np.array([0.0, 0.0, 0.0]), np.array([0, 1, 1])
        )
        assert f1 == 0.0 and threshold == DEGENERATE_THRESHOLD

    def test_degenerate_threshold_is_above_score_range(self):
        assert DEGENERATE_THRESHOLD > 1.0

    def test_keeps_lowest_best_threshold(self):
        scores = np.array([0.1, 0.9])
        labels = np.array([0, 1])
        __, threshold = best_threshold_f1(scores, labels)
        # Any threshold in (0.1, 0.9] is perfect; the sweep keeps the first.
        assert threshold == pytest.approx(0.11)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            best_threshold_f1(np.array([0.1]), np.array([0, 1]))

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 1)),
            min_size=2,
            max_size=40,
        )
    )
    def test_matches_naive_sweep(self, pairs):
        scores = np.array([score for score, __ in pairs])
        labels = np.array([label for __, label in pairs])
        fast_f1, __ = best_threshold_f1(scores, labels)

        best = 0.0
        # The same rounded grid the implementation sweeps: the raw
        # np.arange values carry float error (0.01 * 3 != 0.03) that would
        # flip classifications of scores sitting exactly on a grid point.
        for threshold in np.round(np.arange(0.01, 1.0, 0.01), 2):
            predicted = scores >= threshold
            tp = int(np.sum(predicted & (labels == 1)))
            if predicted.sum() == 0 or labels.sum() == 0:
                continue
            precision = tp / predicted.sum()
            recall = tp / labels.sum()
            if precision + recall:
                best = max(best, 2 * precision * recall / (precision + recall))
        assert fast_f1 == pytest.approx(best, abs=1e-9)


class TestDegreeOfLinearity:
    def test_handmade_task_is_linear(self, handmade_task):
        result = degree_of_linearity(handmade_task, "cosine")
        assert result.max_f1 > 0.95

    def test_jaccard_variant(self, handmade_task):
        result = degree_of_linearity(handmade_task, "jaccard")
        assert result.similarity == "jaccard"
        assert 0.0 <= result.best_threshold <= 1.0

    def test_unknown_similarity(self, handmade_task):
        with pytest.raises(KeyError):
            degree_of_linearity(handmade_task, "levenshtein")

    def test_profile_has_both(self, handmade_task):
        profile = linearity_profile(handmade_task)
        assert set(profile) == {"cosine", "jaccard"}

    def test_pair_similarities_alignment(self, handmade_task):
        merged = handmade_task.all_pairs()
        scores = pair_similarities(merged, cosine_similarity)
        assert scores.shape == (len(merged),)
        assert np.all((0.0 <= scores) & (scores <= 1.0))

    def test_uses_all_three_splits(self, handmade_task):
        merged = handmade_task.all_pairs()
        total = (
            len(handmade_task.training)
            + len(handmade_task.validation)
            + len(handmade_task.testing)
        )
        assert len(merged) == total
