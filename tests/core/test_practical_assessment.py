"""Tests for the practical measures and the four-approach assessment."""

from __future__ import annotations

import pytest

from repro.core.assessment import (
    AssessmentThresholds,
    BenchmarkAssessment,
    assess_benchmark,
)
from repro.core.complexity.profile import MEASURE_NAMES, ComplexityProfile
from repro.core.linearity import LinearityResult
from repro.core.practical import (
    PracticalMeasures,
    learning_based_margin,
    non_linear_boost,
    practical_measures,
    unmeasured_practical,
)


class TestPracticalMeasures:
    def test_nlb(self):
        assert non_linear_boost({"dl": 0.9}, {"lin": 0.7}) == pytest.approx(0.2)

    def test_nlb_can_be_negative(self):
        assert non_linear_boost({"dl": 0.6}, {"lin": 0.8}) == pytest.approx(-0.2)

    def test_lbm(self):
        assert learning_based_margin({"a": 0.85, "b": 0.6}) == pytest.approx(0.15)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            non_linear_boost({}, {"lin": 0.5})
        with pytest.raises(ValueError):
            learning_based_margin({})

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            non_linear_boost({"dl": 1.2}, {"lin": 0.5})

    def test_combined(self):
        measures = practical_measures({"dl": 0.85, "ml": 0.8}, {"lin": 0.7})
        assert measures.non_linear_boost == pytest.approx(0.15)
        assert measures.learning_based_margin == pytest.approx(0.15)
        assert measures.best_overall_f1 == pytest.approx(0.85)

    def test_is_challenging(self):
        challenging = PracticalMeasures(0.10, 0.12, 0.88, 0.78)
        assert challenging.is_challenging()
        solved = PracticalMeasures(0.10, 0.02, 0.98, 0.88)
        assert not solved.is_challenging()
        linear = PracticalMeasures(0.01, 0.2, 0.8, 0.79)
        assert not linear.is_challenging()


class TestUnmeasuredPractical:
    """Regression: NaN measures must read as *unknown*, never as easy."""

    def test_is_not_measured(self):
        assert not unmeasured_practical().is_measured
        assert PracticalMeasures(0.1, 0.1, 0.9, 0.8).is_measured

    def test_partial_nan_is_not_measured(self):
        assert not PracticalMeasures(float("nan"), 0.1, 0.9, 0.8).is_measured

    def test_is_not_challenging(self):
        assert not unmeasured_practical().is_challenging()


def _make_assessment(
    linearity: float, complexity_mean: float, practical: PracticalMeasures | None
) -> BenchmarkAssessment:
    scores = dict.fromkeys(MEASURE_NAMES, complexity_mean)
    return BenchmarkAssessment(
        task_name="test",
        linearity={
            "cosine": LinearityResult("cosine", linearity, 0.5),
            "jaccard": LinearityResult("jaccard", linearity - 0.02, 0.4),
        },
        complexity=ComplexityProfile(scores=scores),
        practical=practical,
    )


class TestAssessment:
    def test_challenging_when_all_hard(self):
        assessment = _make_assessment(
            0.5, 0.5, PracticalMeasures(0.1, 0.1, 0.9, 0.8)
        )
        assert assessment.is_challenging
        assert not assessment.easy_by_linearity
        assert not assessment.easy_by_complexity
        assert not assessment.easy_by_practical

    def test_easy_by_linearity(self):
        assessment = _make_assessment(
            0.95, 0.5, PracticalMeasures(0.1, 0.1, 0.9, 0.8)
        )
        assert assessment.easy_by_linearity
        assert not assessment.is_challenging

    def test_easy_by_complexity(self):
        assessment = _make_assessment(
            0.5, 0.2, PracticalMeasures(0.1, 0.1, 0.9, 0.8)
        )
        assert assessment.easy_by_complexity
        assert not assessment.is_challenging

    def test_easy_by_practical(self):
        assessment = _make_assessment(
            0.5, 0.5, PracticalMeasures(0.01, 0.1, 0.9, 0.89)
        )
        assert assessment.easy_by_practical
        assert not assessment.is_challenging

    def test_no_practical_is_not_easy(self):
        assessment = _make_assessment(0.5, 0.5, None)
        assert not assessment.easy_by_practical
        assert not assessment.has_practical
        assert assessment.is_challenging

    def test_unmeasured_practical_is_not_easy(self):
        # Regression: a failed sweep used to make its dataset "easy by
        # practical" because NaN comparisons silently evaluated falsy in
        # one branch and truthy in another. Unknown is not evidence.
        assessment = _make_assessment(0.5, 0.5, unmeasured_practical())
        assert not assessment.has_practical
        assert not assessment.easy_by_practical
        assert assessment.is_challenging  # a-priori gates still apply
        assert assessment.summary()["has_practical"] is False

    def test_measured_practical_sets_summary_flag(self):
        assessment = _make_assessment(
            0.5, 0.5, PracticalMeasures(0.1, 0.1, 0.9, 0.8)
        )
        assert assessment.has_practical
        assert assessment.summary()["has_practical"] is True

    def test_summary_keys(self):
        assessment = _make_assessment(
            0.5, 0.5, PracticalMeasures(0.1, 0.1, 0.9, 0.8)
        )
        summary = assessment.summary()
        assert summary["challenging"] is True
        assert "nlb" in summary and "lbm" in summary

    def test_custom_thresholds(self):
        lenient = AssessmentThresholds(linearity_easy=0.99)
        scores = dict.fromkeys(MEASURE_NAMES, 0.5)
        assessment = BenchmarkAssessment(
            task_name="t",
            linearity={
                "cosine": LinearityResult("cosine", 0.95, 0.5),
                "jaccard": LinearityResult("jaccard", 0.94, 0.5),
            },
            complexity=ComplexityProfile(scores=scores),
            thresholds=lenient,
        )
        assert not assessment.easy_by_linearity


class TestAssessBenchmark:
    def test_on_handmade_task(self, handmade_task):
        assessment = assess_benchmark(handmade_task, max_complexity_instances=200)
        # The handmade task is trivially separable: easy by linearity.
        assert assessment.easy_by_linearity
        assert not assessment.is_challenging

    def test_complexity_profile_missing_measure_raises(self):
        with pytest.raises(ValueError):
            ComplexityProfile(scores={"f1": 0.5})
