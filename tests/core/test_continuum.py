"""Tests for the difficulty-continuum extension."""

from __future__ import annotations

import pytest

from repro.core.continuum import ContinuumPoint, difficulty_continuum


class TestDifficultyContinuum:
    @pytest.fixture(scope="class")
    def points(self, small_sources):
        return difficulty_continuum(
            small_sources,
            recall_ladder=(0.5, 0.8),
            label_prefix="cont",
            seed=0,
            max_complexity_instances=400,
        )

    def test_one_point_per_rung(self, points):
        assert len(points) == 2
        assert [point.recall_target for point in points] == [0.5, 0.8]

    def test_labels_carry_rung(self, points):
        assert points[0].benchmark.label == "cont@pc0.50"
        assert points[1].benchmark.label == "cont@pc0.80"

    def test_recall_targets_met(self, points):
        for point in points:
            assert point.benchmark.blocking.pair_completeness >= (
                point.recall_target - 1e-9
            )

    def test_candidates_grow_with_recall(self, points):
        assert (
            points[1].benchmark.blocking.result.n_candidates
            >= points[0].benchmark.blocking.result.n_candidates
        )

    def test_difficulty_score_bounded(self, points):
        for point in points:
            assert 0.0 <= point.difficulty_score <= 1.0

    def test_assessments_attached(self, points):
        for point in points:
            assert point.assessment.task_name == point.benchmark.label

    def test_invalid_ladders(self, small_sources):
        with pytest.raises(ValueError):
            difficulty_continuum(small_sources, recall_ladder=())
        with pytest.raises(ValueError):
            difficulty_continuum(small_sources, recall_ladder=(0.9, 0.5))
        with pytest.raises(ValueError):
            difficulty_continuum(small_sources, recall_ladder=(0.5, 0.5))
        with pytest.raises(ValueError):
            difficulty_continuum(small_sources, recall_ladder=(0.0, 0.5))

    def test_point_is_frozen(self, points):
        with pytest.raises(AttributeError):
            points[0].recall_target = 0.1  # type: ignore[misc]
