"""Tests for the schema-aware linearity variant."""

from __future__ import annotations

import pytest

from repro.core.linearity import degree_of_linearity, schema_aware_linearity


class TestSchemaAwareLinearity:
    def test_one_result_per_attribute(self, handmade_task):
        results = schema_aware_linearity(handmade_task, "cosine")
        assert set(results) == set(handmade_task.attributes)

    def test_result_labels(self, handmade_task):
        results = schema_aware_linearity(handmade_task, "jaccard")
        assert results["name"].similarity == "jaccard:name"

    def test_bounds(self, handmade_task):
        for result in schema_aware_linearity(handmade_task).values():
            assert 0.0 <= result.max_f1 <= 1.0
            assert 0.0 <= result.best_threshold <= 1.0

    def test_unknown_similarity(self, handmade_task):
        with pytest.raises(KeyError):
            schema_aware_linearity(handmade_task, "dice")

    def test_agrees_with_agnostic_on_easy_task(self, handmade_task):
        """The paper's observation: both settings reach the same verdict."""
        agnostic = degree_of_linearity(handmade_task, "cosine").max_f1
        aware = max(
            result.max_f1
            for result in schema_aware_linearity(handmade_task, "cosine").values()
        )
        assert (agnostic > 0.8) == (aware > 0.8)
