"""Tests for the 17 complexity measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complexity import (
    MEASURE_GROUPS,
    MEASURE_NAMES,
    c1_entropy,
    c2_imbalance,
    complexity_profile,
    f1_fisher,
    f2_overlap_volume,
    f3_feature_efficiency,
    gower_distance_matrix,
    l2_error_rate,
    lsc_local_set_cardinality,
    n1_borderline_fraction,
    n2_intra_extra_ratio,
    n3_nearest_neighbor_error,
    n4_nearest_neighbor_nonlinearity,
    prepare_inputs,
    t1_hypersphere_fraction,
    pair_feature_matrix,
)
from repro.core.complexity.base import ComplexityInputs
from repro.core.complexity.profile import compute_profile


def make_inputs(features, labels) -> ComplexityInputs:
    return prepare_inputs(np.asarray(features, float), np.asarray(labels))


@pytest.fixture(scope="module")
def separated() -> ComplexityInputs:
    """Two tight, well separated blobs (an easy problem)."""
    rng = np.random.default_rng(0)
    low = rng.normal(0.1, 0.02, size=(60, 2))
    high = rng.normal(0.9, 0.02, size=(40, 2))
    return make_inputs(
        np.vstack((low, high)),
        np.concatenate((np.zeros(60, int), np.ones(40, int))),
    )


@pytest.fixture(scope="module")
def interleaved() -> ComplexityInputs:
    """Heavily overlapping classes (a hard problem)."""
    rng = np.random.default_rng(1)
    features = rng.uniform(0, 1, size=(100, 2))
    labels = rng.integers(0, 2, size=100)
    # Ensure both classes exist.
    labels[0], labels[1] = 0, 1
    return make_inputs(features, labels)


class TestGower:
    def test_identical_points_zero(self):
        matrix = gower_distance_matrix(np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert matrix[0, 1] == 0.0

    def test_extremes_are_one(self):
        matrix = gower_distance_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_constant_feature_ignored(self):
        matrix = gower_distance_matrix(np.array([[0.0, 5.0], [1.0, 5.0]]))
        assert matrix[0, 1] == pytest.approx(0.5)

    @given(
        st.lists(
            st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
            min_size=2,
            max_size=15,
        )
    )
    def test_symmetric_and_bounded(self, rows):
        matrix = gower_distance_matrix(np.asarray(rows))
        assert np.allclose(matrix, matrix.T)
        assert np.all((matrix >= 0.0) & (matrix <= 1.0 + 1e-9))


class TestEasyVsHard:
    """Every measure should score the separated problem at most as complex
    as the interleaved one (most should be far lower)."""

    @pytest.mark.parametrize(
        "measure",
        [
            f1_fisher,
            f2_overlap_volume,
            f3_feature_efficiency,
            l2_error_rate,
            n1_borderline_fraction,
            n2_intra_extra_ratio,
            n3_nearest_neighbor_error,
            n4_nearest_neighbor_nonlinearity,
            t1_hypersphere_fraction,
            lsc_local_set_cardinality,
        ],
    )
    def test_ordering(self, measure, separated, interleaved):
        assert measure(separated) <= measure(interleaved) + 1e-9

    def test_separated_is_nearly_zero(self, separated):
        assert f1_fisher(separated) < 0.1
        assert n3_nearest_neighbor_error(separated) == 0.0
        assert l2_error_rate(separated) == 0.0
        assert f2_overlap_volume(separated) == 0.0


class TestClassBalance:
    def test_balanced_scores_zero(self):
        inputs = make_inputs(np.random.default_rng(0).normal(size=(40, 2)),
                             [0, 1] * 20)
        assert c1_entropy(inputs) == pytest.approx(0.0, abs=1e-9)
        assert c2_imbalance(inputs) == pytest.approx(0.0, abs=1e-9)

    def test_imbalanced_scores_high(self):
        labels = np.zeros(100, int)
        labels[:3] = 1
        inputs = make_inputs(np.random.default_rng(0).normal(size=(100, 2)), labels)
        assert c1_entropy(inputs) > 0.5
        assert c2_imbalance(inputs) > 0.8


class TestPrepareInputs:
    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            prepare_inputs(np.zeros((10, 2)), np.zeros(10, int))

    def test_subsampling_caps_size(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(500, 2))
        labels = (rng.random(500) < 0.2).astype(int)
        inputs = prepare_inputs(features, labels, max_instances=100, seed=0)
        assert inputs.n_samples <= 110
        assert len(np.unique(inputs.labels)) == 2

    def test_subsampling_preserves_imbalance(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(1000, 2))
        labels = (rng.random(1000) < 0.1).astype(int)
        inputs = prepare_inputs(features, labels, max_instances=200, seed=0)
        original = labels.mean()
        assert inputs.labels.mean() == pytest.approx(original, abs=0.05)

    def test_no_subsampling_when_under_cap(self):
        features = np.random.default_rng(4).normal(size=(50, 2))
        labels = np.array([0, 1] * 25)
        inputs = prepare_inputs(features, labels, max_instances=100)
        assert inputs.n_samples == 50


class TestProfile:
    def test_all_measures_present_and_bounded(self, separated):
        profile = compute_profile(separated)
        assert set(profile.scores) == set(MEASURE_NAMES)
        for name in MEASURE_NAMES:
            assert 0.0 <= profile[name] <= 1.0, name

    def test_group_means(self, separated):
        profile = compute_profile(separated)
        groups = profile.group_means()
        assert set(groups) == set(MEASURE_GROUPS)

    def test_easy_flag(self, separated, interleaved):
        assert compute_profile(separated).is_easy()
        assert not compute_profile(interleaved).is_easy()

    def test_on_task(self, handmade_task):
        profile = complexity_profile(handmade_task, max_instances=200)
        assert profile.is_easy()

    def test_pair_feature_matrix_shape(self, handmade_task):
        pairs = handmade_task.all_pairs()
        features = pair_feature_matrix(pairs)
        assert features.shape == (len(pairs), 2)
        assert np.all((features >= 0.0) & (features <= 1.0))


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10000))
    def test_profile_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(size=(60, 2))
        labels = np.array([0, 1] * 30)
        first = compute_profile(make_inputs(features, labels))
        second = compute_profile(make_inputs(features, labels))
        assert first.scores == second.scores


class TestMeasureBoundsProperty:
    """Every measure stays in [0, 1] on arbitrary two-class data."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 100000),
        st.integers(10, 60),
        st.floats(0.1, 0.9),
    )
    def test_all_measures_bounded(self, seed, n_samples, positive_rate):
        rng = np.random.default_rng(seed)
        features = rng.uniform(size=(n_samples, 2))
        labels = (rng.random(n_samples) < positive_rate).astype(int)
        labels[0], labels[1] = 0, 1  # both classes present
        profile = compute_profile(make_inputs(features, labels))
        for name, value in profile.scores.items():
            assert 0.0 <= value <= 1.0, (name, value)
        assert 0.0 <= profile.mean <= 1.0


class TestSchemaAwareComplexity:
    def test_feature_matrix_dimensions(self, handmade_task):
        from repro.core.complexity.base import schema_aware_feature_matrix

        pairs = handmade_task.all_pairs()
        features = schema_aware_feature_matrix(pairs, handmade_task.attributes)
        assert features.shape == (len(pairs), 2 * len(handmade_task.attributes))
        assert np.all((features >= 0.0) & (features <= 1.0))

    def test_empty_attributes_raise(self, handmade_task):
        from repro.core.complexity.base import schema_aware_feature_matrix

        with pytest.raises(ValueError):
            schema_aware_feature_matrix(handmade_task.all_pairs(), ())

    def test_profile_variants_agree_on_easy_task(self, handmade_task):
        """Section III's claim: schema-aware shows no significant difference."""
        agnostic = complexity_profile(handmade_task, max_instances=200)
        aware = complexity_profile(
            handmade_task, max_instances=200, schema_aware=True
        )
        assert agnostic.is_easy() == aware.is_easy()
