"""Tests for the Section VI benchmark-construction methodology."""

from __future__ import annotations

import pytest

from repro.core.methodology import candidate_pairs_to_labeled, create_benchmark


class TestCandidateLabeling:
    def test_labels_against_ground_truth(self, small_sources):
        some_matches = sorted(small_sources.matches)[:5]
        right_ids = small_sources.right.ids()
        non_matches = [("a0", right_ids[-1]), ("a1", right_ids[-2])]
        assert not set(non_matches) & small_sources.matches
        labeled = candidate_pairs_to_labeled(
            small_sources, frozenset(some_matches + non_matches)
        )
        assert labeled.positive_count == 5
        assert labeled.negative_count == 2

    def test_deterministic_order(self, small_sources):
        candidates = frozenset(sorted(small_sources.matches)[:10])
        first = candidate_pairs_to_labeled(small_sources, candidates)
        second = candidate_pairs_to_labeled(small_sources, candidates)
        assert [p.key for p, __ in first] == [p.key for p, __ in second]


class TestCreateBenchmark:
    @pytest.fixture(scope="class")
    def built(self, small_sources):
        return create_benchmark(
            small_sources, label="TestBench", recall_target=0.85,
            k_ladder=(1, 2, 5, 10), seed=0,
        )

    def test_label_and_sources(self, built, small_sources):
        assert built.label == "TestBench"
        assert built.task.name == "TestBench"
        assert built.sources is small_sources

    def test_recall_target_met(self, built):
        assert built.blocking.pair_completeness >= 0.85

    def test_task_covers_all_candidates(self, built):
        assert len(built.task.all_pairs()) == (
            built.blocking.result.n_candidates
        )

    def test_splits_ratio(self, built):
        total = len(built.task.all_pairs())
        assert len(built.task.training) == pytest.approx(0.6 * total, rel=0.05)
        assert len(built.task.testing) == pytest.approx(0.2 * total, rel=0.1)

    def test_imbalance_equals_pq(self, built):
        assert built.imbalance_ratio == pytest.approx(
            built.blocking.pairs_quality, abs=1e-9
        )

    def test_metadata_provenance(self, built):
        metadata = built.task.metadata
        assert "blocking_config" in metadata
        assert metadata["pair_completeness"] == built.blocking.pair_completeness
        assert metadata["vocabulary"] is built.sources.vocabulary

    def test_deterministic(self, small_sources):
        first = create_benchmark(
            small_sources, label="X", recall_target=0.85, k_ladder=(1, 2, 5), seed=3
        )
        second = create_benchmark(
            small_sources, label="X", recall_target=0.85, k_ladder=(1, 2, 5), seed=3
        )
        assert first.task.training.keys() == second.task.training.keys()
        assert first.blocking.config == second.blocking.config
