"""Tests for the entity-leakage analysis and unseen-entity re-split."""

from __future__ import annotations

import pytest

from repro.core.leakage import entity_leakage, unseen_entity_split


class TestEntityLeakage:
    def test_report_on_generated_task(self, small_task):
        report = entity_leakage(small_task)
        assert report.testing_pairs == len(small_task.testing)
        assert 0.0 <= report.leakage_rate <= 1.0
        assert report.seen_left_records > 0

    def test_random_splits_leak(self, small_task):
        """The headline of [13]: random pair splits share many entities."""
        report = entity_leakage(small_task)
        assert report.leakage_rate > 0.3

    def test_unseen_split_has_zero_leakage(self, small_task):
        resplit = unseen_entity_split(small_task, seed=1)
        report = entity_leakage(resplit)
        assert report.testing_pairs_with_seen_record == 0
        assert report.leakage_rate == 0.0

    def test_unseen_split_loses_pairs(self, small_task):
        resplit = unseen_entity_split(small_task, seed=1)
        assert len(resplit.all_pairs()) < len(small_task.all_pairs())

    def test_unseen_split_keeps_both_classes(self, small_task):
        resplit = unseen_entity_split(small_task, seed=1)
        for split in (resplit.training, resplit.validation, resplit.testing):
            assert split.positive_count > 0
            assert split.negative_count > 0

    def test_unseen_split_name_and_metadata(self, small_task):
        resplit = unseen_entity_split(small_task, seed=1)
        assert resplit.name == "small_task-unseen"
        assert resplit.metadata == small_task.metadata

    def test_deterministic(self, small_task):
        first = unseen_entity_split(small_task, seed=2)
        second = unseen_entity_split(small_task, seed=2)
        assert first.training.keys() == second.training.keys()

    def test_invalid_ratios(self, small_task):
        with pytest.raises(ValueError):
            unseen_entity_split(small_task, ratios=(1, 0, 1))

    def test_tiny_task_may_raise(self, handmade_task):
        # The handmade task has 12 positives spread over 24 records; many
        # seeds cannot keep both classes in all three buckets. Either the
        # split succeeds with both classes everywhere (checked above) or it
        # raises the documented ValueError.
        try:
            resplit = unseen_entity_split(handmade_task, seed=0)
        except ValueError as error:
            assert "without" in str(error)
        else:
            assert entity_leakage(resplit).leakage_rate == 0.0
