"""CLI-level observability: --metrics/--profile/trace never change output."""

from __future__ import annotations

import pytest

from repro import obs as obs_module
from repro.experiments.cli import main
from repro.obs import Observability


@pytest.fixture(autouse=True)
def fresh_observability():
    """Each CLI invocation gets its own active instance (no bleed-through)."""
    previous = obs_module.activate(Observability())
    yield
    obs_module.activate(previous)


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestMetricsFlagIsPureAddition:
    def test_table3_bytes_unchanged_by_metrics(self, capsys, tmp_path):
        plain = run_cli(capsys, "table3", "--cache", str(tmp_path / "a"))
        obs_module.activate(Observability())
        with_metrics = run_cli(
            capsys, "table3", "--cache", str(tmp_path / "b"), "--metrics"
        )
        assert with_metrics.startswith(plain)
        appended = with_metrics[len(plain):]
        assert "Metrics" in appended
        assert "blocking" not in plain  # metric names never leak into tables

    def test_metrics_table_lists_counters(self, capsys, tmp_path):
        out = run_cli(
            capsys, "fig2", "--cache", str(tmp_path), "--metrics"
        )
        assert "Metrics" in out
        assert "counter" in out or "timer" in out


class TestTraceCommand:
    def test_trace_last_renders_one_sweep_tree(self, capsys, tmp_path):
        run_cli(
            capsys, "audit", "Ds5", "--scale", "0.3", "--cache", str(tmp_path)
        )
        out = run_cli(capsys, "trace", "--last", "--cache", str(tmp_path))
        assert "Trace" in out
        assert "sweep dataset=Ds5" in out
        assert "matcher" in out
        # Children indent under their sweep parent.
        assert "\n  matcher" in out

    def test_trace_without_runs_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "--last", "--cache", str(tmp_path)]) == 1
        assert "no trace runs" in capsys.readouterr().out

    def test_trace_requires_a_cache_dir(self, capsys):
        assert main(["trace", "--cache", ""]) == 2
        assert "requires a cache" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_appends_hottest_units(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "audit", "Ds5", "--scale", "0.3",
            "--cache", str(tmp_path),
            "--profile",
        )
        assert "Hottest units" in out
        assert not obs_module.active().profiler.running
