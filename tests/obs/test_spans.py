"""Unit tests for the trace-span half of :mod:`repro.obs`."""

from __future__ import annotations

import json

import pytest

from repro.obs import Observability, new_run_id
from repro.obs.spans import Span, TraceCollector, read_trace


class TestSpanNesting:
    def test_nested_spans_record_parentage(self):
        collector = TraceCollector()
        with collector.span("sweep", dataset="Ds4") as outer:
            with collector.span("matcher", matcher="DITTO (15)") as inner:
                pass
        spans = collector.spans()
        assert [span.name for span in spans] == ["matcher", "sweep"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        collector = TraceCollector()
        with collector.span("sweep") as outer:
            with collector.span("matcher", matcher="a") as first:
                pass
            with collector.span("matcher", matcher="b") as second:
                pass
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id

    def test_exception_marks_span_failed_and_propagates(self):
        collector = TraceCollector()
        with pytest.raises(ValueError, match="boom"):
            with collector.span("sweep"):
                raise ValueError("boom")
        (span,) = collector.spans()
        assert span.status == "failed"
        assert "ValueError" in span.error

    def test_mark_degraded_does_not_override_failed(self):
        span = Span(
            span_id="x", parent_id=None, name="s", attributes={}, start_time=0.0
        )
        span.mark_degraded()
        assert span.status == "degraded"
        span.set_status("failed")
        span.mark_degraded()
        assert span.status == "failed"

    def test_timings_are_recorded(self):
        collector = TraceCollector()
        with collector.span("unit"):
            sum(range(1000))
        (span,) = collector.spans()
        assert span.wall_seconds >= 0.0
        assert span.cpu_seconds >= 0.0

    def test_disabled_collector_records_nothing(self):
        collector = TraceCollector(enabled=False)
        with collector.span("sweep", dataset="Ds4") as span:
            pass
        assert collector.spans() == []
        assert span.span_id == "disabled"


class TestTraceFile:
    def test_spans_append_to_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        collector = TraceCollector()
        collector.attach_file(path, run_id="run1")
        with collector.span("sweep", dataset="Ds4"):
            pass
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["run"] == "run1"
        assert entry["name"] == "sweep"
        assert entry["attrs"] == {"dataset": "Ds4"}

    def test_read_trace_groups_by_run_and_skips_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        collector = TraceCollector()
        for run in ("run1", "run2"):
            collector.attach_file(path, run_id=run)
            with collector.span("sweep", dataset="Ds4"):
                pass
        with path.open("a") as handle:
            handle.write('{"truncated": ')  # crash mid-append
        runs = read_trace(path)
        assert sorted(runs) == ["run1", "run2"]
        assert [span.name for span in runs["run1"]] == ["sweep"]

    def test_roundtrip_preserves_identity(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        collector = TraceCollector()
        collector.attach_file(path, run_id=new_run_id())
        with collector.span("sweep", dataset="Ds4"):
            pass
        (original,) = collector.spans()
        ((_, [reloaded]),) = read_trace(path).items()
        assert reloaded.identity() == original.identity()
        assert reloaded.span_id == original.span_id


class TestWorkerCapture:
    def test_begin_capture_drops_spans_and_detaches_file(self, tmp_path):
        collector = TraceCollector()
        collector.attach_file(tmp_path / "trace.jsonl", run_id="r")
        with collector.span("before"):
            pass
        collector.begin_capture()
        assert collector.spans() == []
        assert collector.trace_path is None

    def test_ingest_reparents_orphans_under_the_active_span(self):
        worker = TraceCollector()
        with worker.span("matcher", matcher="a"):
            pass
        exported = worker.export()
        # Fake the fork: the worker span's parent does not exist here.
        for entry in exported:
            entry["parent"] = "dead-beef"

        parent = TraceCollector()
        with parent.span("sweep") as sweep_span:
            parent.ingest(exported)
        matcher = [s for s in parent.spans() if s.name == "matcher"]
        assert [s.parent_id for s in matcher] == [sweep_span.span_id]

    def test_ingest_keeps_known_parents(self):
        worker = TraceCollector()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = TraceCollector()
        parent.ingest(worker.export())
        by_name = {span.name: span for span in parent.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id


class TestObservabilityFacade:
    def test_worker_capture_roundtrip(self):
        worker = Observability()
        worker.begin_worker_capture()
        with worker.span("matcher", matcher="a"):
            worker.inc("matcher.evaluations")
        exported = worker.export_worker_capture()

        parent = Observability()
        parent.ingest_worker_capture(exported)
        assert [s.name for s in parent.trace.spans()] == ["matcher"]
        assert parent.metrics.counter("matcher.evaluations") == 1.0

    def test_disabled_export_is_none_and_ingest_tolerates_it(self):
        worker = Observability(enabled=False)
        assert worker.export_worker_capture() is None
        Observability().ingest_worker_capture(None)  # no-op, no raise
