"""Observability acceptance: identical traces/metrics for any worker count.

Mirrors the :mod:`tests.experiments.test_parallel` harness (same scale,
same datasets): a ``--workers 2`` run must marshal every worker span and
metric delta back to the parent, producing the same span *set* (ids
aside) and the same counters as the sequential run.
"""

from __future__ import annotations

import pytest

from repro import obs as obs_module
from repro.obs import Observability
from repro.experiments.runner import ExperimentRunner, RunnerConfig
from repro.runtime import faults

SCALE = 0.3
DATASET = "Ds5"
DATASETS = ("Ds5", "Ds7")
FAILING_MATCHER = "DITTO (15)"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def observed_run(workers: int, datasets=DATASETS, cache_dir=None) -> Observability:
    """One sweep_all under a fresh active Observability; returns it."""
    handle = Observability()
    previous = obs_module.activate(handle)
    try:
        runner = ExperimentRunner(
            config=RunnerConfig(scale=SCALE, workers=workers, cache_dir=cache_dir)
        )
        runner.sweep_all(datasets)
    finally:
        obs_module.activate(previous)
    return handle


def span_identities(handle: Observability) -> list[tuple]:
    return sorted(span.identity() for span in handle.trace.spans())


class TestSpanParity:
    def test_same_span_set_for_one_and_two_workers(self):
        sequential = observed_run(workers=1)
        parallel = observed_run(workers=2)
        assert span_identities(parallel) == span_identities(sequential)

    def test_one_sweep_span_per_dataset_with_matcher_children(self):
        handle = observed_run(workers=2)
        spans = handle.trace.spans()
        sweeps = [span for span in spans if span.name == "sweep"]
        assert sorted(span.attributes["dataset"] for span in sweeps) == sorted(
            DATASETS
        )
        sweep_ids = {span.span_id for span in sweeps}
        matchers = [span for span in spans if span.name == "matcher"]
        assert matchers, "expected matcher child spans"
        assert all(span.parent_id in sweep_ids for span in matchers)

    def test_single_dataset_fanout_keeps_sweep_parentage(self):
        # workers=2 on ONE dataset fans the matcher units (not the sweeps);
        # worker matcher spans must still attach under the parent's sweep
        # span via the fork-inherited contextvar stack.
        handle = Observability()
        previous = obs_module.activate(handle)
        try:
            runner = ExperimentRunner(config=RunnerConfig(scale=SCALE, workers=2))
            runner.matcher_results(DATASET)
        finally:
            obs_module.activate(previous)
        spans = handle.trace.spans()
        (sweep,) = [span for span in spans if span.name == "sweep"]
        matchers = [span for span in spans if span.name == "matcher"]
        assert matchers
        assert all(span.parent_id == sweep.span_id for span in matchers)


class TestMetricsParity:
    def test_same_counters_for_one_and_two_workers(self):
        sequential = observed_run(workers=1).snapshot()
        parallel = observed_run(workers=2).snapshot()
        assert parallel["counters"] == sequential["counters"]
        # Timer durations differ run to run, but the event counts do not.
        assert {
            name: stat["count"] for name, stat in parallel["timers"].items()
        } == {
            name: stat["count"] for name, stat in sequential["timers"].items()
        }


class TestDegradedAndCached:
    def test_injected_failure_shows_up_in_worker_spans(self):
        faults.arm(f"matcher:{FAILING_MATCHER}", "error")
        handle = observed_run(workers=2, datasets=(DATASET,))
        failed = [
            span
            for span in handle.trace.spans()
            if span.name == "matcher" and span.status == "failed"
        ]
        assert [span.attributes["matcher"] for span in failed] == [
            FAILING_MATCHER
        ]
        sweeps = [
            span for span in handle.trace.spans() if span.name == "sweep"
        ]
        assert [span.status for span in sweeps] == ["degraded"]

    def test_cache_hit_resume_emits_parent_side_sweep_spans(self, tmp_path):
        observed_run(workers=1, datasets=(DATASET,), cache_dir=tmp_path)
        resumed = observed_run(workers=2, datasets=(DATASET,), cache_dir=tmp_path)
        spans = resumed.trace.spans()
        (sweep,) = [span for span in spans if span.name == "sweep"]
        assert sweep.attributes == {"dataset": DATASET, "cache": "hit"}
        assert [span for span in spans if span.name == "matcher"] == []
        assert resumed.metrics.counter("cache.hit") == 1.0
        assert resumed.metrics.counter("journal.skip") == 1.0


class TestTraceFileSingleWriter:
    def test_parallel_run_writes_every_span_once(self, tmp_path):
        from repro.obs import TRACE_FILE_NAME, read_trace

        handle = observed_run(workers=2, cache_dir=tmp_path)
        runs = read_trace(tmp_path / TRACE_FILE_NAME)
        (file_spans,) = runs.values()
        assert sorted(s.identity() for s in file_spans) == span_identities(
            handle
        )
