"""Tests for the probe protocol and the sampling profiler."""

from __future__ import annotations

import time

from repro.obs import Observability, PhaseAccumulator, Probe
from repro.obs.probe import SamplingProfiler
from repro.obs.spans import TraceCollector


class TestProbes:
    def test_phase_accumulator_satisfies_the_protocol(self):
        assert isinstance(PhaseAccumulator(), Probe)

    def test_phase_notifies_probes_and_feeds_the_timer(self):
        handle = Observability()
        accumulator = PhaseAccumulator()
        handle.add_probe(accumulator)
        handle.phase("DITTO (15)", "fit", 0.5)
        handle.phase("DITTO (15)", "fit", 0.25)
        handle.phase("DITTO (15)", "predict", 0.1)
        assert accumulator.hottest(1) == [("DITTO (15)", "fit", 2, 0.75)]
        assert handle.snapshot()["timers"]["phase.fit"]["count"] == 2

    def test_remove_probe_stops_notifications(self):
        handle = Observability()
        accumulator = PhaseAccumulator()
        handle.add_probe(accumulator)
        handle.remove_probe(accumulator)
        handle.phase("u", "fit", 1.0)
        assert accumulator.hottest() == []

    def test_disabled_observability_skips_probes(self):
        handle = Observability(enabled=False)
        accumulator = PhaseAccumulator()
        handle.add_probe(accumulator)
        handle.phase("u", "fit", 1.0)
        assert accumulator.hottest() == []


class TestSamplingProfiler:
    def test_profile_block_attributes_samples_to_the_leaf_span(self):
        collector = TraceCollector()
        profiler = SamplingProfiler(collector, interval=0.001)
        with profiler.profile():
            with collector.span("sweep", dataset="Ds4"):
                with collector.span("matcher", matcher="slow"):
                    time.sleep(0.05)
        assert not profiler.running
        summary = profiler.summary(5)
        assert summary, "expected at least one sample in 50ms at 1ms interval"
        labels = [label for label, _, _ in summary]
        assert any("matcher" in label and "slow" in label for label in labels)
        # Samples go to the leaf, not its enclosing sweep.
        assert not any(label.startswith("sweep") for label in labels)

    def test_summary_scales_samples_to_seconds(self):
        collector = TraceCollector()
        profiler = SamplingProfiler(collector, interval=0.01)
        profiler.samples["unit"] = 7
        assert profiler.summary(1) == [("unit", 7, 0.07)]

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(TraceCollector(), interval=0.001)
        profiler.start()
        profiler.start()
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running
