"""Unit tests for the metrics registry and its fork-merge semantics."""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry, TimerStat, is_metrics_snapshot


class TestInstruments:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("cache.hit")
        registry.inc("cache.hit")
        registry.inc("cache.miss", 3)
        assert registry.counter("cache.hit") == 2.0
        assert registry.counter("cache.miss") == 3.0
        assert registry.counter("never.touched") == 0.0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("blocking.pairs_per_sec", 10.0)
        registry.gauge("blocking.pairs_per_sec", 20.0)
        assert registry.snapshot()["gauges"]["blocking.pairs_per_sec"] == 20.0

    def test_timer_histogram_summary(self):
        registry = MetricsRegistry()
        for seconds in (0.1, 0.3, 0.2):
            registry.observe("fit", seconds)
        stat = registry.snapshot()["timers"]["fit"]
        assert stat["count"] == 3
        assert abs(stat["total"] - 0.6) < 1e-9
        assert abs(stat["mean"] - 0.2) < 1e-9
        assert abs(stat["min"] - 0.1) < 1e-9
        assert abs(stat["max"] - 0.3) < 1e-9

    def test_time_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.time("unit"):
            pass
        assert registry.snapshot()["timers"]["unit"]["count"] == 1

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 1.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        registry.observe("beta", 0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "timers"]
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        json.dumps(snapshot)  # must not raise

    def test_same_work_gives_identical_snapshots(self):
        def work(registry):
            registry.inc("cache.hit", 2)
            registry.gauge("g", 1.5)
            registry.observe("t", 0.25)

        first, second = MetricsRegistry(), MetricsRegistry()
        work(first)
        work(second)
        assert first.snapshot() == second.snapshot()

    def test_is_metrics_snapshot_disambiguates_figures(self):
        registry = MetricsRegistry()
        assert is_metrics_snapshot(registry.snapshot())
        figure = {"Ds1": {"NLB": 0.2, "LBM": 0.1}}  # a FigureSeries
        assert not is_metrics_snapshot(figure)
        assert not is_metrics_snapshot([])
        assert not is_metrics_snapshot("counters gauges timers")


class TestMerge:
    def test_merge_adds_counters_and_timers(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("n")
        worker.inc("n", 2)
        worker.observe("t", 0.5)
        worker.observe("t", 1.5)
        parent.observe("t", 1.0)
        parent.merge(worker.export())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["n"] == 3.0
        assert snapshot["timers"]["t"]["count"] == 3
        assert snapshot["timers"]["t"]["min"] == 0.5
        assert snapshot["timers"]["t"]["max"] == 1.5

    def test_merge_gauges_last_write_wins(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("g", 1.0)
        worker.gauge("g", 2.0)
        parent.merge(worker.export())
        assert parent.snapshot()["gauges"]["g"] == 2.0

    def test_merge_into_empty_timer(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.observe("t", 0.25)
        parent.merge(worker.export())
        assert parent.snapshot()["timers"]["t"]["count"] == 1

    def test_empty_timerstat_merge_is_noop(self):
        stat = TimerStat()
        stat.merge(TimerStat())
        assert stat.count == 0
        assert stat.to_dict()["min"] == 0.0
