"""Tests for the from-scratch classifiers (logistic, SVM, tree, forest, kNN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    DecisionTree,
    KNeighborsClassifier,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    f1_score,
)


@pytest.fixture(scope="module")
def linear_data():
    """A linearly separable 2-d problem."""
    rng = np.random.default_rng(0)
    features = rng.normal(size=(300, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


@pytest.fixture(scope="module")
def xor_data():
    """The XOR problem: not linearly separable."""
    rng = np.random.default_rng(1)
    features = rng.uniform(-1, 1, size=(400, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
    return features, labels


@pytest.fixture(scope="module")
def imbalanced_data():
    """95/5 imbalance, separable."""
    rng = np.random.default_rng(2)
    negatives = rng.normal(loc=-1.0, scale=0.4, size=(380, 2))
    positives = rng.normal(loc=1.0, scale=0.4, size=(20, 2))
    features = np.vstack((negatives, positives))
    labels = np.concatenate((np.zeros(380, int), np.ones(20, int)))
    return features, labels


LINEAR_MODELS = [
    lambda: LogisticRegression(),
    lambda: LinearSVM(),
]
ALL_MODELS = LINEAR_MODELS + [
    lambda: DecisionTree(),
    lambda: RandomForest(n_trees=15),
    lambda: KNeighborsClassifier(k=3),
]


class TestOnLinearData:
    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_high_f1(self, factory, linear_data):
        features, labels = linear_data
        model = factory().fit(features, labels)
        assert f1_score(labels, model.predict(features)) > 0.9


class TestOnXor:
    @pytest.mark.parametrize(
        "factory", [lambda: DecisionTree(), lambda: RandomForest(n_trees=15),
                    lambda: KNeighborsClassifier(k=3)]
    )
    def test_non_linear_models_solve_xor(self, factory, xor_data):
        features, labels = xor_data
        model = factory().fit(features, labels)
        assert f1_score(labels, model.predict(features)) > 0.9

    @pytest.mark.parametrize("factory", LINEAR_MODELS)
    def test_linear_models_fail_xor(self, factory, xor_data):
        features, labels = xor_data
        model = factory().fit(features, labels)
        assert f1_score(labels, model.predict(features)) < 0.8


class TestImbalance:
    @pytest.mark.parametrize("factory", LINEAR_MODELS)
    def test_balanced_weighting_finds_minority(self, factory, imbalanced_data):
        features, labels = imbalanced_data
        model = factory().fit(features, labels)
        predictions = model.predict(features)
        assert f1_score(labels, predictions) > 0.75


class TestValidation:
    def test_unfitted_predict_raises(self):
        for model in (
            LogisticRegression(),
            LinearSVM(),
            DecisionTree(),
            RandomForest(),
            KNeighborsClassifier(),
        ):
            with pytest.raises(RuntimeError):
                model.predict(np.zeros((2, 2)))

    def test_bad_labels_raise(self):
        features = np.zeros((4, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(features, np.array([0, 1, 2, 1]))

    def test_nan_features_raise(self):
        features = np.full((4, 2), np.nan)
        with pytest.raises(ValueError):
            DecisionTree().fit(features, np.array([0, 1, 0, 1]))

    def test_feature_count_mismatch_raises(self, linear_data):
        features, labels = linear_data
        model = LogisticRegression().fit(features, labels)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)
        with pytest.raises(ValueError):
            LinearSVM(regularization=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(epochs=0)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [lambda: LinearSVM(seed=3), lambda: DecisionTree(seed=3),
         lambda: RandomForest(n_trees=8, seed=3)],
    )
    def test_same_seed_same_predictions(self, factory, linear_data):
        features, labels = linear_data
        first = factory().fit(features, labels).predict(features)
        second = factory().fit(features, labels).predict(features)
        np.testing.assert_array_equal(first, second)


class TestTreeSpecifics:
    def test_single_class_gives_leaf(self):
        features = np.random.default_rng(0).normal(size=(10, 2))
        labels = np.zeros(10, int)
        tree = DecisionTree().fit(features, labels)
        assert tree.depth() == 0
        assert np.all(tree.predict(features) == 0)

    def test_max_depth_respected(self, xor_data):
        features, labels = xor_data
        tree = DecisionTree(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_predict_proba_in_bounds(self, xor_data):
        features, labels = xor_data
        tree = DecisionTree().fit(features, labels)
        probabilities = tree.predict_proba(features)
        assert np.all((0.0 <= probabilities) & (probabilities <= 1.0))


class TestKnnSpecifics:
    def test_leave_one_out_error_zero_on_separated(self):
        features = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = np.array([0, 0, 1, 1])
        knn = KNeighborsClassifier(k=1).fit(features, labels)
        assert knn.leave_one_out_error() == 0.0

    def test_leave_one_out_error_one_on_interleaved(self):
        # Nearest neighbour of every point belongs to the other class.
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = np.array([0, 1, 0, 1])
        knn = KNeighborsClassifier(k=1).fit(features, labels)
        assert knn.leave_one_out_error() == 1.0
