"""Tests for the MLP (highway network) and the Gaussian mixture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import GaussianMixture, MLPClassifier, f1_score


@pytest.fixture(scope="module")
def xor_data():
    rng = np.random.default_rng(1)
    features = rng.uniform(-1, 1, size=(500, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
    return features, labels


class TestMlp:
    def test_solves_xor(self, xor_data):
        features, labels = xor_data
        model = MLPClassifier(hidden_size=24, epochs=60, seed=0)
        model.fit(features, labels)
        assert f1_score(labels, model.predict(features)) > 0.9

    def test_validation_model_selection(self, xor_data):
        features, labels = xor_data
        split = 350
        model = MLPClassifier(hidden_size=24, epochs=25, seed=0)
        model.fit(
            features[:split],
            labels[:split],
            validation_features=features[split:],
            validation_labels=labels[split:],
        )
        assert len(model.validation_f1_history_) == 25
        # The kept parameters reproduce the best recorded validation F1.
        best = max(model.validation_f1_history_)
        achieved = f1_score(labels[split:], model.predict(features[split:]))
        assert achieved == pytest.approx(best, abs=1e-9)

    def test_deterministic(self, xor_data):
        features, labels = xor_data
        first = MLPClassifier(epochs=5, seed=9).fit(features, labels)
        second = MLPClassifier(epochs=5, seed=9).fit(features, labels)
        np.testing.assert_allclose(
            first.predict_proba(features), second.predict_proba(features)
        )

    def test_no_highway_layers(self, xor_data):
        features, labels = xor_data
        model = MLPClassifier(n_highway=0, epochs=40, seed=0)
        model.fit(features, labels)
        assert f1_score(labels, model.predict(features)) > 0.85

    def test_probabilities_in_bounds(self, xor_data):
        features, labels = xor_data
        model = MLPClassifier(epochs=3, seed=0).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((2, 2)))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_size=0)
        with pytest.raises(ValueError):
            MLPClassifier(n_highway=-1)
        with pytest.raises(ValueError):
            MLPClassifier(epochs=0)


class TestGaussianMixture:
    def test_separates_two_blobs(self):
        rng = np.random.default_rng(0)
        low = rng.normal(0.1, 0.05, size=(120, 2))
        high = rng.normal(0.9, 0.05, size=(60, 2))
        mixture = GaussianMixture(n_components=2, seed=0).fit(
            np.vstack((low, high))
        )
        assert mixture.converged_
        match = mixture.match_component()
        assignments = mixture.predict(np.vstack((low, high)))
        # The high-mean blob should map to the match component.
        assert np.mean(assignments[120:] == match) > 0.95
        assert np.mean(assignments[:120] == match) < 0.05

    def test_responsibilities_sum_to_one(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(50, 3))
        mixture = GaussianMixture(n_components=2, seed=1).fit(data)
        responsibilities = mixture.predict_proba(data)
        np.testing.assert_allclose(responsibilities.sum(axis=1), 1.0)

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(4)
        mixture = GaussianMixture(n_components=3, seed=2).fit(
            rng.normal(size=(90, 2))
        )
        assert mixture.weights_ is not None
        assert mixture.weights_.sum() == pytest.approx(1.0)

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=5).fit(np.zeros((3, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture().predict_proba(np.zeros((2, 2)))

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(80, 2))
        first = GaussianMixture(seed=6).fit(data).predict(data)
        second = GaussianMixture(seed=6).fit(data).predict(data)
        np.testing.assert_array_equal(first, second)
