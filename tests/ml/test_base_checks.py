"""Tests for the shared input-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.base import Estimator, check_features, check_labels
from repro.ml.logistic import LogisticRegression


class TestCheckFeatures:
    def test_passes_through_2d(self):
        array = check_features(np.zeros((3, 2)))
        assert array.shape == (3, 2)
        assert array.dtype == np.float64

    def test_promotes_1d_to_column(self):
        array = check_features(np.zeros(5))
        assert array.shape == (5, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_features(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one sample"):
            check_features(np.zeros((0, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_features(np.array([[np.nan]]))
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_features(np.array([[np.inf]]))

    def test_converts_lists(self):
        array = check_features([[1, 2], [3, 4]])
        assert array.dtype == np.float64


class TestCheckLabels:
    def test_valid(self):
        labels = check_labels(np.array([0, 1, 1]), 3)
        assert labels.dtype == np.int64

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="entries"):
            check_labels(np.array([0, 1]), 3)

    def test_wrong_dimension(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_labels(np.zeros((2, 2)), 2)

    def test_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            check_labels(np.array([0, 2]), 2)

    def test_accepts_bool(self):
        labels = check_labels(np.array([True, False]), 2)
        assert set(labels) == {0, 1}


class TestEstimatorProtocol:
    def test_classifiers_satisfy_protocol(self):
        assert isinstance(LogisticRegression(), Estimator)
