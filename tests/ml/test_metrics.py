"""Tests for repro.ml.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    confusion_counts,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)

label_vectors = st.lists(st.integers(0, 1), min_size=1, max_size=40)


class TestConfusionCounts:
    def test_all_correct(self):
        counts = confusion_counts([1, 0, 1], [1, 0, 1])
        assert counts.true_positives == 2
        assert counts.true_negatives == 1
        assert counts.false_positives == 0
        assert counts.false_negatives == 0
        assert counts.accuracy == 1.0

    def test_all_wrong(self):
        counts = confusion_counts([1, 0], [0, 1])
        assert counts.false_negatives == 1
        assert counts.false_positives == 1
        assert counts.accuracy == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])

    @given(label_vectors)
    def test_counts_sum_to_total(self, labels):
        predictions = labels[::-1]
        counts = confusion_counts(labels, predictions)
        assert counts.total == len(labels)


class TestScores:
    def test_perfect(self):
        truth = np.array([1, 1, 0, 0])
        assert precision_score(truth, truth) == 1.0
        assert recall_score(truth, truth) == 1.0
        assert f1_score(truth, truth) == 1.0

    def test_no_predictions(self):
        truth = np.array([1, 1, 0])
        predicted = np.zeros(3)
        assert precision_score(truth, predicted) == 0.0
        assert recall_score(truth, predicted) == 0.0
        assert f1_score(truth, predicted) == 0.0

    def test_no_positives_in_truth(self):
        truth = np.zeros(3)
        predicted = np.array([1, 0, 0])
        assert recall_score(truth, predicted) == 0.0
        assert f1_score(truth, predicted) == 0.0

    def test_known_values(self):
        truth = np.array([1, 1, 1, 0, 0])
        predicted = np.array([1, 1, 0, 1, 0])
        precision, recall, f1 = precision_recall_f1(truth, predicted)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    @given(label_vectors, st.randoms(use_true_random=False))
    def test_f1_is_harmonic_mean(self, labels, rng):
        predictions = [rng.randint(0, 1) for __ in labels]
        precision, recall, f1 = precision_recall_f1(
            np.asarray(labels), np.asarray(predictions)
        )
        if precision + recall > 0:
            assert f1 == pytest.approx(
                2 * precision * recall / (precision + recall)
            )
        else:
            assert f1 == 0.0

    @given(label_vectors)
    def test_f1_bounds(self, labels):
        truth = np.asarray(labels)
        assert 0.0 <= f1_score(truth, 1 - truth) <= 1.0


class TestAlternativeMetrics:
    """The F-measure alternatives of Hand & Christen (paper refs [15]/[17])."""

    def test_f_star_monotone_in_f1(self):
        from repro.ml.metrics import f_star_score

        truth = np.array([1, 1, 1, 0, 0, 0])
        good = np.array([1, 1, 1, 0, 0, 1])
        bad = np.array([1, 0, 0, 1, 1, 0])
        assert f_star_score(truth, good) > f_star_score(truth, bad)

    def test_f_star_equals_f1_transform(self):
        from repro.ml.metrics import f_star_score

        truth = np.array([1, 1, 0, 0, 1])
        predicted = np.array([1, 0, 0, 1, 1])
        f1 = f1_score(truth, predicted)
        assert f_star_score(truth, predicted) == pytest.approx(f1 / (2 - f1))

    def test_f_star_degenerate(self):
        from repro.ml.metrics import f_star_score

        assert f_star_score(np.zeros(3), np.zeros(3)) == 0.0

    def test_balanced_accuracy_on_perfect(self):
        from repro.ml.metrics import balanced_accuracy

        truth = np.array([1, 0, 1, 0])
        assert balanced_accuracy(truth, truth) == 1.0

    def test_balanced_accuracy_ignores_imbalance(self):
        from repro.ml.metrics import balanced_accuracy

        truth = np.concatenate((np.ones(2), np.zeros(98)))
        predicted = np.concatenate((np.ones(2), np.zeros(98)))
        predicted[50] = 1  # one false positive among many negatives
        assert balanced_accuracy(truth, predicted) == pytest.approx(
            (1.0 + 97 / 98) / 2
        )

    def test_matthews_perfect_and_inverted(self):
        from repro.ml.metrics import matthews_correlation

        truth = np.array([1, 1, 0, 0])
        assert matthews_correlation(truth, truth) == pytest.approx(1.0)
        assert matthews_correlation(truth, 1 - truth) == pytest.approx(-1.0)

    def test_matthews_degenerate_zero(self):
        from repro.ml.metrics import matthews_correlation

        truth = np.array([1, 1, 0, 0])
        assert matthews_correlation(truth, np.ones(4)) == 0.0
