"""Tests for feature scaling and the Adam optimizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.optim import Adam
from repro.ml.scaling import MinMaxScaler, StandardScaler

matrices = st.lists(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
    min_size=2,
    max_size=20,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_centred(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 1], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_dimension_mismatch_raises(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((3, 4)))

    @given(matrices)
    def test_transform_is_affine_invertible(self, rows):
        data = np.asarray(rows)
        scaler = StandardScaler().fit(data)
        scaled = scaler.transform(data)
        recovered = scaled * scaler.scale_ + scaler.mean_
        np.testing.assert_allclose(recovered, data, atol=1e-6)


class TestMinMaxScaler:
    def test_range(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 3)) * 10
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_out_of_range_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        scaled = scaler.transform(np.array([[-5.0], [15.0]]))
        assert scaled[0, 0] == 0.0 and scaled[1, 0] == 1.0

    def test_constant_column_zero(self):
        data = np.full((4, 1), 3.0)
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestAdam:
    def test_minimizes_quadratic(self):
        # Minimize f(x) = ||x - target||^2 from zero.
        target = np.array([3.0, -2.0])
        x = np.zeros(2)
        optimizer = Adam([x], learning_rate=0.1)
        for __ in range(500):
            optimizer.step([2.0 * (x - target)])
        np.testing.assert_allclose(x, target, atol=1e-2)

    def test_gradient_count_mismatch_raises(self):
        x = np.zeros(2)
        optimizer = Adam([x])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_updates_in_place(self):
        x = np.ones(3)
        original = x
        Adam([x], learning_rate=0.5).step([np.ones(3)])
        assert x is original
        assert not np.allclose(x, 1.0)
