"""Tests for labeled pair sets and the 3:1:1 splitter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.splits import split_three_way
from tests.conftest import make_record


def _pair(index: int, label_suffix: str = "") -> RecordPair:
    return RecordPair(
        make_record(f"a{index}{label_suffix}", "A", name=f"left {index}"),
        make_record(f"b{index}{label_suffix}", "B", name=f"right {index}"),
    )


def _pair_set(n_positive: int, n_negative: int) -> LabeledPairSet:
    pairs = LabeledPairSet()
    for index in range(n_positive):
        pairs.add(_pair(index, "p"), 1)
    for index in range(n_negative):
        pairs.add(_pair(index, "n"), 0)
    return pairs


class TestLabeledPairSet:
    def test_counts(self):
        pairs = _pair_set(3, 7)
        assert len(pairs) == 10
        assert pairs.positive_count == 3
        assert pairs.negative_count == 7
        assert pairs.imbalance_ratio == pytest.approx(0.3)

    def test_duplicate_key_raises(self):
        pairs = LabeledPairSet()
        pair = _pair(1)
        pairs.add(pair, 1)
        with pytest.raises(ValueError):
            pairs.add(pair, 0)

    def test_bad_label_raises(self):
        with pytest.raises(ValueError):
            LabeledPairSet().add(_pair(1), 2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            LabeledPairSet([_pair(1)], [1, 0])

    def test_labels_aligned_with_order(self):
        pairs = LabeledPairSet()
        pairs.add(_pair(1), 1)
        pairs.add(_pair(2), 0)
        np.testing.assert_array_equal(pairs.labels, [1, 0])

    def test_subset_preserves_order(self):
        pairs = _pair_set(2, 2)
        subset = pairs.subset([2, 0])
        assert len(subset) == 2
        np.testing.assert_array_equal(subset.labels, [0, 1])

    def test_merge_disjoint(self):
        merged = LabeledPairSet.merge([_pair_set(1, 1), _pair_set(0, 0)])
        assert len(merged) == 2

    def test_merge_overlapping_raises(self):
        part = _pair_set(1, 0)
        with pytest.raises(ValueError):
            LabeledPairSet.merge([part, part])

    def test_contains_key(self):
        pairs = LabeledPairSet()
        pair = _pair(5)
        pairs.add(pair, 1)
        assert pair.key in pairs


class TestSplitThreeWay:
    def test_partition_is_exact(self):
        pairs = _pair_set(20, 80)
        training, validation, testing = split_three_way(pairs, seed=0)
        assert len(training) + len(validation) + len(testing) == 100
        all_keys = training.keys() | validation.keys() | testing.keys()
        assert len(all_keys) == 100

    def test_ratio_approximate(self):
        pairs = _pair_set(50, 250)
        training, validation, testing = split_three_way(pairs, seed=1)
        assert len(training) == pytest.approx(180, abs=3)
        assert len(validation) == pytest.approx(60, abs=3)
        assert len(testing) == pytest.approx(60, abs=3)

    def test_stratification(self):
        pairs = _pair_set(60, 240)
        for split in split_three_way(pairs, seed=2):
            assert split.imbalance_ratio == pytest.approx(0.2, abs=0.03)

    def test_deterministic(self):
        pairs = _pair_set(10, 40)
        first = split_three_way(pairs, seed=3)
        second = split_three_way(pairs, seed=3)
        for a, b in zip(first, second):
            assert a.keys() == b.keys()

    def test_different_seeds_differ(self):
        pairs = _pair_set(10, 40)
        first, __, __ = split_three_way(pairs, seed=4)
        second, __, __ = split_three_way(pairs, seed=5)
        assert first.keys() != second.keys()

    def test_invalid_ratios(self):
        pairs = _pair_set(5, 5)
        with pytest.raises(ValueError):
            split_three_way(pairs, ratios=(1, 1))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            split_three_way(pairs, ratios=(1, 0, 1))

    def test_too_few_pairs(self):
        with pytest.raises(ValueError):
            split_three_way(_pair_set(1, 1))

    @given(st.integers(4, 30), st.integers(4, 60), st.integers(0, 5))
    def test_property_partition(self, n_positive, n_negative, seed):
        pairs = _pair_set(n_positive, n_negative)
        splits = split_three_way(pairs, seed=seed)
        total = sum(len(split) for split in splits)
        assert total == len(pairs)
        positives = sum(split.positive_count for split in splits)
        assert positives == n_positive

    def test_minority_class_reaches_every_split(self):
        """Regression: rounding starved tiny classes out of whole splits.

        With ratios (3,1,1) a 3-member class used to cut to [2,1,0] —
        zero positives in testing — so threshold fitting on small
        shards/scales silently saw no positives. Any class with >= 3
        members must land at least one member in each split.
        """
        for n_positive in (3, 4, 5):
            pairs = _pair_set(n_positive, 12)
            for split in split_three_way(pairs, seed=0):
                assert split.positive_count >= 1, (
                    f"{n_positive} positives left a split empty"
                )

    @given(st.integers(3, 25), st.integers(3, 50), st.integers(0, 8))
    def test_property_no_class_starvation(self, n_positive, n_negative, seed):
        pairs = _pair_set(n_positive, n_negative)
        for split in split_three_way(pairs, seed=seed):
            assert split.positive_count >= 1
            assert split.negative_count >= 1

    def test_two_member_class_prefers_training_and_testing(self):
        # A 2-member class cannot cover three splits; the historical
        # [1, 0, 1] allocation (train + test) is preserved.
        pairs = _pair_set(2, 12)
        training, validation, testing = split_three_way(pairs, seed=0)
        assert training.positive_count == 1
        assert validation.positive_count == 0
        assert testing.positive_count == 1
