"""Tests for repro.data.records."""

from __future__ import annotations

import pytest

from repro.data.records import Record, RecordStore, Schema
from tests.conftest import make_record


class TestSchema:
    def test_basic(self):
        schema = Schema(("a", "b"))
        assert len(schema) == 2
        assert list(schema) == ["a", "b"]
        assert "a" in schema and "c" not in schema

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Schema(())

    def test_duplicates_raise(self):
        with pytest.raises(ValueError):
            Schema(("a", "a"))


class TestRecord:
    def test_value_and_missing(self):
        record = make_record("r1", "A", name="Sony TV", price="99.99")
        assert record.value("name") == "Sony TV"
        assert record.value("missing") == ""

    def test_full_text_skips_empty(self):
        record = make_record("r1", "A", name="Sony", price="")
        assert record.full_text() == "Sony"

    def test_tokens_are_lowercased_and_distinct(self):
        record = make_record("r1", "A", name="Sony Sony TV")
        assert record.tokens() == {"sony", "tv"}

    def test_attribute_tokens(self):
        record = make_record("r1", "A", name="Sony TV", price="99.99")
        assert record.attribute_tokens("name") == {"sony", "tv"}
        assert record.attribute_tokens("price") == {"99", "99"} - set() == {"99"}

    def test_qgrams(self):
        record = make_record("r1", "A", name="abc")
        assert record.qgrams(2) == {"ab", "bc"}

    def test_attribute_qgrams_of_missing(self):
        record = make_record("r1", "A", name="abc")
        assert record.attribute_qgrams("other", 2) == set()


class TestRecordStore:
    @pytest.fixture()
    def store(self, tiny_schema) -> RecordStore:
        return RecordStore("test", tiny_schema)

    def test_add_and_get(self, store):
        record = make_record("r1", "A", name="x")
        store.add(record)
        assert store.get("r1") is record
        assert "r1" in store
        assert len(store) == 1

    def test_duplicate_id_raises(self, store):
        store.add(make_record("r1", "A", name="x"))
        with pytest.raises(ValueError):
            store.add(make_record("r1", "A", name="y"))

    def test_unknown_attribute_raises(self, store):
        with pytest.raises(ValueError):
            store.add(make_record("r1", "A", bogus="x"))

    def test_iteration_order(self, store):
        for index in range(5):
            store.add(make_record(f"r{index}", "A", name=str(index)))
        assert store.ids() == [f"r{index}" for index in range(5)]

    def test_subset(self, store):
        for index in range(5):
            store.add(make_record(f"r{index}", "A", name=str(index)))
        subset = store.subset(["r3", "r1"])
        assert subset.ids() == ["r3", "r1"]
        assert len(subset) == 2

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.get("nope")
