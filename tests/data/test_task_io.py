"""Tests for MatchingTask invariants and CSV round-trips."""

from __future__ import annotations

import pytest

from repro.data.io import load_record_store, load_task, save_record_store, save_task
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import RecordStore, Schema
from repro.data.task import MatchingTask
from tests.conftest import make_record


def _store(name: str, source: str, n: int, schema: Schema) -> RecordStore:
    store = RecordStore(name, schema)
    for index in range(n):
        store.add(
            make_record(
                f"{source.lower()}{index}", source,
                name=f"item {index}", description=f"thing {index}", price="1.00",
            )
        )
    return store


@pytest.fixture()
def simple_parts(tiny_schema):
    left = _store("L", "A", 6, tiny_schema)
    right = _store("R", "B", 6, tiny_schema)

    def pairs(indices, labels):
        out = LabeledPairSet()
        for index, label in zip(indices, labels):
            out.add(
                RecordPair(left.get(f"a{index}"), right.get(f"b{index}")), label
            )
        return out

    return left, right, pairs


class TestMatchingTask:
    def test_valid_construction(self, simple_parts):
        left, right, pairs = simple_parts
        task = MatchingTask(
            "t", left, right,
            training=pairs([0, 1], [1, 0]),
            validation=pairs([2, 3], [1, 0]),
            testing=pairs([4, 5], [1, 0]),
        )
        assert len(task.all_pairs()) == 6
        assert task.attributes == ("name", "description", "price")

    def test_overlapping_splits_raise(self, simple_parts):
        left, right, pairs = simple_parts
        with pytest.raises(ValueError, match="overlap"):
            MatchingTask(
                "t", left, right,
                training=pairs([0, 1], [1, 0]),
                validation=pairs([1, 2], [0, 1]),
                testing=pairs([3], [1]),
            )

    def test_unknown_record_raises(self, simple_parts, tiny_schema):
        left, right, pairs = simple_parts
        stranger = make_record("zz", "A", name="stranger")
        bad = LabeledPairSet()
        bad.add(RecordPair(stranger, right.get("b0")), 1)
        with pytest.raises(ValueError, match="unknown left record"):
            MatchingTask(
                "t", left, right,
                training=bad,
                validation=pairs([2], [1]),
                testing=pairs([3], [0]),
            )

    def test_statistics(self, simple_parts):
        left, right, pairs = simple_parts
        task = MatchingTask(
            "t", left, right,
            training=pairs([0, 1, 2], [1, 0, 0]),
            validation=pairs([3], [1]),
            testing=pairs([4, 5], [1, 0]),
        )
        stats = task.statistics()
        assert stats.training_instances == 3
        assert stats.training_positives == 1
        assert stats.testing_positives == 1
        assert stats.imbalance_ratio == pytest.approx(0.5)

    def test_metadata_defaults_empty(self, simple_parts):
        left, right, pairs = simple_parts
        task = MatchingTask(
            "t", left, right,
            training=pairs([0], [1]),
            validation=pairs([1], [0]),
            testing=pairs([2], [1]),
        )
        assert task.metadata == {}


class TestIo:
    def test_record_store_round_trip(self, tmp_path, tiny_schema):
        store = _store("L", "A", 4, tiny_schema)
        save_record_store(store, tmp_path / "tableA.csv")
        loaded = load_record_store(tmp_path / "tableA.csv", "L", "A")
        assert loaded.ids() == store.ids()
        assert loaded.get("a2").value("name") == "item 2"
        assert loaded.schema.attributes == store.schema.attributes

    def test_task_round_trip(self, tmp_path, small_task):
        save_task(small_task, tmp_path / "task")
        loaded = load_task(tmp_path / "task")
        assert loaded.name == small_task.name
        assert len(loaded.training) == len(small_task.training)
        assert loaded.training.keys() == small_task.training.keys()
        assert (loaded.training.labels == small_task.training.labels).all()
        assert len(loaded.left) == len(small_task.left)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,name\n1,x\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_record_store(path, "L", "A")

    def test_values_with_commas_survive(self, tmp_path, tiny_schema):
        store = RecordStore("L", tiny_schema)
        store.add(make_record("a0", "A", name="one, two", description='say "hi"'))
        save_record_store(store, tmp_path / "t.csv")
        loaded = load_record_store(tmp_path / "t.csv", "L", "A")
        assert loaded.get("a0").value("name") == "one, two"
        assert loaded.get("a0").value("description") == 'say "hi"'
