"""Property-based tests for LabeledPairSet invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.pairs import LabeledPairSet, RecordPair
from tests.conftest import make_record

labeled_specs = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 1)),
    min_size=0,
    max_size=40,
    unique_by=lambda spec: spec[0],
)


def _build(specs) -> LabeledPairSet:
    pairs = LabeledPairSet()
    for index, label in specs:
        pairs.add(
            RecordPair(
                make_record(f"a{index}", "A", name=f"left {index}"),
                make_record(f"b{index}", "B", name=f"right {index}"),
            ),
            label,
        )
    return pairs


class TestLabeledPairSetProperties:
    @given(labeled_specs)
    def test_counts_consistent(self, specs):
        pairs = _build(specs)
        assert pairs.positive_count + pairs.negative_count == len(pairs)
        assert pairs.positive_count == sum(label for __, label in specs)
        if pairs:
            assert 0.0 <= pairs.imbalance_ratio <= 1.0

    @given(labeled_specs)
    def test_labels_align_with_iteration(self, specs):
        pairs = _build(specs)
        iterated = [label for __, label in pairs]
        assert iterated == list(pairs.labels)

    @given(labeled_specs)
    def test_subset_of_everything_is_identity(self, specs):
        pairs = _build(specs)
        clone = pairs.subset(range(len(pairs)))
        assert clone.keys() == pairs.keys()
        assert (clone.labels == pairs.labels).all()

    @given(labeled_specs, labeled_specs)
    @settings(max_examples=25)
    def test_merge_counts_add_up(self, first_specs, second_specs):
        first = _build(first_specs)
        # Shift ids of the second set to guarantee disjointness.
        shifted = [(index + 1000, label) for index, label in second_specs]
        second = _build(shifted)
        merged = LabeledPairSet.merge([first, second])
        assert len(merged) == len(first) + len(second)
        assert merged.positive_count == (
            first.positive_count + second.positive_count
        )
