"""ShardedSweep: reduction correctness, checkpoint/resume, state hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocking.base import evaluate_blocking
from repro.blocking.factory import make_blocker
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.datasets.generator import generate_shard
from repro.matchers.esde import EsdeMatcher
from repro.runtime.cache import read_envelope
from repro.runtime.journal import CheckpointJournal
from repro.scale import (
    SCALE_JOURNAL_NAME,
    SCALE_MANIFEST_NAME,
    SCALE_REPORT_NAME,
    ScaleConfig,
    ShardedSweep,
    config_fingerprint,
)
from repro.scale.sweep import _ShardTask


@pytest.fixture(scope="module")
def config() -> ScaleConfig:
    return ScaleConfig(
        dataset_id="Ds2",
        records=800,
        shard_size=150,
        blocker="lsh",
        matcher="SA",
        seed=0,
        fit_pairs=200,
    )


@pytest.fixture(scope="module")
def clean_report(config):
    """One uninterrupted in-memory run (no cache dir) as the reference."""
    return ShardedSweep(config).run()


class TestReduction:
    def test_complete_run_covers_every_record(self, config, clean_report):
        assert clean_report.complete
        assert clean_report.n_shards == len(clean_report.shards)
        # records = 2 * matches + extras; profile rounding keeps it close.
        assert abs(clean_report.n_records - config.records) <= 3

    def test_metrics_are_exact_ratios_of_journaled_counts(self, clean_report):
        totals = clean_report.state()["totals"]
        assert clean_report.pair_completeness == pytest.approx(
            totals["block_tp"] / totals["n_matches"]
        )
        assert clean_report.pairs_quality == pytest.approx(
            totals["block_tp"] / totals["n_candidates"]
        )
        assert clean_report.precision == pytest.approx(
            totals["tp"] / (totals["tp"] + totals["fp"])
        )
        assert clean_report.recall == pytest.approx(
            totals["tp"] / (totals["tp"] + totals["fn"])
        )
        assert 0.0 < clean_report.f1 <= 1.0

    def test_reduction_matches_direct_recomputation(self, config, clean_report):
        """Re-derive every shard's counts outside the driver."""
        sweep = ShardedSweep(config)
        blocker = make_blocker(config.blocker)
        for stats in clean_report.shards:
            sources = generate_shard(
                sweep.profile, stats.shard_index, config.shard_size
            )
            blocking = evaluate_blocking(blocker.candidates(sources), sources)
            assert blocking.n_candidates == stats.n_candidates
            assert blocking.n_matching_candidates == stats.block_tp
            assert sources.n_matches == stats.n_matches
            matcher = EsdeMatcher.from_payload(
                clean_report.matcher_payload,
                _ShardTask(sources.left.schema.attributes),
            )
            pairs = LabeledPairSet()
            for left_id, right_id in sorted(blocking.candidates):
                pairs.add(
                    RecordPair(
                        sources.left.get(left_id),
                        sources.right.get(right_id),
                    ),
                    1 if (left_id, right_id) in sources.matches else 0,
                )
            if len(pairs):
                predictions = matcher.predict(pairs)
                labels = pairs.labels
                assert stats.tp == int(
                    np.sum((predictions == 1) & (labels == 1))
                )
                assert stats.fp == int(
                    np.sum((predictions == 1) & (labels == 0))
                )

    def test_missed_blocking_matches_count_as_false_negatives(
        self, clean_report
    ):
        for stats in clean_report.shards:
            assert stats.fn >= stats.n_matches - stats.block_tp

    def test_to_table_has_a_total_row(self, clean_report):
        headers, rows = clean_report.to_table()
        assert headers[0] == "shard"
        assert rows[-1][0] == "ALL"
        assert len(rows) == clean_report.n_shards + 1


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_state(
        self, config, clean_report, tmp_path
    ):
        state_dir = tmp_path / "state"
        partial = ShardedSweep(config, cache_dir=state_dir).run(max_shards=2)
        assert not partial.complete
        assert len(partial.shards) == 2
        # Mid-run state: journal has the fit + two shards, no report yet.
        assert not (state_dir / SCALE_REPORT_NAME).exists()

        resumed = ShardedSweep(config, cache_dir=state_dir).run()
        assert resumed.complete
        assert resumed.resumed_shards == 2
        assert resumed.state() == clean_report.state()
        assert (state_dir / SCALE_REPORT_NAME).exists()
        assert read_envelope(
            state_dir / SCALE_REPORT_NAME
        ) == clean_report.state()

    def test_torn_journal_tail_is_tolerated(self, config, clean_report, tmp_path):
        state_dir = tmp_path / "state"
        ShardedSweep(config, cache_dir=state_dir).run(max_shards=3)
        with (state_dir / SCALE_JOURNAL_NAME).open(
            "a", encoding="utf-8"
        ) as handle:
            handle.write('{"unit": "scale:shard:0000')  # SIGKILL mid-append
        resumed = ShardedSweep(config, cache_dir=state_dir).run()
        assert resumed.complete
        assert resumed.state() == clean_report.state()

    def test_completed_run_resumes_every_shard(self, config, tmp_path):
        state_dir = tmp_path / "state"
        first = ShardedSweep(config, cache_dir=state_dir).run()
        again = ShardedSweep(config, cache_dir=state_dir).run()
        assert again.resumed_shards == first.n_shards
        assert again.state() == first.state()

    def test_config_change_resets_stale_state(self, config, tmp_path):
        state_dir = tmp_path / "state"
        ShardedSweep(config, cache_dir=state_dir).run(max_shards=2)
        other = ScaleConfig(
            dataset_id=config.dataset_id,
            records=config.records,
            shard_size=config.shard_size,
            blocker=config.blocker,
            matcher=config.matcher,
            seed=config.seed + 1,  # different fingerprint
            fit_pairs=config.fit_pairs,
        )
        assert config_fingerprint(other) != config_fingerprint(config)
        report = ShardedSweep(other, cache_dir=state_dir).run()
        assert report.resumed_shards == 0
        assert report.complete
        manifest = read_envelope(state_dir / SCALE_MANIFEST_NAME)
        assert manifest["fingerprint"] == config_fingerprint(other)

    def test_journal_entries_carry_the_fingerprint(self, config, tmp_path):
        state_dir = tmp_path / "state"
        ShardedSweep(config, cache_dir=state_dir).run(max_shards=1)
        journal = CheckpointJournal(state_dir / SCALE_JOURNAL_NAME)
        assert len(journal) >= 2  # the fit and at least one shard
        for unit in journal.completed:
            assert journal.info(unit)["config"] == config_fingerprint(config)


class TestReportState:
    def test_state_excludes_wall_clock(self, clean_report):
        state = clean_report.state()
        assert "seconds" not in str(sorted(state["shards"][0]))
        for shard in state["shards"]:
            assert "seconds" not in shard

    def test_fit_payload_round_trips_in_state(self, clean_report):
        payload = clean_report.state()["matcher_payload"]
        assert payload["kind"] == "esde"
        assert payload["variant"] == "SA"
