"""ScaleConfig validation and established-profile scaling."""

from __future__ import annotations

import pytest

from repro.datasets.established import ESTABLISHED_PROFILES
from repro.datasets.generator import total_entities
from repro.scale import ScaleConfig, scale_profile


class TestScaleConfig:
    def test_defaults_are_valid(self):
        config = ScaleConfig()
        assert config.matcher_variant == "SA"

    def test_roster_style_matcher_names_accepted(self):
        assert ScaleConfig(matcher="SBQ-ESDE").matcher_variant == "SBQ"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset_id": "nope"},
            {"records": 5},
            {"shard_size": 0},
            {"matcher": "SAS"},  # embedding variants cannot snapshot
            {"matcher": "bogus"},
            {"blocker": "bogus"},
            {"fit_pairs": 5},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ScaleConfig(**kwargs)


class TestScaleProfile:
    def test_record_count_close_to_target(self):
        for records in (1000, 25_000):
            profile = scale_profile("Ds2", records)
            total = (
                profile.n_matches
                + total_entities(profile)  # = matches + extras + matches
            )
            assert abs(total - records) <= 3

    def test_preserves_match_share(self):
        base = ESTABLISHED_PROFILES["Ds2"]
        base_total = 2 * base.n_matches + base.left_extra + base.right_extra
        profile = scale_profile("Ds2", 50_000)
        assert profile.n_matches == pytest.approx(
            base.n_matches * 50_000 / base_total, rel=0.01
        )

    def test_dirty_profiles_carry_misplacement(self):
        dirty_ids = [
            dataset_id
            for dataset_id, profile in ESTABLISHED_PROFILES.items()
            if profile.dirty
        ]
        assert dirty_ids, "expected at least one dirty established profile"
        profile = scale_profile(dirty_ids[0], 2000)
        assert profile.noise_left.dirty_misplacement_rate == 0.5
        assert profile.noise_right.dirty_misplacement_rate == 0.5

    def test_clean_profiles_do_not(self):
        profile = scale_profile("Ds2", 2000)
        assert profile.noise_left.dirty_misplacement_rate == 0.0

    def test_deterministic_and_named(self):
        one = scale_profile("Ds5", 3000, seed=2)
        two = scale_profile("Ds5", 3000, seed=2)
        assert one == two
        assert one.name == "Ds5@3000"
        assert one.seed == ESTABLISHED_PROFILES["Ds5"].seed + 2

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            scale_profile("nope", 1000)
