"""Tests for circuit breakers and their ExecutionPolicy integration."""

from __future__ import annotations

import pickle

import pytest

from repro.runtime import BreakerRegistry, CircuitBreaker, ExecutionPolicy
from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("u")
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker("u", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_open_short_circuits_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "u", failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.short_circuits == 1
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # the half-open trial
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "u", failure_threshold=1, cooldown_seconds=1.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "u", failure_threshold=5, cooldown_seconds=1.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN
        assert breaker.times_opened == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("u", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("u", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("u", cooldown_seconds=-1.0)


class TestBreakerRegistry:
    def test_same_key_same_breaker(self):
        registry = BreakerRegistry()
        assert registry.breaker_for("a") is registry.breaker_for("a")
        assert registry.breaker_for("a") is not registry.breaker_for("b")
        assert len(registry) == 2

    def test_open_keys_sorted(self):
        registry = BreakerRegistry(failure_threshold=1)
        registry.breaker_for("z").record_failure()
        registry.breaker_for("a").record_failure()
        registry.breaker_for("m").record_success()
        assert registry.open_keys() == ["a", "z"]

    def test_snapshot_is_json_ready(self):
        registry = BreakerRegistry(failure_threshold=1)
        registry.breaker_for("a").record_failure()
        snap = registry.snapshot()
        assert snap["a"]["state"] == OPEN
        assert snap["a"]["times_opened"] == 1

    def test_registry_is_picklable_with_state(self):
        registry = BreakerRegistry(failure_threshold=1)
        registry.breaker_for("a").record_failure()
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.breaker_for("a").state == OPEN
        # The rebuilt lock still guards breaker creation.
        assert clone.breaker_for("new").state == CLOSED


class TestPolicyIntegration:
    def _policy(self, clock, *, threshold=2, max_attempts=1):
        return ExecutionPolicy(
            max_attempts=max_attempts,
            backoff_base=0.0,
            retry_on=(ValueError,),
            breakers=BreakerRegistry(
                failure_threshold=threshold,
                cooldown_seconds=1000.0,
                clock=clock,
            ),
        )

    def test_short_circuits_after_threshold(self):
        calls: list[int] = []

        def fail() -> None:
            calls.append(1)
            raise ValueError("nope")

        policy = self._policy(FakeClock())
        for _ in range(2):
            outcome = policy.execute(fail, unit_id="u", phase="matcher")
            assert outcome.failure.exception_type == "ValueError"
        outcome = policy.execute(fail, unit_id="u", phase="matcher")
        assert outcome.failure.exception_type == "CircuitOpen"
        assert outcome.failure.attempts == 0
        assert len(calls) == 2  # the short-circuited call never ran

    def test_open_breaker_stops_remaining_retries(self):
        calls: list[int] = []

        def fail() -> None:
            calls.append(1)
            raise ValueError("nope")

        policy = self._policy(FakeClock(), threshold=2, max_attempts=5)
        outcome = policy.execute(fail, unit_id="u", phase="matcher")
        # The breaker opened on the second consecutive failure, so the
        # policy stopped there instead of burning all five attempts.
        assert outcome.failure.attempts == 2
        assert len(calls) == 2

    def test_units_have_independent_breakers(self):
        def fail() -> None:
            raise ValueError("nope")

        policy = self._policy(FakeClock(), threshold=1)
        policy.execute(fail, unit_id="a", phase="matcher")
        outcome = policy.execute(lambda: 42, unit_id="b", phase="matcher")
        assert outcome.ok and outcome.value == 42

    def test_half_open_trial_recovers(self):
        clock = FakeClock()
        policy = self._policy(clock, threshold=1)

        def fail() -> None:
            raise ValueError("nope")

        policy.execute(fail, unit_id="u", phase="matcher")
        assert policy.execute(fail, unit_id="u", phase="matcher").failure.exception_type == "CircuitOpen"
        clock.now = 2000.0
        outcome = policy.execute(lambda: "ok", unit_id="u", phase="matcher")
        assert outcome.ok
        assert policy.breakers.breaker_for("u").state == CLOSED

    def test_policy_without_breakers_unchanged(self):
        policy = ExecutionPolicy(
            max_attempts=1, backoff_base=0.0, retry_on=(ValueError,)
        )
        assert policy.breakers is None
        outcome = policy.execute(lambda: 1, unit_id="u", phase="matcher")
        assert outcome.ok
