"""Tests for chaos campaigns, state diffing and plan shrinking.

The cheap parts (plan generation, diffing, shrinking) run everywhere.
The in-process campaign smoke is marked ``fault_smoke``; the full
acceptance campaign (20 plans including kill-resume child processes)
is marked ``chaos`` and excluded from the default test run — invoke it
with ``pytest -m chaos``.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.runtime.chaos import (
    ChaosCampaign,
    FaultPlan,
    PlannedFault,
    check_crash_consistency,
    count_unexplained_degradations,
    default_kill_sites,
    default_site_pool,
    diff_sweep_states,
    generate_plans,
    shrink_plan,
)


def _cell(f1=0.5, degraded=False):
    return {"f1": f1, "precision": f1, "recall": f1, "degraded": degraded}


def _dataset(cells, measured=True, nlb=0.10, lbm=0.20, challenging=True):
    return {
        "results": cells,
        "measured": measured,
        "nlb": nlb if measured else None,
        "lbm": lbm if measured else None,
        "practical_challenging": challenging if measured else None,
        "journal_units": [],
    }


def _state(**datasets):
    return {"datasets": datasets}


class TestGeneratePlans:
    POOL = default_site_pool(("Ds5", "Ds7"))

    def test_same_seed_same_schedule(self):
        first = generate_plans(8, 42, self.POOL)
        assert generate_plans(8, 42, self.POOL) == first
        assert generate_plans(8, 43, self.POOL) != first

    def test_plan_shape(self):
        plans = generate_plans(10, 0, self.POOL, max_faults_per_plan=3)
        assert len(plans) == 10
        for plan in plans:
            assert 1 <= len(plan.faults) <= 3
            sites = [planned.site for planned in plan.faults]
            assert len(sites) == len(set(sites))  # distinct sites per plan
            assert plan.kill_site is None

    def test_kill_plans_come_last(self):
        kill_sites = default_kill_sites(("Ds5",))
        plans = generate_plans(
            6, 0, self.POOL, kill_sites=kill_sites, n_kill_plans=2
        )
        assert [plan.kill_site is not None for plan in plans] == [
            False, False, False, False, True, True,
        ]
        for plan in plans[-2:]:
            assert plan.kill_site in kill_sites
            assert plan.faults == ()

    def test_kill_plan_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            generate_plans(1, 0, self.POOL, n_kill_plans=2)
        with pytest.raises(ValueError, match="kill_sites"):
            generate_plans(2, 0, self.POOL, n_kill_plans=1)

    def test_describe_is_replayable_text(self):
        plan = FaultPlan(
            plan_id=3,
            seed=7,
            faults=(PlannedFault("cache:read", "corrupt", times=None, probability=0.5),),
        )
        assert "plan 3 (seed 7)" in plan.describe()
        assert "cache:read=corrupt:*@p0.50" in plan.describe()


class TestDiffSweepStates:
    def test_identical_states_have_no_divergences(self):
        state = _state(Ds5=_dataset({"A": _cell(), "B": _cell(0.7)}))
        assert diff_sweep_states(state, state) == []

    def test_degraded_or_missing_observed_cell_is_survived_loss(self):
        baseline = _state(Ds5=_dataset({"A": _cell(), "B": _cell()}))
        observed = _state(
            Ds5=_dataset({"A": _cell(0.0, degraded=True)}, measured=False)
        )
        assert diff_sweep_states(baseline, observed) == []

    def test_score_mismatch_diverges(self):
        baseline = _state(Ds5=_dataset({"A": _cell(0.5)}))
        observed = _state(Ds5=_dataset({"A": _cell(0.6)}))
        divergences = diff_sweep_states(baseline, observed)
        assert len(divergences) == 3  # f1, precision, recall
        assert "Ds5/A" in divergences[0]

    def test_silent_promotion_is_caught(self):
        # Baseline says the cell failed; a faulted run reporting a real
        # score for it fabricated data. This is the scenario the whole
        # campaign exists to catch.
        baseline = _state(Ds5=_dataset({"A": _cell(0.0, degraded=True)}))
        observed = _state(Ds5=_dataset({"A": _cell(0.0, degraded=False)}))
        divergences = diff_sweep_states(baseline, observed)
        assert any("degraded in baseline" in text for text in divergences)

    def test_practical_measure_mismatch_diverges(self):
        baseline = _state(Ds5=_dataset({"A": _cell()}, nlb=0.10))
        observed = _state(Ds5=_dataset({"A": _cell()}, nlb=0.11))
        assert any(
            "nlb" in text for text in diff_sweep_states(baseline, observed)
        )

    def test_practical_verdict_mismatch_diverges(self):
        baseline = _state(Ds5=_dataset({"A": _cell()}, challenging=True))
        observed = _state(Ds5=_dataset({"A": _cell()}, challenging=False))
        assert any(
            "verdict" in text for text in diff_sweep_states(baseline, observed)
        )

    def test_unmeasured_observed_skips_practical_checks(self):
        baseline = _state(Ds5=_dataset({"A": _cell()}, nlb=0.10))
        observed = _state(Ds5=_dataset({"A": _cell()}, measured=False))
        assert diff_sweep_states(baseline, observed) == []

    def test_missing_dataset_diverges(self):
        baseline = _state(Ds5=_dataset({"A": _cell()}))
        assert diff_sweep_states(baseline, _state()) == [
            "Ds5: missing from observed state"
        ]


class TestUnexplainedDegradations:
    def _failures(self, *unit_ids):
        return [SimpleNamespace(unit_id=unit_id) for unit_id in unit_ids]

    def test_matcher_record_explains_its_cell(self):
        state = _state(Ds5=_dataset({"A": _cell(0.0, degraded=True)}))
        assert count_unexplained_degradations(
            state, self._failures("Ds5/A")
        ) == 0

    def test_sweep_record_explains_every_cell_of_its_dataset(self):
        state = _state(
            Ds5=_dataset(
                {"A": _cell(0.0, degraded=True), "B": _cell(0.0, degraded=True)}
            )
        )
        assert count_unexplained_degradations(
            state, self._failures("sweep:Ds5")
        ) == 0

    def test_degraded_cell_without_record_is_flagged(self):
        state = _state(Ds5=_dataset({"A": _cell(0.0, degraded=True)}))
        assert count_unexplained_degradations(state, self._failures()) == 1
        # A record for a different dataset does not explain it.
        assert count_unexplained_degradations(
            state, self._failures("sweep:Ds7")
        ) == 1


class TestShrinkPlan:
    def _plan(self, *sites):
        return FaultPlan(
            plan_id=0,
            seed=0,
            faults=tuple(PlannedFault(site, "error") for site in sites),
        )

    def test_shrinks_to_single_culprit(self):
        plan = self._plan("a", "journal:append", "b", "c")

        def still_fails(candidate: FaultPlan) -> bool:
            return any(
                planned.site == "journal:append" for planned in candidate.faults
            )

        shrunk = shrink_plan(plan, still_fails)
        assert [planned.site for planned in shrunk.faults] == ["journal:append"]

    def test_keeps_interacting_pair(self):
        plan = self._plan("a", "b", "c")

        def still_fails(candidate: FaultPlan) -> bool:
            sites = {planned.site for planned in candidate.faults}
            return {"a", "c"} <= sites

        shrunk = shrink_plan(plan, still_fails)
        assert {planned.site for planned in shrunk.faults} == {"a", "c"}

    def test_single_fault_plan_is_already_minimal(self):
        plan = self._plan("a")
        calls = []
        shrunk = shrink_plan(plan, lambda candidate: calls.append(1) or True)
        assert shrunk == plan
        assert calls == []  # nothing to drop, nothing replayed


class TestCampaignSmoke:
    @pytest.mark.fault_smoke
    def test_small_campaign_survives_with_zero_divergences(self, tmp_path):
        campaign = ChaosCampaign(
            datasets=("Ds5",),
            scale=0.3,
            seed=0,
            n_plans=2,
            n_kill_plans=0,
            workdir=tmp_path / "campaign",
        )
        report = campaign.run()
        assert report.ok, report.divergent
        assert len(report.results) == 2
        headers, rows = report.to_table()
        assert headers[0] == "plan"
        assert len(rows) == 2
        assert all(row[-1] == "match" for row in rows)

    @pytest.mark.fault_smoke
    def test_always_failing_matcher_degrades_but_never_diverges(self, tmp_path):
        campaign = ChaosCampaign(
            datasets=("Ds5",),
            scale=0.3,
            seed=0,
            n_plans=1,
            n_kill_plans=0,
            workdir=tmp_path / "campaign",
        )
        plan = FaultPlan(
            plan_id=0,
            seed=0,
            faults=(PlannedFault("matcher:DITTO (15)", "error", times=None),),
        )
        result = campaign.run_plan(plan)
        assert result.ok, result.divergences
        assert result.degraded_cells >= 1
        assert result.failures_absorbed >= 1


@pytest.mark.chaos
class TestAcceptanceCampaign:
    """The issue's acceptance criterion: >= 20 seeded plans, kill-resume
    included, zero verdict divergences. Minutes of wall-clock — run with
    ``pytest -m chaos``."""

    def test_twenty_plan_campaign_with_kill_resume(self):
        campaign = ChaosCampaign()  # defaults: 20 plans, 2 kill-resume
        report = campaign.run()
        assert len(report.results) == 20
        kill_results = [r for r in report.results if r.plan.kill_site]
        assert len(kill_results) == 2
        assert report.ok, "\n".join(
            f"{result.plan.describe()}: {result.divergences}"
            for result in report.divergent
        )

    def test_crash_consistency_at_journal_append(self, tmp_path):
        check = check_crash_consistency(
            datasets=("Ds5",),
            scale=0.3,
            seed=0,
            kill_site="journal:append",
            workdir=tmp_path / "crash",
        )
        assert check.killed, check.kill_returncode
        assert check.ok, check.divergences
