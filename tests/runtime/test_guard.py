"""Tests for resource-aware supervision: deadlines, watchdog, budgets, leases."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime import faults, guard
from repro.runtime.cache import atomic_writer, read_envelope, write_envelope
from repro.runtime.guard import (
    LEASE_NAME,
    AdaptiveDeadlineModel,
    BudgetExceeded,
    DiskFull,
    LeaseHeld,
    ResourceGuard,
    RunLease,
    Watchdog,
    audit_lease,
    pid_alive,
)
from repro.runtime.journal import CheckpointJournal


@pytest.fixture(autouse=True)
def clean_degradations():
    guard.reset_global_degradations()
    yield
    guard.reset_global_degradations()


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdaptiveDeadlineModel:
    def test_fallback_before_min_samples(self):
        model = AdaptiveDeadlineModel(fallback_seconds=7.0, min_samples=3)
        assert model.deadline_for("matcher") == 7.0
        model.observe("matcher", 1.0)
        model.observe("matcher", 1.0)
        assert model.deadline_for("matcher") == 7.0
        assert model.learned_deadline_for("matcher") is None

    def test_learned_deadline_is_p99_times_margin(self):
        model = AdaptiveDeadlineModel(
            margin=4.0, floor_seconds=0.0, min_samples=3
        )
        for seconds in (1.0, 2.0, 3.0):
            model.observe("matcher", seconds)
        # p99 of 3 samples is the largest one.
        assert model.deadline_for("matcher") == pytest.approx(12.0)
        assert model.learned_deadline_for("matcher") == pytest.approx(12.0)

    def test_floor_and_ceiling_clamp(self):
        model = AdaptiveDeadlineModel(
            margin=2.0, floor_seconds=5.0, ceiling_seconds=10.0, min_samples=1
        )
        model.observe("fast", 0.001)
        assert model.deadline_for("fast") == 5.0
        model.observe("slow", 1000.0)
        assert model.deadline_for("slow") == 10.0

    def test_deterministic_given_same_history(self):
        history = [0.5, 2.0, 1.5, 0.7, 3.0, 0.2]
        first = AdaptiveDeadlineModel(min_samples=1)
        second = AdaptiveDeadlineModel(min_samples=1)
        for seconds in history:
            first.observe("k", seconds)
            second.observe("k", seconds)
        assert first.deadline_for("k") == second.deadline_for("k")

    def test_history_is_bounded(self):
        model = AdaptiveDeadlineModel(max_history=10)
        for _ in range(100):
            model.observe("k", 1.0)
        assert model.samples("k") == 10

    def test_negative_durations_ignored(self):
        model = AdaptiveDeadlineModel()
        model.observe("k", -1.0)
        assert model.samples("k") == 0

    def test_snapshot(self):
        model = AdaptiveDeadlineModel(fallback_seconds=3.0)
        model.observe("k", 1.0)
        snap = model.snapshot()
        assert snap["k"]["samples"] == 1
        assert snap["k"]["deadline_seconds"] == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="margin"):
            AdaptiveDeadlineModel(margin=0.0)
        with pytest.raises(ValueError, match="ceiling"):
            AdaptiveDeadlineModel(floor_seconds=10.0, ceiling_seconds=1.0)


class TestWatchdog:
    def test_healthy_worker_earns_no_verdict(self):
        clock = FakeClock()
        dog = Watchdog(fallback_deadline_seconds=10.0, clock=clock)
        dog.attach(101, "Ds5/ZeroER", "matcher")
        clock.advance(5.0)
        dog.beat(101)
        assert dog.verdicts() == []
        assert dog.watched() == [101]

    def test_deadline_verdict(self):
        clock = FakeClock()
        dog = Watchdog(fallback_deadline_seconds=10.0, clock=clock)
        dog.attach(101, "Ds5/ZeroER", "matcher")
        clock.advance(11.0)
        dog.beat(101)  # beating is not enough: the deadline still binds
        (verdict,) = dog.verdicts()
        assert verdict.kind == "deadline"
        assert verdict.pid == 101
        assert verdict.unit_id == "Ds5/ZeroER"

    def test_heartbeat_staleness_verdict(self):
        clock = FakeClock()
        dog = Watchdog(stale_after_seconds=3.0, clock=clock)
        dog.attach(101, "u", "matcher")
        clock.advance(2.0)
        dog.beat(101)
        clock.advance(3.5)  # silent past the staleness window
        (verdict,) = dog.verdicts()
        assert verdict.kind == "heartbeat"

    def test_rss_verdict(self):
        clock = FakeClock()
        dog = Watchdog(
            rss_budget_mb=100.0, rss_fn=lambda pid: 250.0, clock=clock
        )
        dog.attach(101, "u", "matcher")
        (verdict,) = dog.verdicts()
        assert verdict.kind == "rss"
        assert "250" in verdict.detail

    def test_unknown_rss_is_not_a_verdict(self):
        dog = Watchdog(rss_budget_mb=100.0, rss_fn=lambda pid: None)
        dog.attach(101, "u", "matcher")
        assert dog.verdicts() == []

    def test_observed_durations_tighten_the_deadline(self):
        clock = FakeClock()
        dog = Watchdog(fallback_deadline_seconds=600.0, clock=clock)
        dog.deadlines.floor_seconds = 0.0
        for _ in range(3):
            dog.observe("matcher", 1.0)
        dog.attach(101, "u", "matcher")
        clock.advance(5.0)  # over p99*margin = 4s, far under the fallback
        (verdict,) = dog.verdicts()
        assert verdict.kind == "deadline"

    def test_detach_clears_the_worker(self):
        clock = FakeClock()
        dog = Watchdog(fallback_deadline_seconds=1.0, clock=clock)
        dog.attach(101, "u", "matcher")
        dog.detach(101)
        clock.advance(10.0)
        assert dog.verdicts() == []


class TestResourceGuard:
    def test_disabled_without_budgets(self):
        unguarded = ResourceGuard()
        assert not unguarded.enabled
        unguarded.checkpoint("u")  # no budget, no probes -> no-op

    def test_memory_pressure_walks_the_ladder_then_sheds(self):
        from repro.text import feature_store, kernels

        clock = FakeClock()
        monitored = ResourceGuard(
            memory_budget_mb=100.0,
            min_check_interval=1.0,
            rss_fn=lambda: 500.0,
            clock=clock,
        )
        # One ladder step per pressured checkpoint, cheapest first.
        for expected_level in (1, 2, 3):
            clock.advance(2.0)
            monitored.checkpoint("u")
            assert monitored.degradation_level == expected_level
        assert kernels.batch_limit() == 256
        assert kernels.backend_preference() == "merge"
        assert feature_store.cache_disabled()
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded, match="memory budget"):
            monitored.checkpoint("u")
        assert monitored.degradations == (
            "shrink-kernel-batch",
            "force-merge-backend",
            "disable-feature-cache",
        )

    def test_recovered_memory_stops_the_ladder(self):
        rss = {"value": 500.0}
        clock = FakeClock()
        monitored = ResourceGuard(
            memory_budget_mb=100.0,
            rss_fn=lambda: rss["value"],
            clock=clock,
        )
        clock.advance(2.0)
        monitored.checkpoint("u")
        assert monitored.degradation_level == 1
        rss["value"] = 50.0  # the shrink paid off
        clock.advance(2.0)
        monitored.checkpoint("u")
        assert monitored.degradation_level == 1

    def test_checks_are_rate_limited(self):
        calls = {"n": 0}

        def rss() -> float:
            calls["n"] += 1
            return 0.0

        clock = FakeClock()
        monitored = ResourceGuard(
            memory_budget_mb=100.0, min_check_interval=10.0,
            rss_fn=rss, clock=clock,
        )
        for _ in range(5):
            clock.advance(1.0)
            monitored.checkpoint("u")
        assert calls["n"] == 1

    def test_disk_pressure_skips_to_cache_step(self, tmp_path):
        from repro.text import feature_store

        clock = FakeClock()
        monitored = ResourceGuard(
            disk_reserve_mb=100.0,
            cache_dir=tmp_path,
            disk_free_fn=lambda path: 10.0,
            clock=clock,
        )
        clock.advance(2.0)
        monitored.checkpoint("u")
        assert feature_store.cache_disabled()
        assert monitored.degradation_level == 3
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded, match="disk budget"):
            monitored.checkpoint("u")

    def test_disk_preflight_warns_and_degrades(self, tmp_path):
        from repro.text import feature_store

        monitored = ResourceGuard(
            disk_reserve_mb=100.0,
            cache_dir=tmp_path,
            disk_free_fn=lambda path: 10.0,
        )
        warnings = monitored.preflight()
        assert any("below" in text for text in warnings)
        assert feature_store.cache_disabled()

    def test_injected_oom_is_probed_every_call(self):
        faults.arm("guard:oom", "error", times=2)
        clock = FakeClock()  # never advances: real checks never become due
        monitored = ResourceGuard(memory_budget_mb=1e6, clock=clock)
        monitored.checkpoint("u")
        monitored.checkpoint("u")
        assert monitored.degradation_level == 2
        monitored.checkpoint("u")  # fault budget exhausted -> healthy again
        assert monitored.degradation_level == 2

    def test_reset_global_degradations(self):
        from repro.text import feature_store, kernels

        kernels.set_batch_limit(64)
        kernels.set_backend_preference("merge")
        feature_store.set_cache_disabled(True)
        guard.reset_global_degradations()
        assert kernels.batch_limit() is None
        assert kernels.backend_preference() == "auto"
        assert not feature_store.cache_disabled()


class TestDiskFullMapping:
    def test_injected_enospc_becomes_diskfull_and_cleans_tmp(self, tmp_path):
        faults.arm("io:enospc", "error", times=1)
        target = tmp_path / "envelope.json"
        with pytest.raises(DiskFull, match="no space left"):
            write_envelope(target, {"k": 1})
        assert not target.exists()
        assert list(tmp_path.glob("*.tmp*")) == []
        # The fault budget is spent: the retry succeeds.
        write_envelope(target, {"k": 1})
        assert read_envelope(target) == {"k": 1}

    def test_real_oserror_passthrough(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(target) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not target.exists()
        assert list(tmp_path.glob("*.tmp*")) == []


class TestPendingProbe:
    def test_pending_consumes_firing_decisions(self):
        faults.arm("guard:hang", "hang", times=1, hang_seconds=9.0)
        first = faults.pending("guard:hang")
        assert first is not None and first.hang_seconds == 9.0
        assert faults.pending("guard:hang") is None

    def test_pending_ignores_data_kinds(self):
        faults.arm("cache:read", "corrupt", times=None)
        assert faults.pending("cache:read") is None

    def test_triggered_matches_pending(self):
        faults.arm("guard:oom", "error", times=1)
        assert faults.triggered("guard:oom")
        assert not faults.triggered("guard:oom")


class TestRunLease:
    def test_acquire_release_lifecycle(self, tmp_path):
        lease = RunLease(tmp_path)
        assert lease.acquire(timeout_seconds=1.0) == 0.0
        payload = json.loads((tmp_path / LEASE_NAME).read_text())
        assert payload["pid"] == os.getpid()
        lease.release()
        assert not (tmp_path / LEASE_NAME).exists()

    def test_reentrant_within_an_instance(self, tmp_path):
        lease = RunLease(tmp_path)
        lease.acquire(timeout_seconds=1.0)
        lease.acquire(timeout_seconds=1.0)
        lease.release()
        assert (tmp_path / LEASE_NAME).exists()  # still held at depth 1
        lease.release()
        assert not (tmp_path / LEASE_NAME).exists()

    def test_second_holder_times_out(self, tmp_path):
        holder = RunLease(tmp_path)
        holder.acquire(timeout_seconds=1.0)
        rival = RunLease(tmp_path, poll_seconds=0.01)
        with pytest.raises(LeaseHeld, match="held by pid"):
            rival.acquire(timeout_seconds=0.05)
        holder.release()

    def test_waiter_wins_after_release(self, tmp_path):
        holder = RunLease(tmp_path)
        holder.acquire(timeout_seconds=1.0)
        holder.release()
        rival = RunLease(tmp_path, poll_seconds=0.01)
        assert rival.acquire(timeout_seconds=1.0) == 0.0
        rival.release()

    def test_stale_lease_is_taken_over(self, tmp_path):
        (tmp_path / LEASE_NAME).write_text(
            json.dumps(
                {
                    "pid": 2 ** 22 + 1,  # beyond any default pid_max
                    "host": "ghost",
                    "token": "dead",
                    "acquired_at": 0.0,
                    "heartbeat_at": 0.0,
                }
            )
        )
        lease = RunLease(tmp_path)
        lease.acquire(timeout_seconds=1.0)
        payload = json.loads((tmp_path / LEASE_NAME).read_text())
        assert payload["token"] == lease.token
        lease.release()

    def test_silent_heartbeat_goes_stale(self, tmp_path):
        clock = FakeClock(1000.0)
        holder = RunLease(tmp_path, stale_after_seconds=5.0, clock=clock)
        holder.acquire(timeout_seconds=1.0)
        clock.advance(10.0)  # the holder stops heartbeating
        rival = RunLease(tmp_path, stale_after_seconds=5.0, clock=clock)
        rival.acquire(timeout_seconds=1.0)
        assert json.loads(
            (tmp_path / LEASE_NAME).read_text()
        )["token"] == rival.token
        rival.release()

    def test_refresh_reclaims_a_planted_stale_lease(self, tmp_path):
        faults.arm("lease:steal", "error", times=1)
        lease = RunLease(tmp_path)
        lease.acquire(timeout_seconds=1.0)
        lease.refresh()  # the probe plants a dead-owner thief; reclaim it
        payload = json.loads((tmp_path / LEASE_NAME).read_text())
        assert payload["token"] == lease.token
        lease.release()

    def test_refresh_raises_on_live_thief(self, tmp_path):
        lease = RunLease(tmp_path)
        lease.acquire(timeout_seconds=1.0)
        (tmp_path / LEASE_NAME).write_text(
            json.dumps(
                {
                    "pid": os.getpid(),  # alive, but not our token
                    "host": "rival",
                    "token": "someone-else",
                    "acquired_at": 0.0,
                    "heartbeat_at": lease._clock(),
                }
            )
        )
        with pytest.raises(LeaseHeld, match="taken over"):
            lease.refresh()

    def test_context_manager(self, tmp_path):
        with RunLease(tmp_path):
            assert (tmp_path / LEASE_NAME).exists()
        assert not (tmp_path / LEASE_NAME).exists()


class TestAuditLease:
    def test_unparseable(self, tmp_path):
        path = tmp_path / LEASE_NAME
        path.write_text("not json")
        assert audit_lease(path) == "unparseable lease file"

    def test_dead_owner(self, tmp_path):
        path = tmp_path / LEASE_NAME
        path.write_text(json.dumps({"pid": 2 ** 22 + 1, "heartbeat_at": 0.0}))
        assert "dead" in audit_lease(path)

    def test_silent_heartbeat(self, tmp_path):
        path = tmp_path / LEASE_NAME
        path.write_text(json.dumps({"pid": os.getpid(), "heartbeat_at": 0.0}))
        assert "silent" in audit_lease(path, now=1000.0)

    def test_healthy_lease(self, tmp_path):
        path = tmp_path / LEASE_NAME
        path.write_text(
            json.dumps({"pid": os.getpid(), "heartbeat_at": 999.0})
        )
        assert audit_lease(path, now=1000.0) is None


class TestDoctorLeaseRepair:
    def test_orphaned_lease_is_deleted(self, tmp_path):
        from repro.runtime.doctor import run_doctor

        path = tmp_path / LEASE_NAME
        path.write_text(json.dumps({"pid": 2 ** 22 + 1, "heartbeat_at": 0.0}))
        checked = run_doctor(tmp_path, check=True)
        (finding,) = checked.findings
        assert finding.category == "lease"
        assert finding.action == "would delete"
        assert path.exists()
        repaired = run_doctor(tmp_path)
        (finding,) = repaired.findings
        assert finding.action == "deleted"
        assert not path.exists()
        assert run_doctor(tmp_path).clean  # idempotent

    def test_healthy_lease_is_left_alone(self, tmp_path):
        from repro.runtime.doctor import run_doctor

        with RunLease(tmp_path):
            report = run_doctor(tmp_path)
            assert report.clean
            assert (tmp_path / LEASE_NAME).exists()


class TestJournalReload:
    def test_reload_sees_another_writers_entries(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        mine = CheckpointJournal(path)
        theirs = CheckpointJournal(path)
        theirs.mark_done("sweep:Ds5")
        assert not mine.is_done("sweep:Ds5")
        mine.reload()
        assert mine.is_done("sweep:Ds5")


class TestPidAlive:
    def test_own_pid(self):
        assert pid_alive(os.getpid())

    def test_nonsense_pids(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)
        assert not pid_alive(2 ** 22 + 1)


class TestWorkerAutoDegrade:
    def test_single_core_degrades_to_sequential(self):
        assert "cannot outrun" in guard.degrade_reason("fork", cpu_count=1)

    def test_multi_core_with_cheap_fork_keeps_workers(self):
        guard.reset_fork_overhead_cache()
        guard._FORK_OVERHEAD_CACHE["fork"] = 0.01
        try:
            assert guard.degrade_reason("fork", cpu_count=8) is None
        finally:
            guard.reset_fork_overhead_cache()

    def test_pathological_fork_overhead_degrades(self):
        guard.reset_fork_overhead_cache()
        guard._FORK_OVERHEAD_CACHE["fork"] = 3.0
        try:
            reason = guard.degrade_reason("fork", cpu_count=8)
            assert reason is not None and "overhead" in reason
        finally:
            guard.reset_fork_overhead_cache()

    def test_scheduler_degrades_effective_workers(self):
        from repro.runtime.parallel import ParallelScheduler

        degrading = ParallelScheduler(
            workers=4, auto_degrade=True, cpu_count=1
        )
        assert degrading._effective_workers(10) == 1
        pinned = ParallelScheduler(
            workers=4, auto_degrade=False, cpu_count=1
        )
        assert pinned._effective_workers(10) == 4
