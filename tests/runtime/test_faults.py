"""Tests for the seeded fault-injection registry."""

from __future__ import annotations

import pytest

from repro.runtime import faults


class TestArmFire:
    def test_unarmed_site_is_a_no_op(self):
        faults.fire("nothing:here")  # must not raise

    def test_armed_error_raises(self):
        faults.arm("matcher:X")
        with pytest.raises(faults.InjectedFault, match="matcher:X"):
            faults.fire("matcher:X")

    def test_times_budget(self):
        faults.arm("site", times=2)
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                faults.fire("site")
        faults.fire("site")  # budget exhausted -> no-op

    def test_always_firing(self):
        faults.arm("site", times=None)
        for _ in range(5):
            with pytest.raises(faults.InjectedFault):
                faults.fire("site")

    def test_custom_exception(self):
        faults.arm("site", exception=TimeoutError)
        with pytest.raises(TimeoutError):
            faults.fire("site")

    def test_disarm_and_reset(self):
        faults.arm("a")
        faults.arm("b")
        assert faults.armed_sites() == ["a", "b"]
        faults.disarm("a")
        assert faults.armed_sites() == ["b"]
        faults.reset()
        assert faults.armed_sites() == []

    def test_injected_context_manager(self):
        with faults.injected("site"):
            with pytest.raises(faults.InjectedFault):
                faults.fire("site")
        faults.fire("site")  # disarmed on exit

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            faults.arm("site", "explode")


class TestSeededProbability:
    def test_same_seed_same_trigger_pattern(self):
        def pattern(seed: int) -> list[int]:
            faults.reset()
            faults.arm("site", times=None, probability=0.3, seed=seed)
            fired = []
            for k in range(50):
                try:
                    faults.fire("site")
                except faults.InjectedFault:
                    fired.append(k)
            return fired

        first = pattern(11)
        assert pattern(11) == first
        assert pattern(12) != first
        assert 0 < len(first) < 50  # rare but not never/always


class TestCorruptText:
    def test_untouched_without_fault(self):
        assert faults.corrupt_text("cache:read", "payload") == "payload"

    def test_corrupts_when_armed(self):
        faults.arm("cache:read", "corrupt")
        garbled = faults.corrupt_text("cache:read", '{"a": 1}')
        assert garbled != '{"a": 1}'

    def test_corrupt_kind_does_not_raise_at_fire(self):
        faults.arm("cache:read", "corrupt")
        faults.fire("cache:read")  # corrupt faults only affect corrupt_text


class TestTornText:
    def test_untouched_without_fault(self):
        assert faults.torn_text("journal:append", "line\n") == "line\n"

    def test_torn_prefix_with_garbled_tail(self):
        faults.arm("journal:append", "torn")
        text = '{"unit": "sweep:Ds5", "ok": true}\n' * 4
        torn = faults.torn_text("journal:append", text)
        assert 0 < len(torn) < len(text)
        assert torn.endswith("\x1a")
        assert text.startswith(torn[:-1])

    def test_torn_is_deterministic_per_seed(self):
        def tear(seed: int) -> str:
            faults.reset()
            faults.arm("journal:append", "torn", seed=seed)
            return faults.torn_text("journal:append", "x" * 400)

        assert tear(3) == tear(3)
        assert tear(3) != tear(4)

    def test_torn_kind_does_not_raise_at_fire(self):
        faults.arm("journal:append", "torn")
        faults.fire("journal:append")  # torn faults only affect torn_text


class TestWildcardSites:
    """Satellite: `matcher:*` must govern every matcher site."""

    def test_wildcard_fires_for_matching_site(self):
        faults.arm("matcher:*", times=None)
        with pytest.raises(faults.InjectedFault, match="matcher:DITTO"):
            faults.fire("matcher:DITTO (15)")
        with pytest.raises(faults.InjectedFault):
            faults.fire("matcher:ZeroER")

    def test_wildcard_ignores_other_prefixes(self):
        faults.arm("matcher:*", times=None)
        faults.fire("sweep:Ds5")  # must not raise
        faults.fire("cache:read")

    def test_exact_site_beats_wildcard(self):
        faults.arm("matcher:*", times=None, exception=TimeoutError)
        faults.arm("matcher:DITTO (15)", times=None, exception=KeyError)
        with pytest.raises(KeyError):
            faults.fire("matcher:DITTO (15)")
        with pytest.raises(TimeoutError):
            faults.fire("matcher:ZeroER")

    def test_longest_wildcard_prefix_wins(self):
        faults.arm("matcher:*", times=None, exception=TimeoutError)
        faults.arm("matcher:DITTO*", times=None, exception=KeyError)
        with pytest.raises(KeyError):
            faults.fire("matcher:DITTO (15)")
        with pytest.raises(TimeoutError):
            faults.fire("matcher:GNEM (10)")

    def test_wildcard_budget_is_shared_across_sites(self):
        faults.arm("matcher:*", times=1)
        with pytest.raises(faults.InjectedFault):
            faults.fire("matcher:DITTO (15)")
        faults.fire("matcher:ZeroER")  # the single shot is spent

    def test_wildcard_governs_corrupt_text(self):
        faults.arm("cache:*", "corrupt")
        assert faults.corrupt_text("cache:read", "payload") != "payload"

    def test_wildcard_governs_torn_text(self):
        faults.arm("journal:*", "torn")
        torn = faults.torn_text("journal:append", "x" * 100)
        assert len(torn) < 100 and torn.endswith("\x1a")


class TestSpecParsing:
    def test_basic_spec(self):
        assert faults.parse_spec("matcher:DITTO (15)=error") == (
            "matcher:DITTO (15)",
            "error",
            1,
        )

    def test_times_and_star(self):
        assert faults.parse_spec("cache:read=corrupt:3")[2] == 3
        assert faults.parse_spec("sweep:Ds4=hang:*")[2] is None

    def test_torn_and_kill_kinds(self):
        assert faults.parse_spec("journal:append=torn") == (
            "journal:append", "torn", 1
        )
        assert faults.parse_spec("matcher:*=kill") == ("matcher:*", "kill", 1)

    @pytest.mark.parametrize(
        "bad",
        ["no-equals", "=error", "site=explode", "site=error:0", "site=error:x"],
    )
    def test_bad_specs(self, bad):
        with pytest.raises(ValueError):
            faults.parse_spec(bad)

    def test_arm_from_spec(self):
        site = faults.arm_from_spec("matcher:Y=error:2")
        assert site == "matcher:Y"
        assert "matcher:Y" in faults.armed_sites()
