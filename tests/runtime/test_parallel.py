"""Tests for the process-pool scheduler (repro.runtime.parallel)."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.runtime import ExecutionPolicy
from repro.runtime.parallel import ParallelScheduler, WorkUnit


# Unit functions must be top-level so the pool can pickle them.
def _double(value: int) -> int:
    return 2 * value


def _double_after(value: int, delay: float) -> int:
    time.sleep(delay)
    return 2 * value


def _boom(value: int) -> int:
    raise ValueError(f"boom {value}")


def _fail_once_then(value: int, marker_dir: str) -> int:
    """Raises on the first call (per marker file), succeeds after."""
    marker = os.path.join(marker_dir, "attempted")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise ValueError("transient")
    return value


def _kill_self(value: int) -> int:
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - never reached


def _units(fn, values, **extra):
    return [
        WorkUnit(unit_id=f"unit:{value}", fn=fn, args=(value, *extra.values()))
        for value in values
    ]


NO_RETRY = ExecutionPolicy(max_attempts=1, backoff_base=0.0)


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelScheduler(workers=0)

    def test_bool_workers_rejected(self):
        with pytest.raises(TypeError):
            ParallelScheduler(workers=True)

    def test_repr(self):
        assert "workers=2" in repr(ParallelScheduler(workers=2))


class TestSequentialPath:
    def test_runs_inline_in_order(self):
        scheduler = ParallelScheduler(workers=1)
        result = scheduler.run(_units(_double, [3, 1, 2]), policy=NO_RETRY)
        assert [o.value for o in result.outcomes] == [6, 2, 4]
        assert result.workers == 1
        # Inline means this very process did the work.
        assert {r.worker_pid for r in result.unit_reports} == {os.getpid()}

    def test_single_unit_stays_inline_even_with_workers(self):
        scheduler = ParallelScheduler(workers=4)
        result = scheduler.run(_units(_double, [5]), policy=NO_RETRY)
        assert result.workers == 1
        assert result.outcomes[0].value == 10


class TestParallelPath:
    def test_merge_is_submission_order_not_completion_order(self):
        # The first unit sleeps; a completion-order merge would invert it.
        scheduler = ParallelScheduler(workers=2)
        units = [
            WorkUnit("slow", _double_after, args=(1, 0.3)),
            WorkUnit("fast", _double_after, args=(2, 0.0)),
        ]
        result = scheduler.run(units, policy=NO_RETRY)
        assert [o.value for o in result.outcomes] == [2, 4]

    def test_work_happens_in_child_processes(self):
        scheduler = ParallelScheduler(workers=2)
        result = scheduler.run(_units(_double, [1, 2, 3, 4]), policy=NO_RETRY)
        assert all(r.worker_pid != os.getpid() for r in result.unit_reports)
        assert result.workers == 2

    def test_failures_marshalled_as_records(self):
        scheduler = ParallelScheduler(workers=2)
        units = [
            WorkUnit("ok", _double, args=(1,), phase="matcher"),
            WorkUnit("bad", _boom, args=(7,), phase="matcher"),
        ]
        result = scheduler.run(units, policy=NO_RETRY)
        ok, bad = result.outcomes
        assert ok.ok and ok.value == 2
        assert not bad.ok
        assert bad.failure.unit_id == "bad"
        assert bad.failure.phase == "matcher"
        assert bad.failure.exception_type == "ValueError"
        assert result.failures() == [bad.failure]

    def test_on_result_streams_in_completion_order(self):
        # The slow unit is submitted first; the callback must see the
        # fast one before it, while the merged outcomes stay
        # submission-ordered. This is what lets callers checkpoint
        # completed units before the batch finishes.
        scheduler = ParallelScheduler(workers=2)
        units = [
            WorkUnit("slow", _double_after, args=(1, 0.4)),
            WorkUnit("fast", _double_after, args=(2, 0.0)),
        ]
        seen = []
        result = scheduler.run(
            units,
            policy=NO_RETRY,
            on_result=lambda index, outcome: seen.append(
                (index, outcome.value)
            ),
        )
        assert sorted(seen) == [(0, 2), (1, 4)]
        assert seen[0] == (1, 4)  # fast unit arrived first
        assert [o.value for o in result.outcomes] == [2, 4]

    def test_on_result_fires_on_inline_path(self):
        scheduler = ParallelScheduler(workers=1)
        seen = []
        scheduler.run(
            _units(_double, [1, 2]),
            policy=NO_RETRY,
            on_result=lambda index, outcome: seen.append(index),
        )
        assert seen == [0, 1]

    def test_policy_retries_inside_worker(self, tmp_path):
        # chunksize=1 and a shared marker file: the retry happens in the
        # same worker, driven by the policy that crossed the fork.
        policy = ExecutionPolicy(max_attempts=2, backoff_base=0.0)
        scheduler = ParallelScheduler(workers=2)
        result = scheduler.run(
            [WorkUnit("retry", _fail_once_then, args=(9, str(tmp_path)))],
            policy=policy,
        )
        assert result.outcomes[0].ok
        assert result.outcomes[0].value == 9


class TestWorkerCrash:
    """Satellite: a SIGKILLed worker surfaces a record, never a hang."""

    def test_sigkilled_unit_becomes_worker_crash_record(self):
        scheduler = ParallelScheduler(workers=2)
        units = [
            WorkUnit("doomed", _kill_self, args=(1,), phase="matcher"),
            *_units(_double, [1, 2, 3]),
        ]
        result = scheduler.run(units, policy=NO_RETRY)
        doomed = result.outcomes[0]
        assert not doomed.ok
        assert doomed.failure.unit_id == "doomed"
        assert doomed.failure.exception_type == "WorkerCrash"
        assert "exited" in doomed.failure.message
        # The queue kept draining: every other unit still completed.
        assert [o.value for o in result.outcomes[1:]] == [2, 4, 6]
        assert result.failures() == [doomed.failure]

    def test_crash_report_carries_dead_worker_pid(self):
        scheduler = ParallelScheduler(workers=2)
        units = [WorkUnit("doomed", _kill_self, args=(1,)), *_units(_double, [5])]
        result = scheduler.run(units, policy=NO_RETRY)
        crash_report = result.unit_reports[0]
        assert crash_report.unit_id == "doomed"
        assert not crash_report.ok
        assert crash_report.worker_pid != os.getpid()


class TestReports:
    def test_worker_reports_aggregate_across_runs(self):
        scheduler = ParallelScheduler(workers=1)
        scheduler.run(_units(_double, [1, 2]), policy=NO_RETRY)
        scheduler.run(_units(_double, [3]), policy=NO_RETRY)
        reports = scheduler.worker_reports()
        assert sum(report.units for report in reports) == 3
        assert all(report.busy_seconds >= 0.0 for report in reports)
        scheduler.reset_reports()
        assert scheduler.worker_reports() == []

    def test_unit_reports_carry_outcome_flag(self):
        scheduler = ParallelScheduler(workers=1)
        units = [
            WorkUnit("good", _double, args=(1,)),
            WorkUnit("bad", _boom, args=(1,)),
        ]
        result = scheduler.run(units, policy=NO_RETRY)
        assert [r.ok for r in result.unit_reports] == [True, False]
        assert [r.unit_id for r in result.unit_reports] == ["good", "bad"]
