"""Runtime-test fixtures: leave no fault armed behind."""

from __future__ import annotations

import pytest

from repro.runtime import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()
