"""Tests for ExecutionPolicy: retries, backoff, deadlines, failure records."""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    DeadlineExceeded,
    ExecutionOutcome,
    ExecutionPolicy,
    FailureRecord,
)


def no_sleep_policy(**kwargs) -> tuple[ExecutionPolicy, list[float]]:
    """A policy whose sleeps are recorded instead of performed."""
    slept: list[float] = []
    policy = ExecutionPolicy(sleep=slept.append, **kwargs)
    return policy, slept


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ExecutionPolicy(max_attempts=0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            ExecutionPolicy(jitter=1.5)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            ExecutionPolicy(deadline_seconds=0)


class TestExecute:
    def test_success_returns_value(self):
        policy, _ = no_sleep_policy(max_attempts=1)
        outcome = policy.execute(lambda: 42, unit_id="u", phase="p")
        assert outcome.ok and outcome.value == 42 and outcome.failure is None

    def test_retries_until_success(self):
        policy, slept = no_sleep_policy(max_attempts=3)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "done"

        outcome = policy.execute(flaky, unit_id="u", phase="p")
        assert outcome.ok and outcome.value == "done"
        assert len(calls) == 3
        assert len(slept) == 2  # one backoff per failed attempt

    def test_exhausted_attempts_become_failure_record(self):
        policy, _ = no_sleep_policy(max_attempts=2)

        def always():
            raise ValueError("boom")

        outcome = policy.execute(always, unit_id="sweep:Ds4", phase="sweep")
        assert not outcome.ok
        failure = outcome.failure
        assert isinstance(failure, FailureRecord)
        assert failure.unit_id == "sweep:Ds4"
        assert failure.phase == "sweep"
        assert failure.attempts == 2
        assert failure.exception_type == "ValueError"
        assert "boom" in failure.message
        assert failure.elapsed_seconds >= 0.0

    def test_non_retryable_exception_propagates(self):
        policy, _ = no_sleep_policy(max_attempts=3, retry_on=(ValueError,))

        def wrong_kind():
            raise KeyError("not on the allow-list")

        with pytest.raises(KeyError):
            policy.execute(wrong_kind, unit_id="u", phase="p")


class TestBackoff:
    def test_deterministic_jitter(self):
        a = ExecutionPolicy(seed=7)
        b = ExecutionPolicy(seed=7)
        assert a.backoff_delay("unit", 1) == b.backoff_delay("unit", 1)
        assert a.backoff_delay("unit", 2) == b.backoff_delay("unit", 2)

    def test_seed_and_unit_change_jitter(self):
        base = ExecutionPolicy(seed=0).backoff_delay("unit", 1)
        assert ExecutionPolicy(seed=1).backoff_delay("unit", 1) != base
        assert ExecutionPolicy(seed=0).backoff_delay("other", 1) != base

    def test_exponential_growth(self):
        policy = ExecutionPolicy(jitter=0.0, backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_delay("u", 1) == pytest.approx(0.1)
        assert policy.backoff_delay("u", 2) == pytest.approx(0.2)
        assert policy.backoff_delay("u", 3) == pytest.approx(0.4)

    def test_jitter_bounds(self):
        policy = ExecutionPolicy(jitter=0.5, backoff_base=1.0, backoff_factor=1.0)
        for attempt in range(1, 20):
            delay = policy.backoff_delay("u", attempt)
            assert 0.5 <= delay <= 1.5


class TestDeadline:
    def test_deadline_trips_on_hang(self):
        policy = ExecutionPolicy(max_attempts=1, deadline_seconds=0.05)
        outcome = policy.execute(
            lambda: time.sleep(2.0), unit_id="slow", phase="p"
        )
        assert not outcome.ok
        assert outcome.failure.exception_type == "DeadlineExceeded"

    def test_deadline_captured_even_with_narrow_retry_on(self):
        policy = ExecutionPolicy(
            max_attempts=1, deadline_seconds=0.05, retry_on=(ValueError,)
        )
        outcome = policy.execute(
            lambda: time.sleep(2.0), unit_id="slow", phase="p"
        )
        assert not outcome.ok
        assert outcome.failure.exception_type == "DeadlineExceeded"

    def test_fast_unit_passes_deadline(self):
        policy = ExecutionPolicy(max_attempts=1, deadline_seconds=5.0)
        outcome = policy.execute(lambda: "quick", unit_id="u", phase="p")
        assert outcome.ok and outcome.value == "quick"

    def test_worker_exception_transported(self):
        policy, _ = no_sleep_policy(max_attempts=1, deadline_seconds=5.0)

        def failing():
            raise ValueError("from the worker thread")

        outcome = policy.execute(failing, unit_id="u", phase="p")
        assert not outcome.ok
        assert outcome.failure.exception_type == "ValueError"


class TestFailureRecord:
    def test_round_trip(self):
        record = FailureRecord(
            unit_id="sweep:Ds4",
            phase="sweep",
            attempts=3,
            exception_type="ValueError",
            message="boom",
            elapsed_seconds=1.25,
        )
        assert FailureRecord.from_dict(record.to_dict()) == record

    def test_describe_mentions_everything(self):
        record = FailureRecord("u", "matcher", 2, "KeyError", "x", 0.1)
        text = record.describe()
        assert "u" in text and "matcher" in text and "KeyError" in text

    def test_outcome_ok_property(self):
        assert ExecutionOutcome(value=1).ok
        record = FailureRecord("u", "p", 1, "E", "m", 0.0)
        assert not ExecutionOutcome(failure=record).ok
