"""Tests for atomic writes, the cache envelope, and quarantine."""

from __future__ import annotations

import json

import pytest

from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    CacheCorruption,
    CacheVersionMismatch,
    atomic_write_text,
    atomic_writer,
    quarantine,
    read_cached_payload,
    read_envelope,
    write_envelope,
)
from repro.runtime import faults


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "sub" / "file.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_no_tmp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "file.txt", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "original")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial")
                raise RuntimeError("interrupted mid-write")
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]

    def test_injected_write_fault(self, tmp_path):
        target = tmp_path / "file.txt"
        with faults.injected("io:write"):
            with pytest.raises(faults.InjectedFault):
                atomic_write_text(target, "data")
        assert not target.exists()


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"scores": [1, 2, 3]})
        assert read_envelope(path) == {"scores": [1, 2, 3]}

    def test_envelope_layout(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"a": 1})
        raw = json.loads(path.read_text())
        assert raw["cache_schema_version"] == CACHE_SCHEMA_VERSION
        assert set(raw) == {"cache_schema_version", "checksum", "payload"}

    def test_checksum_detects_tampering(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"f1": 0.5})
        raw = json.loads(path.read_text())
        raw["payload"]["f1"] = 0.99  # bit-flip the payload, keep the envelope
        path.write_text(json.dumps(raw))
        with pytest.raises(CacheCorruption, match="checksum"):
            read_envelope(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"a": 1}, schema_version=CACHE_SCHEMA_VERSION + 1)
        with pytest.raises(CacheVersionMismatch):
            read_envelope(path)

    def test_legacy_bare_payload_is_corrupt(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"old-style": "payload"}')
        with pytest.raises(CacheCorruption, match="envelope"):
            read_envelope(path)

    def test_invalid_json_is_corrupt(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{ truncated")
        with pytest.raises(CacheCorruption, match="JSON"):
            read_envelope(path)


class TestGuardedRead:
    def test_missing_file_is_a_miss(self, tmp_path):
        result = read_cached_payload(tmp_path / "absent.json")
        assert not result.hit and result.quarantined is None

    def test_hit(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"a": 1})
        result = read_cached_payload(path)
        assert result.hit and result.payload == {"a": 1}

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("garbage")
        result = read_cached_payload(path)
        assert not result.hit
        assert result.quarantined is not None
        assert result.quarantined.name == "entry.json.quarantined"
        assert not path.exists()
        assert result.error is not None

    def test_stale_version_quarantined_as_miss(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"a": 1}, schema_version=99)
        result = read_cached_payload(path)
        assert not result.hit and result.quarantined is not None

    def test_injected_corruption_hits_quarantine_path(self, tmp_path):
        path = tmp_path / "entry.json"
        write_envelope(path, {"a": 1})
        with faults.injected("cache:read", "corrupt"):
            result = read_cached_payload(path)
        assert not result.hit and result.quarantined is not None
        # The entry is quarantined on disk; a later clean read is a miss.
        assert not read_cached_payload(path).hit


class TestQuarantine:
    def test_moves_file_aside(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("x")
        moved = quarantine(path)
        assert moved.exists() and not path.exists()

    def test_overwrites_previous_quarantine(self, tmp_path):
        path = tmp_path / "bad.json"
        (tmp_path / "bad.json.quarantined").write_text("older")
        path.write_text("newer")
        moved = quarantine(path)
        assert moved.read_text() == "newer"
