"""Tests for the checkpoint journal."""

from __future__ import annotations

from repro.runtime import CheckpointJournal


class TestJournal:
    def test_starts_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "checkpoint.journal")
        assert len(journal) == 0
        assert not journal.is_done("sweep:Ds1")

    def test_mark_and_query(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "checkpoint.journal")
        journal.mark_done("sweep:Ds1", cache="suite_Ds1.json")
        assert journal.is_done("sweep:Ds1")
        assert journal.info("sweep:Ds1") == {"cache": "suite_Ds1.json"}
        assert journal.completed == frozenset({"sweep:Ds1"})

    def test_survives_restart(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        first = CheckpointJournal(path)
        first.mark_done("sweep:Ds1")
        first.mark_done("assess:Ds1")
        reopened = CheckpointJournal(path)
        assert reopened.completed == {"sweep:Ds1", "assess:Ds1"}

    def test_idempotent_mark(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        journal = CheckpointJournal(path)
        journal.mark_done("unit", k=1)
        journal.mark_done("unit", k=1)
        assert len(path.read_text().splitlines()) == 1

    def test_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        journal = CheckpointJournal(path)
        journal.mark_done("sweep:Ds1")
        journal.mark_done("sweep:Ds2")
        # Simulate a kill mid-append: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        reopened = CheckpointJournal(path)
        assert reopened.is_done("sweep:Ds1")
        assert not reopened.is_done("sweep:Ds2")
        # The journal stays appendable after recovery.
        reopened.mark_done("sweep:Ds2")
        assert CheckpointJournal(path).completed == {"sweep:Ds1", "sweep:Ds2"}

    def test_tolerates_junk_lines(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        path.write_text('not json\n{"unit": "ok:1", "info": {}}\n[1, 2]\n')
        journal = CheckpointJournal(path)
        assert journal.completed == frozenset({"ok:1"})

    def test_clear(self, tmp_path):
        path = tmp_path / "checkpoint.journal"
        journal = CheckpointJournal(path)
        journal.mark_done("unit")
        journal.clear()
        assert len(journal) == 0 and not path.exists()
        assert not CheckpointJournal(path).is_done("unit")
