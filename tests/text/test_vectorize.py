"""Tests for repro.text.vectorize."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vectorize import TfIdfVectorizer, Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("alpha")
        second = vocabulary.add("beta")
        assert first == 0 and second == 1
        assert vocabulary.id_of("alpha") == 0
        assert vocabulary.token_of(1) == "beta"
        assert "alpha" in vocabulary and "gamma" not in vocabulary

    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("x") == vocabulary.add("x")
        assert len(vocabulary) == 1

    def test_unknown_token(self):
        assert Vocabulary().id_of("missing") is None


class TestTfIdf:
    @pytest.fixture()
    def fitted(self) -> TfIdfVectorizer:
        corpus = [
            ["common", "rare1"],
            ["common", "rare2"],
            ["common", "rare3"],
            ["common", "common2"],
        ]
        return TfIdfVectorizer().fit(corpus)

    def test_fit_on_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().weights(["a"])

    def test_rare_tokens_weigh_more(self, fitted):
        assert fitted.idf("rare1") > fitted.idf("common")

    def test_unseen_token_gets_max_idf(self, fitted):
        assert fitted.idf("never_seen") >= fitted.idf("rare1")

    def test_weights_normalized(self, fitted):
        weights = fitted.weights(["common", "rare1", "rare1"])
        norm = sum(w * w for w in weights.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_weights_empty(self, fitted):
        assert fitted.weights([]) == {}

    def test_summarize_keeps_rarest(self, fitted):
        kept = fitted.summarize(["common", "rare1", "common2"], 1)
        assert kept == ["rare1"]

    def test_summarize_preserves_order(self, fitted):
        tokens = ["rare1", "common", "rare2"]
        kept = fitted.summarize(tokens, 2)
        assert kept == ["rare1", "rare2"]

    def test_summarize_noop_when_short(self, fitted):
        tokens = ["common"]
        assert fitted.summarize(tokens, 5) == tokens

    def test_summarize_negative_raises(self, fitted):
        with pytest.raises(ValueError):
            fitted.summarize(["a"], -1)

    def test_cosine_identical(self, fitted):
        assert fitted.cosine(["common", "rare1"], ["common", "rare1"]) == pytest.approx(1.0)

    def test_cosine_disjoint(self, fitted):
        assert fitted.cosine(["rare1"], ["rare2"]) == 0.0

    @given(
        st.lists(
            st.sampled_from(["common", "rare1", "rare2", "zz"]),
            min_size=1,
            max_size=6,
        )
    )
    def test_cosine_bounds(self, tokens):
        corpus = [["common", "rare1"], ["common", "rare2"]]
        vectorizer = TfIdfVectorizer().fit(corpus)
        assert 0.0 <= vectorizer.cosine(tokens, ["common"]) <= 1.0
