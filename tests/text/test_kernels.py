"""Unit tests for the vectorized set-similarity kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs import Observability
from repro.text.kernels import (
    BITSET_MAX_VOCAB,
    CharTable,
    PackedRows,
    QGramAlphabetOverflow,
    QGramCodec,
    RecordIncidence,
    TokenInterner,
    batch_intersection_counts,
    densify_csr,
    gather_csr,
    pack_rows,
    set_similarity_matrix,
    set_similarity_matrix_indexed,
)
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import qgrams


def _random_sets(rng, n, vocab, max_size=12):
    return [
        set(rng.choice(vocab, size=int(rng.integers(0, max_size)), replace=False).tolist())
        for __ in range(n)
    ]


class TestTokenInterner:
    def test_dense_ids_in_first_sight_order(self):
        interner = TokenInterner()
        assert interner.intern("b") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 0
        assert len(interner) == 2

    def test_encode_set_is_sorted(self):
        interner = TokenInterner()
        row = interner.encode_set({"z", "a", "m"})
        assert row.dtype == np.int64
        assert list(row) == sorted(row)
        assert len(row) == 3

    def test_encode_empty_set(self):
        assert len(TokenInterner().encode_set(set())) == 0


class TestPackedRows:
    def test_pack_rows_round_trip(self):
        rows = [
            np.array([1, 4], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([0, 2, 5], dtype=np.int64),
        ]
        packed = pack_rows(rows)
        assert packed.n_rows == 3
        assert list(packed.sizes()) == [2, 0, 3]
        for index, row in enumerate(rows):
            assert np.array_equal(packed.row(index), row)

    def test_pair_keys_fold(self):
        packed = pack_rows(
            [np.array([1, 2], dtype=np.int64), np.array([0], dtype=np.int64)]
        )
        assert list(packed.pair_keys(10)) == [1, 2, 10]

    def test_empty(self):
        packed = pack_rows([])
        assert packed.n_rows == 0
        assert len(packed.ids) == 0


class TestCharTable:
    def test_ids_start_at_one_and_stay_stable(self):
        table = CharTable()
        first = table.map(np.frombuffer("abc".encode("utf-32-le"), dtype=np.uint32))
        assert first.min() >= 1
        again = table.map(np.frombuffer("cba".encode("utf-32-le"), dtype=np.uint32))
        assert set(first.tolist()) == set(again.tolist())
        assert np.array_equal(first[::-1], again)

    def test_growth_preserves_existing_ids(self):
        table = CharTable()
        before = table.map(np.frombuffer("ab".encode("utf-32-le"), dtype=np.uint32))
        table.map(np.frombuffer("xyz".encode("utf-32-le"), dtype=np.uint32))
        after = table.map(np.frombuffer("ab".encode("utf-32-le"), dtype=np.uint32))
        assert np.array_equal(before, after)
        assert len(table) == 5

    def test_empty_input(self):
        assert len(CharTable().map(np.empty(0, dtype=np.uint32))) == 0


def _codec_sets(codec, table, texts):
    """Distinct-code sets per text, via the raw encode + set()."""
    rows = codec.encode(
        [
            table.map(np.frombuffer(t.encode("utf-32-le"), dtype=np.uint32))
            for t in texts
        ]
    )
    return [set(row.tolist()) for row in rows]


class TestQGramCodec:
    @pytest.mark.parametrize("q", [2, 3, 5, 10])
    def test_distinct_codes_match_qgrams(self, q):
        texts = [
            "record linkage benchmarks",
            "aaaaaa",
            "ab",
            "",
            "matching algorithms at scale",
        ]
        table = CharTable()
        codec = QGramCodec(q, table)
        for text, codes in zip(texts, _codec_sets(codec, table, texts)):
            assert len(codes) == len(qgrams(text, q))

    def test_codes_are_content_derived_across_batches(self):
        table = CharTable()
        codec = QGramCodec(3, table)
        first = _codec_sets(codec, table, ["benchmark"])[0]
        # New characters join the table between the two batches.
        _codec_sets(codec, table, ["zzz qqq xxx"])
        second = _codec_sets(codec, table, ["benchmark"])[0]
        assert first == second

    def test_equal_grams_share_codes_across_texts(self):
        table = CharTable()
        codec = QGramCodec(2, table)
        left, right = _codec_sets(codec, table, ["abcd", "bcde"])
        # Shared 2-grams: "bc", "cd".
        assert len(left & right) == 2

    def test_short_string_padding_never_collides(self):
        # A short string's zero-padded code must differ from every full
        # q-gram code (character ids start at 1).
        table = CharTable()
        codec = QGramCodec(3, table)
        short, full = _codec_sets(codec, table, ["ab", "aabb"])
        assert not short & full

    def test_alphabet_overflow_raises(self):
        table = CharTable()
        # q=10 -> 6 bits -> at most 63 distinct characters.
        codec = QGramCodec(10, table)
        assert codec.capacity == 63
        alphabet = "".join(chr(0x100 + i) for i in range(codec.capacity + 1))
        with pytest.raises(QGramAlphabetOverflow):
            _codec_sets(codec, table, [alphabet])

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramCodec(0, CharTable())

    def test_empty_batch(self):
        assert QGramCodec(2, CharTable()).encode([]) == []


class TestDensifyCsr:
    def test_dedups_and_sorts_rows(self):
        rows = [
            np.array([900, 100, 900, 500], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([500, 500], dtype=np.int64),
        ]
        indptr, ids, vocab = densify_csr(rows)
        assert vocab == 3  # {100, 500, 900}
        assert list(indptr) == [0, 3, 3, 4]
        assert list(ids[0:3]) == [0, 1, 2]
        assert list(ids[3:4]) == [1]

    def test_rank_order_matches_code_order(self):
        rows = [np.array([7, -5, 1_000_000_000_000], dtype=np.int64)]
        __, ids, __ = densify_csr(rows)
        assert list(ids) == [0, 1, 2][: len(ids)]

    def test_empty_inputs(self):
        indptr, ids, vocab = densify_csr([])
        assert list(indptr) == [0] and len(ids) == 0 and vocab == 0
        indptr, ids, vocab = densify_csr([np.empty(0, dtype=np.int64)])
        assert list(indptr) == [0, 0] and len(ids) == 0 and vocab == 0


class TestGatherCsr:
    def test_matches_per_row_slicing(self):
        rng = np.random.default_rng(1)
        rows = [
            np.sort(rng.choice(50, size=int(rng.integers(0, 8)), replace=False)).astype(np.int64)
            for __ in range(20)
        ]
        packed = pack_rows(rows)
        pick = rng.integers(0, 20, size=37)
        gathered = gather_csr(packed.indptr, packed.ids, pick)
        for out_row, source in enumerate(pick):
            assert np.array_equal(gathered.row(out_row), rows[source])

    def test_empty_selection(self):
        packed = pack_rows([np.array([1], dtype=np.int64)])
        gathered = gather_csr(packed.indptr, packed.ids, np.empty(0, dtype=np.int64))
        assert gathered.n_rows == 0


class TestBatchIntersections:
    def test_randomized_against_python_sets(self):
        rng = np.random.default_rng(2)
        vocab = 40
        lefts = _random_sets(rng, 60, vocab)
        rights = _random_sets(rng, 60, vocab)
        left = pack_rows([np.array(sorted(s), dtype=np.int64) for s in lefts])
        right = pack_rows([np.array(sorted(s), dtype=np.int64) for s in rights])
        counts = batch_intersection_counts(left, right, vocab)
        expected = [len(a & b) for a, b in zip(lefts, rights)]
        assert list(counts) == expected

    def test_row_mismatch_raises(self):
        one = pack_rows([np.array([0], dtype=np.int64)])
        two = pack_rows([np.array([0], dtype=np.int64)] * 2)
        with pytest.raises(ValueError):
            batch_intersection_counts(one, two, 5)

    def test_empty_sides(self):
        left = pack_rows([np.empty(0, dtype=np.int64)] * 3)
        right = pack_rows([np.array([1], dtype=np.int64)] * 3)
        assert list(batch_intersection_counts(left, right, 5)) == [0, 0, 0]


class TestRecordIncidence:
    @pytest.mark.parametrize("vocab", [64, BITSET_MAX_VOCAB + 1])
    def test_backends_match_python_sets(self, vocab):
        rng = np.random.default_rng(3)
        sets = _random_sets(rng, 30, vocab)
        packed = pack_rows([np.array(sorted(s), dtype=np.int64) for s in sets])
        incidence = RecordIncidence(packed.indptr, packed.ids, vocab)
        left_index = rng.integers(0, 30, size=100)
        right_index = rng.integers(0, 30, size=100)
        counts = incidence.intersections(left_index, right_index)
        expected = [
            len(sets[a] & sets[b]) for a, b in zip(left_index, right_index)
        ]
        assert list(counts) == expected

    def test_fallback_without_scipy(self, monkeypatch):
        import repro.text.kernels as kernels

        monkeypatch.setattr(kernels, "_sparse", None)
        vocab = BITSET_MAX_VOCAB + 1
        rows = [
            np.array([0, vocab - 1], dtype=np.int64),
            np.array([vocab - 1], dtype=np.int64),
        ]
        packed = pack_rows(rows)
        incidence = RecordIncidence(packed.indptr, packed.ids, vocab)
        assert incidence._matrix is None and incidence._bits is None
        counts = incidence.intersections(
            np.array([0, 0]), np.array([1, 0])
        )
        assert list(counts) == [1, 2]

    def test_bitset_words_with_shared_cells(self):
        # Multiple ids landing in the same uint64 word must all survive
        # the bitset build (a plain fancy-index |= would drop some).
        rows = [np.array([0, 1, 2, 63, 64], dtype=np.int64)]
        packed = pack_rows(rows)
        incidence = RecordIncidence(packed.indptr, packed.ids, 128)
        assert incidence._bits is not None
        assert list(incidence.intersections(np.array([0]), np.array([0]))) == [5]

    def test_empty_incidence(self):
        packed = pack_rows([np.empty(0, dtype=np.int64)])
        incidence = RecordIncidence(packed.indptr, packed.ids, 0)
        assert list(incidence.intersections(np.array([0]), np.array([0]))) == [0]


class TestMeasureKernels:
    def test_matrix_matches_scalar_measures(self):
        rng = np.random.default_rng(4)
        vocab = 25
        lefts = _random_sets(rng, 50, vocab) + [set(), set()]
        rights = _random_sets(rng, 50, vocab) + [set(), {1, 2}]
        measures = ("cosine", "dice", "jaccard", "overlap")
        scalar_fns = (
            cosine_similarity,
            dice_similarity,
            jaccard_similarity,
            overlap_coefficient,
        )
        matrix = set_similarity_matrix(
            [np.array(sorted(s), dtype=np.int64) for s in lefts],
            [np.array(sorted(s), dtype=np.int64) for s in rights],
            vocab,
            measures,
        )
        for row, (a, b) in enumerate(zip(lefts, rights)):
            for column, fn in enumerate(scalar_fns):
                assert matrix[row, column] == fn(a, b)

    def test_unknown_measure_raises(self):
        with pytest.raises(KeyError):
            set_similarity_matrix([], [], 1, measures=("euclidean",))

    def test_indexed_entry_emits_kernel_metrics(self):
        packed = pack_rows(
            [np.array([0, 1], dtype=np.int64), np.array([1], dtype=np.int64)]
        )
        incidence = RecordIncidence(packed.indptr, packed.ids, 2)
        with obs.use(Observability()):
            matrix = set_similarity_matrix_indexed(
                incidence, np.array([0]), np.array([1])
            )
            assert obs.counter("kernel.batches") == 1
            assert obs.counter("kernel.pairs") == 1
        assert matrix.shape == (1, 3)
        assert matrix[0, 2] == pytest.approx(0.5)  # jaccard {0,1} vs {1}
