"""Tests for repro.text.similarity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)

token_sets = st.sets(
    st.text(alphabet="abcde", min_size=1, max_size=4), min_size=0, max_size=8
)
words = st.text(alphabet="abcdefghij", min_size=0, max_size=12)


class TestSetSimilarities:
    def test_identical_sets(self):
        s = {"a", "b", "c"}
        assert cosine_similarity(s, s) == 1.0
        assert jaccard_similarity(s, s) == 1.0
        assert dice_similarity(s, s) == 1.0
        assert overlap_coefficient(s, s) == 1.0

    def test_disjoint_sets(self):
        a, b = {"a"}, {"b"}
        assert cosine_similarity(a, b) == 0.0
        assert jaccard_similarity(a, b) == 0.0
        assert dice_similarity(a, b) == 0.0
        assert overlap_coefficient(a, b) == 0.0

    def test_empty_sets(self):
        assert cosine_similarity(set(), {"a"}) == 0.0
        assert jaccard_similarity(set(), set()) == 0.0
        assert dice_similarity(set(), set()) == 0.0
        assert overlap_coefficient(set(), set()) == 0.0

    def test_known_values(self):
        a, b = {"x", "y"}, {"y", "z"}
        assert cosine_similarity(a, b) == pytest.approx(1 / 2)
        assert jaccard_similarity(a, b) == pytest.approx(1 / 3)
        assert dice_similarity(a, b) == pytest.approx(1 / 2)
        assert overlap_coefficient(a, b) == pytest.approx(1 / 2)

    @given(token_sets, token_sets)
    def test_bounds_and_symmetry(self, a, b):
        for fn in (
            cosine_similarity,
            jaccard_similarity,
            dice_similarity,
            overlap_coefficient,
        ):
            value = fn(a, b)
            assert 0.0 <= value <= 1.0
            assert value == pytest.approx(fn(b, a))

    @given(token_sets, token_sets)
    def test_jaccard_le_dice_le_overlap(self, a, b):
        """For non-empty sets: Jaccard <= Dice <= overlap coefficient."""
        if a and b:
            assert (
                jaccard_similarity(a, b)
                <= dice_similarity(a, b) + 1e-12
            )
            assert dice_similarity(a, b) <= overlap_coefficient(a, b) + 1e-12


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_known(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty(self):
        assert levenshtein_distance("", "abc") == 3

    def test_similarity_bounds(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @given(words, words)
    def test_triangle_inequality_via_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(words)
    def test_single_insert_distance_one(self, word):
        assert levenshtein_distance(word, word + "x") == 1


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        boosted = jaro_winkler_similarity("prefixes", "prefixed")
        assert boosted >= plain

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_similarity(a, b) <= 1.0
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0 + 1e-12


class TestMongeElkan:
    def test_identical_token_lists(self):
        assert monge_elkan_similarity(["abc", "def"], ["abc", "def"]) == pytest.approx(1.0)

    def test_empty(self):
        assert monge_elkan_similarity([], ["a"]) == 0.0

    def test_symmetric(self):
        a, b = ["alpha", "beta"], ["beta", "gamma"]
        assert monge_elkan_similarity(a, b) == pytest.approx(
            monge_elkan_similarity(b, a)
        )


class TestNumericSimilarity:
    def test_equal(self):
        assert numeric_similarity(5.0, 5.0) == 1.0

    def test_zeros(self):
        assert numeric_similarity(0.0, 0.0) == 1.0

    def test_double_is_zero(self):
        assert numeric_similarity(1.0, 2.0) == pytest.approx(0.5)

    def test_clamped(self):
        assert numeric_similarity(-1.0, 1.0) == 0.0

    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_bounds_and_symmetry(self, a, b):
        value = numeric_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(numeric_similarity(b, a))
