"""Tests for repro.text.tokenize."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    STOPWORDS,
    clean_tokens,
    ngrams,
    qgrams,
    stem,
    tokenize,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Sony XBR") == ["sony", "xbr"]

    def test_punctuation_separates(self):
        assert tokenize("cyber-shot dsc/w120") == ["cyber", "shot", "dsc", "w120"]

    def test_numbers_kept(self):
        assert tokenize("model 42b") == ["model", "42b"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! --- ???") == []

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=80))
    def test_idempotent_on_joined_output(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens


class TestStem:
    def test_strips_plural(self):
        assert stem("widgets") == "widget"

    def test_strips_ing(self):
        assert stem("matching") == "match"

    def test_short_tokens_untouched(self):
        assert stem("its") == "its"

    def test_does_not_over_strip(self):
        # Stripping would leave fewer than 3 characters.
        assert stem("ring") == "ring"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_stem_is_prefix(self, token):
        assert token.startswith(stem(token))


class TestCleanTokens:
    def test_removes_stopwords(self):
        assert clean_tokens(["the", "widget", "and", "gadget"]) == ["widget", "gadget"]

    def test_stems_survivors(self):
        assert clean_tokens(["widgets"]) == ["widget"]

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)


class TestQgrams:
    def test_basic(self):
        assert qgrams("abcd", 3) == {"abc", "bcd"}

    def test_short_string_single_gram(self):
        assert qgrams("ab", 3) == {"ab"}

    def test_empty(self):
        assert qgrams("", 3) == set()

    def test_whitespace_collapsed(self):
        assert qgrams("a  b", 3) == qgrams("a b", 3)

    def test_lowercased(self):
        assert qgrams("ABC", 2) == {"ab", "bc"}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    @given(st.text(min_size=0, max_size=50), st.integers(min_value=1, max_value=6))
    def test_gram_lengths(self, text, q):
        for gram in qgrams(text, q):
            assert len(gram) <= q


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)
