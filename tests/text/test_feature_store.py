"""FeatureStore: encode-once views, batched similarities, disk cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.pairs import RecordPair
from repro.obs import Observability
from repro.text.feature_store import (
    FeatureMatrixCache,
    FeatureStore,
    active_feature_cache,
    feature_cache_scope,
    set_feature_cache,
    store_for_task,
)
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
)
from tests.conftest import make_record


def _pairs():
    lefts = [
        make_record("l0", "left", name="acme widget alpha", price="10"),
        make_record("l1", "left", name="zeta gadget", price="25"),
        make_record("l2", "left", name="", price=""),
    ]
    rights = [
        make_record("r0", "right", name="acme widget alpha plus", price="10"),
        make_record("r1", "right", name="beta gadget zeta", price="30"),
        make_record("r2", "right", name="ab", price="10"),
    ]
    return [
        RecordPair(left, right) for left in lefts for right in rights
    ]


def _scalar_view(record, view):
    return FeatureStore._extract(record, view)


VIEWS = [
    ("tokens", None),
    ("tokens", "name"),
    ("qgrams", None, 3),
    ("qgrams", "name", 2),
    ("qgrams", "price", 5),
]


class TestViews:
    @pytest.mark.parametrize("view", VIEWS)
    def test_set_similarities_match_scalar(self, view):
        store = FeatureStore()
        pairs = _pairs()
        matrix = store.set_similarities(pairs, view)
        for row, pair in enumerate(pairs):
            a = _scalar_view(pair.left, view)
            b = _scalar_view(pair.right, view)
            assert matrix[row, 0] == cosine_similarity(a, b)
            assert matrix[row, 1] == dice_similarity(a, b)
            assert matrix[row, 2] == jaccard_similarity(a, b)

    def test_rows_are_encoded_once_and_reused(self):
        store = FeatureStore()
        record = make_record("l0", "left", name="acme widget")
        first = store.rows([record], ("tokens", None))[0]
        second = store.rows([record], ("tokens", None))[0]
        assert first is second

    def test_incidence_memoized_until_new_records(self):
        store = FeatureStore()
        view = ("qgrams", None, 3)
        store.rows([make_record("l0", "left", name="alpha")], view)
        __, first = store._incidence(view)
        __, again = store._incidence(view)
        assert first is again
        store.rows([make_record("l1", "left", name="omega")], view)
        __, rebuilt = store._incidence(view)
        assert rebuilt is not first

    def test_codec_overflow_falls_back_consistently(self):
        # q=10 codecs budget 6 bits/char (capacity 63): a wide-alphabet
        # record must flip the view to interner fallback without changing
        # any similarity already computed from codec codes.
        view = ("qgrams", None, 10)
        store = FeatureStore()
        plain = [
            make_record("l0", "left", name="record linkage benchmarks"),
            make_record("r0", "right", name="record linkage revisited"),
        ]
        pairs = [RecordPair(plain[0], plain[1])]
        before = store.set_similarities(pairs, view)
        assert view not in store._fallback_views
        wide = make_record(
            "w0", "right", name="".join(chr(0x4E00 + i) for i in range(80))
        )
        mixed = pairs + [RecordPair(plain[0], wide)]
        after = store.set_similarities(mixed, view)
        assert view in store._fallback_views
        assert np.array_equal(before, after[:1])
        a = _scalar_view(plain[0], view)
        assert after[1, 2] == jaccard_similarity(a, _scalar_view(wide, view))

    def test_pair_index_dedups_records(self):
        pairs = _pairs()
        records, left_index, right_index = FeatureStore.pair_index(pairs)
        assert len(records) == 6
        assert len(left_index) == len(right_index) == len(pairs)
        for position, pair in enumerate(pairs):
            assert records[left_index[position]] is pair.left
            assert records[right_index[position]] is pair.right


class TestDigests:
    def test_record_digest_sensitive_to_content(self):
        store = FeatureStore()
        one = store.record_digest(make_record("l0", "left", name="a"))
        other = FeatureStore().record_digest(
            make_record("l0", "left", name="b")
        )
        assert one != other

    def test_matrix_digest_sensitive_to_spec_names_and_order(self):
        store = FeatureStore()
        pairs = _pairs()
        base = store.matrix_digest("esde:SA", ["f0"], pairs)
        assert base == store.matrix_digest("esde:SA", ["f0"], pairs)
        assert base != store.matrix_digest("esde:SB", ["f0"], pairs)
        assert base != store.matrix_digest("esde:SA", ["f1"], pairs)
        assert base != store.matrix_digest(
            "esde:SA", ["f0"], list(reversed(pairs))
        )


class TestDiskCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = FeatureMatrixCache(tmp_path)
        store = FeatureStore()
        pairs = _pairs()
        compute_calls = []

        def compute():
            compute_calls.append(1)
            return store.set_similarities(pairs, ("tokens", None))

        with obs.use(Observability()), feature_cache_scope(cache):
            first = store.matrix("spec", pairs, ["a", "b", "c"], compute)
            assert obs.counter("features.cache_miss") == 1
            assert obs.counter("features.cache_write") == 1
            second = store.matrix("spec", pairs, ["a", "b", "c"], compute)
            assert obs.counter("features.cache_hit") == 1
            assert obs.counter("features.requests") == 2
            assert obs.counter("features.pairs") == 2 * len(pairs)
        assert len(compute_calls) == 1
        assert first.tobytes() == second.tobytes()

    def test_corrupt_envelope_quarantined_and_recomputed(self, tmp_path):
        cache = FeatureMatrixCache(tmp_path)
        store = FeatureStore()
        pairs = _pairs()
        compute = lambda: store.set_similarities(pairs, ("tokens", None))
        with obs.use(Observability()), feature_cache_scope(cache):
            first = store.matrix("spec", pairs, ["a", "b", "c"], compute)
            digest = store.matrix_digest("spec", ["a", "b", "c"], pairs)
            cache.path_for(digest).write_text("{corrupt", encoding="utf-8")
            second = store.matrix("spec", pairs, ["a", "b", "c"], compute)
            assert obs.counter("features.cache_quarantined") == 1
            # The recompute re-stored a fresh envelope; it loads cleanly.
            assert obs.counter("features.cache_write") == 2
            reloaded = cache.load(digest, ["a", "b", "c"])
        assert np.array_equal(first, second)
        assert reloaded is not None and np.array_equal(reloaded, first)

    def test_stale_kernel_version_misses(self, tmp_path):
        from repro.runtime.cache import read_envelope, write_envelope

        cache = FeatureMatrixCache(tmp_path)
        store = FeatureStore()
        pairs = _pairs()
        names = ["a", "b", "c"]
        compute = lambda: store.set_similarities(pairs, ("tokens", None))
        with feature_cache_scope(cache):
            store.matrix("spec", pairs, names, compute)
        digest = store.matrix_digest("spec", names, pairs)
        path = cache.path_for(digest)
        payload = read_envelope(path)
        payload["kernel_version"] = -1
        write_envelope(path, payload)
        with obs.use(Observability()):
            assert cache.load(digest, names) is None
            assert obs.counter("features.cache_miss") == 1
            assert obs.counter("features.cache_quarantined") == 0
        # Wrong names on an otherwise valid envelope also miss.
        payload["kernel_version"] = 1
        write_envelope(path, payload)
        with obs.use(Observability()):
            assert cache.load(digest, ["other"]) is None

    def test_uncacheable_requests_skip_the_cache(self, tmp_path):
        cache = FeatureMatrixCache(tmp_path)
        store = FeatureStore()
        pairs = _pairs()
        compute = lambda: store.set_similarities(pairs, ("tokens", None))
        with feature_cache_scope(cache):
            store.matrix("spec", pairs, ["a", "b", "c"], compute, cacheable=False)
        assert not list(tmp_path.iterdir())

    def test_scope_restores_previous_cache(self, tmp_path):
        outer = FeatureMatrixCache(tmp_path)
        previous = set_feature_cache(outer)
        try:
            with feature_cache_scope(None):
                assert active_feature_cache() is None
            assert active_feature_cache() is outer
        finally:
            set_feature_cache(previous)


class TestStoreForTask:
    def test_same_task_shares_a_store(self, small_task):
        assert store_for_task(small_task) is store_for_task(small_task)
