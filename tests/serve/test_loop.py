"""Tests for the JSONL serve loop: protocol, durability, drain, chaos."""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.datasets.generator import build_task_from_sources
from repro.runtime import faults
from repro.serve import MatcherSession, open_session
from repro.serve.loop import JOURNAL_NAME, SNAPSHOT_NAME, ServeLoop


@pytest.fixture(scope="module")
def loop_task(small_sources):
    return build_task_from_sources(
        small_sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=17,
        name="loop_task",
    )


def run_requests(session, requests, **loop_options):
    """Feed JSONL requests through a loop; returns the response dicts."""
    source = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
    )
    sink = io.StringIO()
    loop = ServeLoop(session, **loop_options)
    code = loop.run(source, sink, install_signals=False)
    assert code == 0
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def record_payload(record, new_id=None):
    return {
        "record_id": new_id if new_id is not None else record.record_id,
        "source": record.source,
        "values": dict(record.values),
    }


class TestProtocol:
    def test_request_response_cycle(self, loop_task):
        session = open_session(loop_task, k=3)
        donor = loop_task.right.records()[0]
        probe = loop_task.left.records()[0]
        responses = run_requests(
            session,
            [
                {"op": "stats"},
                {"op": "add", "records": [record_payload(donor, "fresh")]},
                {"op": "query", "record": record_payload(donor, "probe")},
                {"op": "query_batch", "records": [record_payload(probe)]},
                {"op": "nope"},
            ],
        )
        ready, stats, add, query, batch, unknown, drained = responses
        assert ready["event"] == "ready"
        assert stats["ok"] and stats["stats"]["records"] == len(loop_task.right)
        assert add["ok"] and add["added"] == 1
        assert query["ok"]
        assert "fresh" in query["result"]["candidates"]
        assert batch["ok"] and len(batch["results"]) == 1
        assert not unknown["ok"] and unknown["error"] == "unknown_op"
        assert "unknown op" in unknown["detail"]
        assert drained["event"] == "drained"
        assert set(drained["stats"]["latency"]) == {
            "block",
            "extract",
            "predict",
        }

    def test_malformed_requests_keep_serving(self, loop_task):
        session = open_session(loop_task, k=3)
        source = io.StringIO('not json\n[1, 2]\n{"op": "stats"}\n')
        sink = io.StringIO()
        before = obs.counter("serve.bad_request")
        assert ServeLoop(session).run(
            source, sink, install_signals=False
        ) == 0
        responses = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert responses[1]["error"] == "bad_request"  # parse error
        assert responses[2]["error"] == "bad_request"  # non-object request
        assert responses[3]["ok"]  # still serving
        assert obs.counter("serve.bad_request") - before == 2

    def test_torn_line_is_structured_bad_request(self, loop_task):
        # A client dying mid-write leaves a torn prefix of a valid
        # request; the loop answers a structured event and keeps going.
        session = open_session(loop_task, k=3)
        torn = json.dumps({"op": "stats"})[:-4]
        source = io.StringIO(torn + "\n" + '{"op": "stats"}\n')
        sink = io.StringIO()
        assert ServeLoop(session).run(
            source, sink, install_signals=False
        ) == 0
        responses = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert responses[1]["error"] == "bad_request"
        assert "JSON" in responses[1]["detail"]
        assert responses[2]["ok"]

    def test_shutdown_op_drains(self, loop_task):
        session = open_session(loop_task, k=3)
        responses = run_requests(
            session, [{"op": "shutdown"}, {"op": "stats"}]
        )
        assert responses[1]["draining"]
        # Shutdown stops intake at once: the queued stats request is
        # dropped and the next event is the drain summary.
        assert responses[2]["event"] == "drained"
        assert len(responses) == 3

    def test_snapshot_requires_state(self, loop_task):
        session = open_session(loop_task, k=3)
        responses = run_requests(session, [{"op": "snapshot"}])
        assert not responses[1]["ok"]
        assert "state" in responses[1]["error"]


class TestDurability:
    def test_snapshot_and_resume(self, loop_task, tmp_path):
        state = tmp_path / "state"
        session = open_session(loop_task, k=3)
        donors = loop_task.right.records()[:4]
        responses = run_requests(
            session,
            [
                {
                    "op": "add",
                    "id": "batch-1",
                    "records": [
                        record_payload(donor, f"r{i}")
                        for i, donor in enumerate(donors)
                    ],
                },
                {"op": "snapshot"},
            ],
            state_dir=state,
        )
        assert responses[1]["added"] == 4
        assert responses[2]["ok"]
        assert (state / SNAPSHOT_NAME).exists()
        assert (state / JOURNAL_NAME).exists()

        restored = MatcherSession.load(state / SNAPSHOT_NAME)
        assert len(restored) == len(loop_task.right) + 4
        result = restored.query(record_payload_record(donors[0], "probe"))
        assert "r0" in result.candidates.ids

    def test_journaled_add_replay_skipped(self, loop_task, tmp_path):
        state = tmp_path / "state"
        session = open_session(loop_task, k=3)
        donor = loop_task.right.records()[0]
        add = {
            "op": "add",
            "id": "a1",
            "records": [record_payload(donor, "once")],
        }
        run_requests(
            session, [add], state_dir=state, snapshot_every=1
        )
        # Same request replayed against a resumed session: the journal
        # marks it done (the snapshot covers it), so it is skipped.
        resumed = MatcherSession.load(state / SNAPSHOT_NAME)
        responses = run_requests(resumed, [add], state_dir=state)
        assert responses[1]["skipped"]
        assert responses[1]["added"] == 0
        assert len(resumed) == len(loop_task.right) + 1

    def test_replay_without_journal_mark_deduplicates(
        self, loop_task, tmp_path
    ):
        # A crash between snapshot and journal append re-delivers an add
        # whose records the snapshot already holds: they deduplicate
        # instead of erroring.
        state = tmp_path / "state"
        session = open_session(loop_task, k=3)
        donor = loop_task.right.records()[1]
        add = {"op": "add", "records": [record_payload(donor, "dup")]}
        run_requests(
            session, [add, {"op": "snapshot"}], state_dir=state
        )
        resumed = MatcherSession.load(state / SNAPSHOT_NAME)
        responses = run_requests(resumed, [add], state_dir=state)
        assert responses[1]["ok"]
        assert responses[1]["added"] == 0
        assert responses[1]["deduplicated"] == 1

    def test_drain_snapshots_final_state(self, loop_task, tmp_path):
        state = tmp_path / "state"
        session = open_session(loop_task, k=3)
        donor = loop_task.right.records()[2]
        run_requests(
            session,
            [{"op": "add", "records": [record_payload(donor, "late")]}],
            state_dir=state,
        )
        # No explicit snapshot op: the drain-time snapshot covers it.
        restored = MatcherSession.load(state / SNAPSHOT_NAME)
        assert "late" in restored._records


class TestSigtermOrdering:
    def test_second_sigterm_mid_drain_snapshot_defers(
        self, loop_task, tmp_path, monkeypatch
    ):
        # Regression: the loop used to restore the previous SIGTERM
        # handler *before* the drain-time snapshot ran, so a second
        # SIGTERM landing mid-save terminated the process and could
        # strand a session.json.tmp<pid> as the only copy. The handler
        # must stay installed through the final snapshot.
        state = tmp_path / "state"
        session = open_session(loop_task, k=3)
        hits = []
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: hits.append("outer")
        )
        try:
            original_save = session.save
            fired = []

            def killing_save(path):
                if not fired:
                    fired.append(True)
                    os.kill(os.getpid(), signal.SIGTERM)
                return original_save(path)

            monkeypatch.setattr(session, "save", killing_save)
            loop = ServeLoop(session, state_dir=state)
            assert (
                loop.run(io.StringIO(""), io.StringIO(), install_signals=True)
                == 0
            )
        finally:
            signal.signal(signal.SIGTERM, previous)
        # The mid-snapshot SIGTERM hit the loop's own (still installed)
        # handler, not whatever was there before.
        assert hits == []
        assert (state / SNAPSHOT_NAME).exists()
        assert not list(state.glob("*.tmp*"))


def record_payload_record(record, new_id):
    from repro.data.records import Record

    return Record(new_id, record.source, dict(record.values))


def _start_serve(tmp_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "dblp_scholar",
            "--scale",
            "0.15",
            "--k",
            "3",
            *extra_args,
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _send(proc, request):
    proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()


def _read_response(proc, timeout=120.0):
    line = proc.stdout.readline()
    assert line, "serve process closed stdout early"
    return json.loads(line)


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc = _start_serve(tmp_path)
        try:
            ready = _read_response(proc)
            assert ready["event"] == "ready"
            _send(proc, {"op": "stats"})
            assert _read_response(proc)["ok"]
            proc.send_signal(signal.SIGTERM)
            # Graceful drain: final event emitted, exit code 0, stdin
            # still open (the drain must not depend on EOF).
            drained = _read_response(proc)
            assert drained["event"] == "drained"
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)


@pytest.mark.slow
@pytest.mark.fault_smoke
class TestChaosKill:
    def test_kill_fault_then_resume_from_state(self, tmp_path):
        state = tmp_path / "state"
        proc = _start_serve(
            tmp_path,
            "--state",
            str(state),
            "--snapshot-every",
            "1",
            "--inject",
            "serve:request=kill:1",
        )
        try:
            ready = _read_response(proc)
            assert ready["event"] == "ready"
            # First request trips the armed kill fault: SIGKILL, no
            # drain, no exit-zero — but the startup snapshot path never
            # ran, so the state directory only holds the lease.
            _send(proc, {"op": "stats"})
            assert proc.wait(timeout=60) == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)

        # Restart against the same state directory: the stale lease is
        # broken (owner pid dead), the session refits and serving
        # resumes; adds snapshot and survive a second restart.
        proc = _start_serve(
            tmp_path, "--state", str(state), "--snapshot-every", "1"
        )
        try:
            assert _read_response(proc)["event"] == "ready"
            _send(
                proc,
                {
                    "op": "add",
                    "id": "a1",
                    "records": [
                        {
                            "record_id": "chaos_1",
                            "source": "right",
                            "values": {"title": "resilient record"},
                        }
                    ],
                },
            )
            response = _read_response(proc)
            assert response["ok"] and response["added"] == 1
            _send(proc, {"op": "shutdown"})
            assert _read_response(proc)["ok"]
            assert _read_response(proc)["event"] == "drained"
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)

        restored = MatcherSession.load(state / SNAPSHOT_NAME)
        assert "chaos_1" in restored._records
