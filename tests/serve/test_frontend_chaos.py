"""Concurrency fuzz + chaos campaigns for the socket front end.

The contract under test is the paper's reproducibility invariant carried
into serving: interleaved clients, injected faults and even a SIGKILL
mid-coalesced-batch may cost retries or shed requests, but the final
session state must be bit-identical to a sequential replay of the
admitted operations, and every admitted answer must match the offline
session.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.datasets.generator import build_task_from_sources
from repro.runtime.chaos import (
    FRONTEND_KILL_SITES,
    frontend_site_pool,
    generate_frontend_plans,
)
from repro.serve import FrontendConfig, MatcherSession, SocketFrontend, open_session
from repro.serve.chaos import (
    RetryClient,
    offline_baseline,
    record_payload,
    run_frontend_campaign,
)
from repro.serve.loop import SNAPSHOT_NAME, ServeLoop


@pytest.fixture(scope="module")
def chaos_task(small_sources):
    return build_task_from_sources(
        small_sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=17,
        name="chaos_task",
    )


@pytest.fixture(scope="module")
def session_snapshot(chaos_task, tmp_path_factory):
    """A fitted session on disk: each plan loads a fresh, identical copy."""
    path = tmp_path_factory.mktemp("chaos") / "session.json"
    open_session(chaos_task, k=3).save(path)
    return path


class TestFrontendPlans:
    def test_schedule_is_seeded_and_scoped(self):
        first = generate_frontend_plans(6, seed=3, n_kill_plans=2)
        second = generate_frontend_plans(6, seed=3, n_kill_plans=2)
        assert first == second
        assert [plan.kill_site for plan in first[-2:]] == list(
            FRONTEND_KILL_SITES
        ) * 2
        pool_sites = {planned.site for planned in frontend_site_pool()}
        assert {
            planned.site for plan in first for planned in plan.faults
        } <= pool_sites

    def test_kill_plans_rejected_in_process(self, session_snapshot):
        from repro.serve.chaos import run_frontend_plan

        plan = generate_frontend_plans(1, seed=0, n_kill_plans=1)[0]
        with pytest.raises(ValueError, match="kill plans"):
            run_frontend_plan(
                plan, lambda: MatcherSession.load(session_snapshot), [], []
            )


class TestConcurrentFuzz:
    def test_interleaved_clients_replay_to_identical_state(
        self, chaos_task, session_snapshot
    ):
        """N threads of adds/queries/garbage/disconnects; replay parity."""
        session = MatcherSession.load(session_snapshot)
        frontend = SocketFrontend(
            ServeLoop(session),
            listen="127.0.0.1:0",
            config=FrontendConfig(max_queue_depth=8, coalesce_max=4),
        )
        frontend.start()
        n_threads = 4
        donors = chaos_task.right.records()[: n_threads * 3]
        probes = chaos_task.left.records()[:6]
        admitted_adds: list[dict] = []
        errors: list[str] = []
        lock = threading.Lock()

        def worker(thread_id: int) -> None:
            client = RetryClient(frontend.address())
            try:
                for round_no in range(3):
                    donor = donors[thread_id * 3 + round_no]
                    new_id = f"t{thread_id}-d{round_no}"
                    response = client.request(
                        {
                            "op": "add",
                            "id": f"add-{new_id}",
                            "records": [
                                dict(
                                    record_payload(donor),
                                    record_id=new_id,
                                )
                            ],
                        }
                    )
                    if response is None or not response.get("ok"):
                        with lock:
                            errors.append(f"add {new_id} failed: {response}")
                        continue
                    with lock:
                        admitted_adds.append(
                            {"id": new_id, "records": response["records"]}
                        )
                    if thread_id == 0 and round_no == 1:
                        # Hostile client: garbage, then vanish mid-stream.
                        try:
                            client._connect()
                            client._sock.sendall(b"garbage not json\n")
                        except OSError:
                            pass
                        client._reset()
                    query = client.request(
                        {
                            "op": "query",
                            "record": record_payload(
                                probes[(thread_id + round_no) % len(probes)]
                            ),
                            "k": 3,
                        }
                    )
                    if query is None or not query.get("ok"):
                        with lock:
                            errors.append(f"query failed: {query}")
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"fuzz-{i}")
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert len(admitted_adds) == n_threads * 3

        # The add responses carry the post-add record count — a unique
        # position in the single-writer's serialization. Replaying the
        # admitted adds in that order onto a fresh copy of the same
        # snapshot must land in a bit-identical final state.
        replay = MatcherSession.load(session_snapshot)
        order = sorted(admitted_adds, key=lambda entry: entry["records"])
        assert [entry["records"] for entry in order] == list(
            range(len(replay) + 1, len(replay) + len(order) + 1)
        )
        by_id = {
            f"t{t}-d{r}": donors[t * 3 + r]
            for t in range(n_threads)
            for r in range(3)
        }
        for entry in order:
            donor = by_id[entry["id"]]
            replay.add_records(
                [
                    type(donor)(
                        entry["id"], donor.source, dict(donor.values)
                    )
                ]
            )
        assert set(session._records) == set(replay._records)
        # All workers have joined, so the session is quiescent: a final
        # query pass over both copies must be bit-identical. (Before
        # stop() — the drain closes the session.)
        concurrent_answers = session.query_batch(list(probes), 3)
        replayed_answers = replay.query_batch(list(probes), 3)
        frontend.stop()
        assert [r.to_dict() for r in concurrent_answers] == [
            r.to_dict() for r in replayed_answers
        ]


class TestFrontendChaosCampaign:
    def test_campaign_diffs_clean_against_baseline(
        self, chaos_task, session_snapshot
    ):
        donors = [
            type(record)(f"chaos-d{i}", record.source, dict(record.values))
            for i, record in enumerate(chaos_task.right.records()[:4])
        ]
        probes = chaos_task.left.records()[:4]
        report = run_frontend_campaign(
            lambda: MatcherSession.load(session_snapshot),
            donors,
            probes,
            n_plans=5,
            seed=3,
            k=3,
        )
        assert len(report.results) == 5
        for result in report.results:
            assert result.ok, (
                f"{result.plan.describe()}: {result.divergences}"
            )
            # Every probe must eventually be answered: the pool's faults
            # are all bounded (times=1), so retries converge.
            assert result.answered == len(probes)


def _spawn_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "dblp_scholar",
            "--scale",
            "0.15",
            "--k",
            "3",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _connect(address: str):
    host, _, port = address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=60)
    return sock, sock.makefile("r", encoding="utf-8")


@pytest.mark.slow
@pytest.mark.fault_smoke
class TestKillDuringBatch:
    def test_sigkill_mid_batch_resumes_consistent(self, tmp_path):
        state = tmp_path / "state"
        proc = _spawn_serve(
            "--state",
            str(state),
            "--listen",
            "127.0.0.1:0",
            "--inject",
            "frontend:batch=kill:1",
        )
        probe_payload = {
            "record_id": "kill-probe",
            "source": "left",
            "values": {"title": "deep learning entity matching survey"},
        }
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            sock, handle = _connect(ready["address"])
            sock.sendall(
                (
                    json.dumps(
                        {"op": "query", "record": probe_payload, "k": 3}
                    )
                    + "\n"
                ).encode()
            )
            # The armed kill fires at the top of the coalesced batch:
            # hard SIGKILL, no response, no drain.
            assert handle.readline() == ""
            assert proc.wait(timeout=120) == -signal.SIGKILL
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)

        # The kill left an orphaned lease; the doctor repairs it and the
        # state directory audits clean afterwards.
        from repro.experiments.cli import main

        assert main(["doctor", "--cache", str(state)]) == 0
        assert main(["doctor", "--cache", str(state), "--check"]) == 0

        # Resume without faults: the daemon serves, and its answer is
        # bit-identical to the offline session loaded from the snapshot
        # it drains to — the fault-free baseline.
        proc = _spawn_serve("--state", str(state), "--listen", "127.0.0.1:0")
        try:
            ready = json.loads(proc.stdout.readline())
            sock, handle = _connect(ready["address"])
            sock.sendall(
                (
                    json.dumps(
                        {"op": "query", "record": probe_payload, "k": 3}
                    )
                    + "\n"
                ).encode()
            )
            answer = json.loads(handle.readline())
            assert answer["ok"]
            sock.sendall(b'{"op": "shutdown"}\n')
            shutdown = json.loads(handle.readline())
            assert shutdown["ok"]
            assert proc.wait(timeout=120) == 0
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)

        restored = MatcherSession.load(state / SNAPSHOT_NAME)
        from repro.data.records import Record

        offline = restored.query(
            Record(
                probe_payload["record_id"],
                probe_payload["source"],
                dict(probe_payload["values"]),
            ),
            3,
        )
        assert answer["result"] == offline.to_dict()
