"""Tests for the concurrent socket front end: admission, deadlines, breakers."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro import obs
from repro.datasets.generator import build_task_from_sources
from repro.runtime import faults
from repro.serve import FrontendConfig, SocketFrontend, open_session
from repro.serve.frontend import AdmissionQueue, _Admitted
from repro.serve.loop import JOURNAL_NAME, SNAPSHOT_NAME, ServeLoop


@pytest.fixture(scope="module")
def frontend_task(small_sources):
    return build_task_from_sources(
        small_sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=17,
        name="frontend_task",
    )


def record_payload(record, new_id=None):
    return {
        "record_id": new_id if new_id is not None else record.record_id,
        "source": record.source,
        "values": dict(record.values),
    }


class StubClient:
    """A fake connection for driving admission without sockets."""

    client_id = "stub"

    def __init__(self):
        self.sent = []
        self.alive = True

    def send(self, response):
        self.sent.append(response)
        return self.alive

    def close(self):
        self.alive = False


def make_frontend(session, **config_overrides):
    """A frontend that is NOT started: admission runs, dispatch doesn't."""
    core = ServeLoop(session)
    config = FrontendConfig(**config_overrides)
    return SocketFrontend(core, listen="127.0.0.1:0", config=config)


def wire_client(frontend, timeout=30.0):
    host, _, port = frontend.address().rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    return sock, sock.makefile("r", encoding="utf-8")


def rpc(sock, handle, payload):
    sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
    return json.loads(handle.readline())


class TestFrontendConfig:
    def test_defaults_validate(self):
        config = FrontendConfig()
        assert config.max_queue_depth >= 1
        assert config.deadline_model().fallback_seconds is not None

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_queue_depth": 0},
            {"max_inflight_bytes": 0},
            {"coalesce_max": 0},
            {"send_timeout_seconds": 0.0},
            {"poll_seconds": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            FrontendConfig(**overrides)

    def test_requires_exactly_one_address(self, frontend_task):
        session = open_session(frontend_task, k=3)
        core = ServeLoop(session)
        with pytest.raises(ValueError, match="exactly one"):
            SocketFrontend(core)
        with pytest.raises(ValueError, match="exactly one"):
            SocketFrontend(core, listen="x:0", socket_path="y")


class TestAdmissionQueue:
    @staticmethod
    def item(cost=10, op="query"):
        return _Admitted(
            client=StubClient(),
            request={"op": op},
            op=op,
            request_id=None,
            cost=cost,
            received_at=time.monotonic(),
            deadline_seconds=None,
        )

    def test_depth_cap_sheds(self):
        queue = AdmissionQueue(max_depth=2, max_bytes=10_000)
        assert queue.offer(self.item())
        assert queue.offer(self.item())
        assert not queue.offer(self.item())
        assert queue.depth() == 2

    def test_byte_cap_sheds_but_releases_on_done(self):
        queue = AdmissionQueue(max_depth=100, max_bytes=25)
        first = self.item(cost=20)
        assert queue.offer(first)
        assert not queue.offer(self.item(cost=20))
        taken = queue.take(0.1)
        assert taken is first
        # Bytes stay reserved while executing: still over the cap.
        assert not queue.offer(self.item(cost=20))
        queue.done(first)
        assert queue.offer(self.item(cost=20))

    def test_lone_oversized_item_admitted_when_idle(self):
        queue = AdmissionQueue(max_depth=4, max_bytes=10)
        assert queue.offer(self.item(cost=50))

    def test_take_head_if_preserves_fifo(self):
        queue = AdmissionQueue(max_depth=10, max_bytes=10_000)
        query = self.item(op="query")
        add = self.item(op="add")
        assert queue.offer(add) and queue.offer(query)
        # Head is the add: a query-only predicate must NOT reach past it.
        assert queue.take_head_if(lambda it: it.op == "query") is None
        assert queue.take(0.1) is add
        assert queue.take_head_if(lambda it: it.op == "query") is query


class TestAdmissionControl:
    """Admission decisions without a running dispatcher (deterministic)."""

    def test_overload_sheds_with_structured_response(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(session, max_queue_depth=2)
        client = StubClient()
        probe = frontend_task.left.records()[0]
        line = json.dumps(
            {"op": "query", "record": record_payload(probe), "k": 3}
        )
        before = obs.counter("serve.shed")
        for _ in range(5):
            frontend._on_line(client, line)
        shed = [r for r in client.sent if r.get("error") == "overloaded"]
        assert len(shed) == 3
        assert all("queue_depth" in r for r in shed)
        assert frontend.queue.depth() == 2
        assert obs.counter("serve.shed") - before == 3
        assert frontend.frontend_stats()["counts"]["shed"] == 3

    def test_health_and_ready_bypass_admission(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(session, max_queue_depth=1)
        client = StubClient()
        # Fill the queue, then probe liveness: both must still answer.
        frontend._on_line(client, json.dumps({"op": "stats"}))
        frontend._on_line(client, json.dumps({"op": "health"}))
        frontend._on_line(client, json.dumps({"op": "ready"}))
        health, ready = client.sent[-2:]
        assert health["ok"] and health["op"] == "health"
        assert health["queue_depth"] == 1
        assert ready["op"] == "ready"
        assert ready["ready"] is False  # not started

    def test_expired_request_answers_deadline_exceeded(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(
            session, fallback_deadline_seconds=0.001
        )
        client = StubClient()
        frontend._on_line(client, json.dumps({"op": "stats", "id": "late"}))
        time.sleep(0.01)
        item = frontend.queue.take(0.1)
        try:
            frontend._dispatch(item)
        finally:
            frontend.queue.done(item)
        response = client.sent[-1]
        assert response["error"] == "deadline_exceeded"
        assert response["id"] == "late"
        assert frontend.frontend_stats()["counts"]["deadline_exceeded"] == 1

    def test_repeated_bad_lines_open_the_breaker(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(
            session, breaker_threshold=2, breaker_cooldown_seconds=60.0
        )
        client = StubClient()
        frontend._on_line(client, "not json")
        frontend._on_line(client, "still not json")
        frontend._on_line(client, json.dumps({"op": "stats"}))
        response = client.sent[-1]
        assert response["error"] == "circuit_open"
        assert frontend.queue.depth() == 0  # never admitted
        assert "stub" in frontend.frontend_stats()["open_breakers"]

    def test_draining_refuses_new_work(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(session)
        frontend.draining.set()
        client = StubClient()
        frontend._on_line(client, json.dumps({"op": "stats"}))
        assert client.sent[-1]["error"] == "draining"

    def test_vanished_peer_does_not_poison_co_batched_client(
        self, frontend_task
    ):
        session = open_session(frontend_task, k=3)
        frontend = make_frontend(session)
        ghost, survivor = StubClient(), StubClient()
        probes = frontend_task.left.records()[:2]
        frontend._on_line(
            ghost,
            json.dumps(
                {"op": "query", "record": record_payload(probes[0]), "k": 3}
            ),
        )
        frontend._on_line(
            survivor,
            json.dumps(
                {"op": "query", "record": record_payload(probes[1]), "k": 3}
            ),
        )
        ghost.close()  # vanishes after admission, before dispatch
        item = frontend.queue.take(0.1)
        try:
            frontend._dispatch(item)  # coalesces both into one batch
        finally:
            frontend.queue.done(item)
        assert frontend.frontend_stats()["counts"]["batches"] == 1
        assert frontend.frontend_stats()["counts"]["coalesced"] == 1
        ok = [r for r in survivor.sent if r.get("ok")]
        assert len(ok) == 1 and ok[0]["op"] == "query"
        expected = session.query(probes[1], 3).to_dict()
        assert ok[0]["result"] == expected


class TestOverTheWire:
    """Full-stack tests against a started TCP/unix front end."""

    def test_tcp_round_trip_parity_and_stats(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = SocketFrontend(
            ServeLoop(session), listen="127.0.0.1:0", config=FrontendConfig()
        )
        frontend.start()
        try:
            sock, handle = wire_client(frontend)
            probe = frontend_task.left.records()[0]
            donor = frontend_task.right.records()[0]
            expected = session.query(probe, 3).to_dict()
            response = rpc(
                sock,
                handle,
                {
                    "op": "query",
                    "record": record_payload(probe),
                    "k": 3,
                    "id": "q1",
                },
            )
            assert response["ok"] and response["id"] == "q1"
            # Bit-identical to the offline session's answer.
            assert response["result"] == expected
            added = rpc(
                sock,
                handle,
                {
                    "op": "add",
                    "records": [record_payload(donor, "wire-add")],
                },
            )
            assert added["ok"] and added["added"] == 1
            stats = rpc(sock, handle, {"op": "stats"})
            assert stats["ok"]
            assert stats["frontend"]["counts"]["admitted"] >= 3
            assert "query" in stats["frontend"]["latency"]
            assert stats["frontend"]["latency"]["query"]["count"] >= 1
            unknown = rpc(sock, handle, {"op": "nope"})
            assert unknown["error"] == "unknown_op"
            sock.close()
        finally:
            frontend.stop()

    def test_unix_socket_round_trip_and_cleanup(self, frontend_task, tmp_path):
        session = open_session(frontend_task, k=3)
        path = tmp_path / "serve.sock"
        frontend = SocketFrontend(ServeLoop(session), socket_path=path)
        frontend.start()
        try:
            assert path.exists()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(30.0)
            sock.connect(str(path))
            handle = sock.makefile("r", encoding="utf-8")
            health = rpc(sock, handle, {"op": "health"})
            assert health["ok"] and health["clients"] == 1
            ready = rpc(sock, handle, {"op": "ready"})
            assert ready["ready"] is True
            sock.close()
        finally:
            frontend.stop()
        assert not path.exists()  # drain unlinks the socket path

    def test_concurrent_clients_and_drain_broadcast(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = SocketFrontend(
            ServeLoop(session), listen="127.0.0.1:0", config=FrontendConfig()
        )
        frontend.start()
        try:
            clients = [wire_client(frontend) for _ in range(3)]
            probes = frontend_task.left.records()[:3]
            expected = [session.query(p, 3).to_dict() for p in probes]
            for (sock, handle), probe, want in zip(clients, probes, expected):
                got = rpc(
                    sock,
                    handle,
                    {"op": "query", "record": record_payload(probe), "k": 3},
                )
                assert got["ok"] and got["result"] == want
        finally:
            frontend.stop()
        # Every still-connected client got the drained broadcast.
        for sock, handle in clients:
            events = [json.loads(line) for line in handle if line.strip()]
            assert any(e.get("event") == "drained" for e in events)
            sock.close()

    def test_drain_snapshots_state(self, frontend_task, tmp_path):
        state = tmp_path / "state"
        session = open_session(frontend_task, k=3)
        frontend = SocketFrontend(
            ServeLoop(session, state_dir=state), listen="127.0.0.1:0"
        )
        frontend.start()
        try:
            sock, handle = wire_client(frontend)
            donor = frontend_task.right.records()[1]
            added = rpc(
                sock,
                handle,
                {
                    "op": "add",
                    "id": "drain-add",
                    "records": [record_payload(donor, "drained-record")],
                },
            )
            assert added["ok"]
            sock.close()
        finally:
            frontend.stop()
        assert (state / SNAPSHOT_NAME).exists()
        assert (state / JOURNAL_NAME).exists()
        assert not list(state.glob("*.tmp*"))
        from repro.serve import MatcherSession

        restored = MatcherSession.load(state / SNAPSHOT_NAME)
        assert "drained-record" in restored._records

    def test_write_fault_disconnects_only_that_client(self, frontend_task):
        session = open_session(frontend_task, k=3)
        frontend = SocketFrontend(
            ServeLoop(session), listen="127.0.0.1:0", config=FrontendConfig()
        )
        frontend.start()
        try:
            doomed_sock, doomed_handle = wire_client(frontend)
            healthy_sock, healthy_handle = wire_client(frontend)
            faults.arm("frontend:write", "error", times=1)
            doomed_sock.sendall(b'{"op": "health"}\n')
            # The injected write failure drops the doomed connection.
            assert doomed_handle.readline() == ""
            health = rpc(healthy_sock, healthy_handle, {"op": "health"})
            assert health["ok"]
            healthy_sock.close()
        finally:
            faults.reset()
            frontend.stop()
