"""Tests for the shared serve wire protocol (parsing + error shapes)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    BadRequest,
    bad_request_response,
    encode_response,
    error_response,
    parse_request,
)


class TestParseRequest:
    def test_valid_object_round_trips(self):
        assert parse_request('{"op": "stats"}\n') == {"op": "stats"}

    def test_blank_lines_are_keepalives(self):
        assert parse_request("") is None
        assert parse_request("   \n") is None

    @pytest.mark.parametrize(
        "line",
        ["not json", "[1, 2]", '"just a string"', "42", "{torn...", "{}x"],
    )
    def test_malformed_lines_raise_bad_request(self, line):
        with pytest.raises(BadRequest):
            parse_request(line)

    def test_torn_prefix_of_valid_request(self):
        torn = json.dumps({"op": "query", "record": {"record_id": "x"}})[:-7]
        with pytest.raises(BadRequest):
            parse_request(torn)

    def test_oversized_line_shed_before_parsing(self):
        huge = '{"op": "add", "pad": "' + "x" * 128 + '"}'
        with pytest.raises(BadRequest, match="exceeds"):
            parse_request(huge, max_bytes=64)
        # Under the default cap the same line is fine.
        assert parse_request(huge)["op"] == "add"
        assert MAX_LINE_BYTES >= 1024 * 1024


class TestErrorResponses:
    def test_error_response_shape(self):
        response = error_response("overloaded", "queue full", queue_depth=7)
        assert response == {
            "ok": False,
            "error": "overloaded",
            "detail": "queue full",
            "queue_depth": 7,
        }

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_response("nope", "detail")

    def test_all_codes_constructible(self):
        for code in ERROR_CODES:
            assert error_response(code, "x")["error"] == code

    def test_bad_request_response_counts(self):
        before = obs.counter("serve.bad_request")
        response = bad_request_response(BadRequest("torn line"))
        assert response["error"] == "bad_request"
        assert "torn line" in response["detail"]
        assert obs.counter("serve.bad_request") - before == 1

    def test_encode_response_is_jsonl(self):
        payload = encode_response({"ok": True, "op": "stats"})
        assert payload.endswith(b"\n")
        assert json.loads(payload) == {"ok": True, "op": "stats"}
