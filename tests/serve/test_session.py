"""The session equivalence suite: parity, interleaving, snapshots, config."""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro import obs as obs_package
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.datasets.generator import build_task_from_sources
from repro.experiments.matcher_suite import build_matcher
from repro.obs import Observability
from repro.serve import MatcherSession, QueryResult, SessionConfig, open_session


@pytest.fixture(scope="module")
def serve_task(small_sources):
    # A dedicated task object: the session flips its feature store to
    # incremental mode, which must not leak into the shared fixture.
    return build_task_from_sources(
        small_sources,
        n_pairs=300,
        positive_fraction=0.25,
        seed=13,
        name="serve_task",
    )


@pytest.fixture(scope="module")
def session(serve_task):
    return open_session(serve_task, k=5)


def _clone(record: Record, new_id: str) -> Record:
    return Record(new_id, record.source, dict(record.values))


class TestSessionConfig:
    def test_frozen(self):
        config = SessionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.k = 3

    def test_kw_only(self):
        with pytest.raises(TypeError):
            SessionConfig("SA-ESDE")

    def test_validation(self):
        with pytest.raises(ValueError, match="matcher"):
            SessionConfig(matcher="")
        with pytest.raises(ValueError, match="blocker"):
            SessionConfig(blocker="exhaustive")
        with pytest.raises(ValueError, match="k"):
            SessionConfig(k=0)
        with pytest.raises(ValueError, match="bands"):
            SessionConfig(n_hashes=64, bands=48)

    def test_ann_config_mirrors_fields(self):
        config = SessionConfig(blocker="lsh", q=4, k=7, seed=3, bands=16)
        ann = config.ann_config()
        assert ann.backend == "lsh"
        assert (ann.q, ann.k, ann.seed, ann.bands) == (4, 7, 3, 16)

    def test_facade_exports(self):
        assert repro.SessionConfig is SessionConfig
        assert repro.MatcherSession is MatcherSession
        assert repro.open_session is open_session
        for name in ("MatcherSession", "SessionConfig", "open_session"):
            assert name in repro.__all__


class TestQueryParity:
    def test_query_batch_matches_offline_predictions(self, serve_task, session):
        """The tentpole invariant: serve == offline, bit for bit."""
        probes = serve_task.left.records()[:25]
        results = session.query_batch(probes)

        pair_set = LabeledPairSet()
        online: dict[tuple[str, str], int] = {}
        for probe, result in zip(probes, results):
            for record_id, verdict in zip(
                result.candidates.ids, result.predictions
            ):
                key = (probe.record_id, record_id)
                online[key] = verdict
                if key not in pair_set:
                    pair_set.add(
                        RecordPair(probe, serve_task.right.get(record_id)), 0
                    )

        offline = build_matcher(serve_task, session.config.matcher, 0)
        offline.fit(serve_task)
        predicted = offline.predict(pair_set)
        assert len(pair_set) > 0
        for pair, verdict in zip(pair_set.pairs, predicted.tolist()):
            assert int(verdict) == online[pair.key]

    def test_query_is_single_element_batch(self, serve_task, session):
        probe = serve_task.left.records()[0]
        single = session.query(probe)
        batch = session.query_batch([probe])[0]
        assert isinstance(single, QueryResult)
        assert single.candidates.ids == batch.candidates.ids
        assert single.predictions == batch.predictions

    def test_empty_batch(self, session):
        assert session.query_batch([]) == []

    def test_k_override_and_validation(self, serve_task, session):
        probe = serve_task.left.records()[1]
        assert len(session.query(probe, k=2).candidates) <= 2
        with pytest.raises(ValueError, match="k"):
            session.query(probe, k=0)


class TestIncrementalAdd:
    def test_add_then_query_without_rebuild(self, serve_task):
        with obs_package.use(Observability()) as o:
            local = open_session(serve_task, k=5)
            builds_after_open = o.metrics.counter("blocking.ann.index_builds")
            rebuilds_after_open = o.metrics.counter(
                "features.incidence_rebuilds"
            )
            donors = serve_task.right.records()[:6]
            probes = serve_task.left.records()[:5]
            # Interleave adds and queries; the index and incidence
            # structures must only ever append.
            for round_number, donor in enumerate(donors):
                added = local.add_records(
                    [_clone(donor, f"grown_{round_number}")]
                )
                assert added == 1
                result = local.query(_clone(donor, f"probe_{round_number}"))
                assert f"grown_{round_number}" in result.candidates.ids
                local.query_batch(probes)
            assert (
                o.metrics.counter("blocking.ann.index_builds")
                == builds_after_open
            )
            assert (
                o.metrics.counter("features.incidence_rebuilds")
                == rebuilds_after_open
            )
            assert o.metrics.counter("serve.records_added") == 6.0
            assert len(local) == len(serve_task.right) + 6

    def test_added_records_answer_like_rebuilt_session(self, serve_task):
        grown = open_session(serve_task, k=5)
        extra = [
            _clone(record, f"x{i}")
            for i, record in enumerate(serve_task.right.records()[10:20])
        ]
        grown.add_records(extra)
        probes = serve_task.left.records()[:10]
        grown_answers = grown.query_batch(probes)

        # A fresh session whose index was built over the grown record
        # list from scratch must answer identically.
        rebuilt = MatcherSession(
            serve_task,
            grown.config,
            records=list(grown.index.records),
        )
        for a, b in zip(grown_answers, rebuilt.query_batch(probes)):
            assert a.candidates.ids == b.candidates.ids
            assert a.candidates.scores == b.candidates.scores
            assert a.predictions == b.predictions

    def test_duplicate_id_rejected(self, serve_task):
        local = open_session(serve_task, k=3)
        existing = serve_task.right.records()[0]
        with pytest.raises(ValueError, match="already in session"):
            local.add_records([existing])

    def test_empty_add(self, session):
        assert session.add_records([]) == 0


class TestSnapshots:
    def test_save_load_round_trip(self, serve_task, tmp_path):
        original = open_session(serve_task, k=5)
        extra = [
            _clone(record, f"s{i}")
            for i, record in enumerate(serve_task.right.records()[:5])
        ]
        original.add_records(extra)
        path = tmp_path / "session.json"
        original.save(path)

        restored = MatcherSession.load(path)
        assert len(restored) == len(original)
        probes = serve_task.left.records()[:10]
        for a, b in zip(
            original.query_batch(probes), restored.query_batch(probes)
        ):
            assert a.candidates.ids == b.candidates.ids
            assert a.candidates.scores == b.candidates.scores
            assert a.predictions == b.predictions

    def test_load_rejects_non_session_payload(self, tmp_path):
        from repro.runtime.cache import write_envelope

        path = tmp_path / "other.json"
        write_envelope(path, {"format": "something-else"})
        with pytest.raises(ValueError, match="not a session snapshot"):
            MatcherSession.load(path)

    def test_restored_session_accepts_adds(self, serve_task, tmp_path):
        original = open_session(serve_task, k=3)
        path = tmp_path / "session.json"
        original.save(path)
        restored = MatcherSession.load(path)
        donor = serve_task.right.records()[3]
        restored.add_records([_clone(donor, "post_restore")])
        result = restored.query(_clone(donor, "probe"))
        assert "post_restore" in result.candidates.ids


class TestLifecycle:
    def test_stats_shape(self, serve_task, session):
        session.query(serve_task.left.records()[2])
        stats = session.stats()
        assert stats["records"] == len(session)
        assert stats["queries"] >= 1
        assert set(stats["latency"]) == {"block", "extract", "predict"}
        for phase in stats["latency"].values():
            assert {"count", "p50", "p99"} <= set(phase)

    def test_closed_session_raises(self, serve_task):
        local = open_session(serve_task, k=3)
        with local:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            local.query(serve_task.left.records()[0])

    def test_open_session_overrides(self, serve_task):
        base = SessionConfig(k=4)
        patched = open_session(serve_task, base, k=2)
        assert patched.config.k == 2
        assert base.k == 4
