"""Taxonomy-conformance tests: each deep matcher honours its Table II row.

* heterogeneous methods (EMTransformer, DITTO) concatenate all attribute
  values into one sequence, so misplacing a value into another attribute
  (the dirty corruption) must not change the record representation;
* homogeneous methods (DeepMatcher) compare attributes positionally, so the
  same misplacement must change their representation;
* static embedders give a token one vector regardless of context; dynamic
  ones disambiguate homographs by context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import RecordPair
from repro.data.records import Record, RecordStore, Schema
from repro.data.task import MatchingTask
from repro.data.pairs import LabeledPairSet
from repro.matchers.deep import DeepMatcherNet, DittoNet, EMTransformerNet


def _record(record_id: str, source: str, title: str, brand: str, price: str) -> Record:
    return Record(
        record_id=record_id,
        source=source,
        values={"title": title, "brand": brand, "price": price},
    )


@pytest.fixture()
def misplacement_task() -> tuple[MatchingTask, Record, Record]:
    """A tiny task plus two versions of the same record: clean and with the
    brand value misplaced into the title (the dirty corruption)."""
    schema = Schema(("title", "brand", "price"))
    left = RecordStore("L", schema)
    right = RecordStore("R", schema)
    pairs = LabeledPairSet()
    for index in range(10):
        a = _record(f"a{index}", "A", f"gadget model {index}", "acme", "9.99")
        b = _record(f"b{index}", "B", f"gadget model {index}", "acme", "9.99")
        left.add(a)
        right.add(b)
        pairs.add(RecordPair(a, b), 1)
    for index in range(10, 20):
        a = _record(f"a{index}", "A", f"widget item {index}", "bolt", "5.00")
        b = _record(f"b{index}", "B", f"doohickey part {index}", "cog", "7.00")
        left.add(a)
        right.add(b)
        pairs.add(RecordPair(a, b), 0)

    from repro.data.splits import split_three_way

    training, validation, testing = split_three_way(pairs, seed=0)
    task = MatchingTask("tax", left, right, training, validation, testing)

    clean = left.get("a0")
    misplaced = Record(
        record_id="a0",
        source="A",
        values={"title": "gadget model 0 acme", "brand": "", "price": "9.99"},
    )
    return task, clean, misplaced


class TestHeterogeneousInvariance:
    @pytest.mark.parametrize(
        "factory",
        [lambda: EMTransformerNet("B", epochs=2), lambda: DittoNet(epochs=2)],
    )
    def test_misplacement_invariant(self, factory, misplacement_task):
        task, clean, misplaced = misplacement_task
        matcher = factory()
        matcher._prepare(task)
        partner = task.right.get("b0")
        clean_rep = matcher._represent(RecordPair(clean, partner))
        # Fresh caches: the misplaced version reuses the same record id.
        matcher._prepare(task)
        misplaced_rep = matcher._represent(RecordPair(misplaced, partner))
        np.testing.assert_allclose(clean_rep, misplaced_rep, atol=1e-12)


class TestHomogeneousSensitivity:
    def test_deepmatcher_changes_under_misplacement(self, misplacement_task):
        task, clean, misplaced = misplacement_task
        matcher = DeepMatcherNet(epochs=2)
        matcher._prepare(task)
        partner = task.right.get("b0")
        clean_rep = matcher._represent(RecordPair(clean, partner))
        matcher._prepare(task)
        misplaced_rep = matcher._represent(RecordPair(misplaced, partner))
        assert not np.allclose(clean_rep, misplaced_rep)


class TestLocalityOfRepresentation:
    def test_representation_independent_of_other_pairs(self, misplacement_task):
        """Local methods encode each pair in isolation: representing the
        same pair is identical whether or not other pairs were seen."""
        task, __, __ = misplacement_task
        pair = task.testing.pairs[0]
        matcher = EMTransformerNet("B", epochs=2)
        matcher._prepare(task)
        alone = matcher._represent(pair)
        matcher._prepare(task)
        for other in task.training.pairs:
            matcher._represent(other)
        after_others = matcher._represent(pair)
        np.testing.assert_allclose(alone, after_others)
