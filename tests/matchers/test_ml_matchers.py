"""Tests for Magellan, ZeroER and the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matchers.features import MagellanFeatureExtractor
from repro.matchers.magellan import MAGELLAN_HEADS, MagellanMatcher
from repro.matchers.oracle import OracleMatcher
from repro.matchers.zeroer import ZeroERMatcher


class TestMagellanFeatures:
    def test_dimensions(self, handmade_task):
        extractor = MagellanFeatureExtractor(handmade_task.attributes)
        assert extractor.n_features == 9 * len(handmade_task.attributes)
        matrix = extractor.feature_matrix(handmade_task.training)
        assert matrix.shape == (
            len(handmade_task.training),
            extractor.n_features,
        )

    def test_features_bounded(self, handmade_task):
        extractor = MagellanFeatureExtractor(handmade_task.attributes)
        matrix = extractor.feature_matrix(handmade_task.training)
        assert np.all((matrix >= 0.0) & (matrix <= 1.0))

    def test_cache_hits(self, handmade_task):
        extractor = MagellanFeatureExtractor(handmade_task.attributes)
        pair = handmade_task.training.pairs[0]
        first = extractor.features(pair)
        second = extractor.features(pair)
        assert first is second

    def test_empty_attributes_raise(self):
        with pytest.raises(ValueError):
            MagellanFeatureExtractor(())


class TestMagellanMatcher:
    @pytest.mark.parametrize("head", MAGELLAN_HEADS)
    def test_all_heads_learn_easy_task(self, head, handmade_task):
        result = MagellanMatcher(head=head).evaluate(handmade_task)
        assert result.f1 > 0.8, head

    def test_unknown_head_raises(self):
        with pytest.raises(ValueError):
            MagellanMatcher(head="XGB")

    def test_shared_extractor_reused(self, handmade_task):
        shared = MagellanFeatureExtractor(handmade_task.attributes)
        first = MagellanMatcher("DT", extractor=shared)
        second = MagellanMatcher("LR", extractor=shared)
        first.evaluate(handmade_task)
        second.evaluate(handmade_task)
        assert first._extractor is shared and second._extractor is shared

    def test_non_linear_flag(self):
        assert MagellanMatcher("RF").non_linear


class TestZeroER:
    def test_unsupervised_on_easy_task(self, handmade_task):
        result = ZeroERMatcher().evaluate(handmade_task)
        # Unsupervised matching on clearly bimodal similarities; the tiny
        # task (60 pairs, 36-d features) caps what EM can do, so the bar is
        # modest — ZeroER without custom blocking is weak in the paper too.
        assert result.f1 > 0.6
        assert result.recall == 1.0

    def test_is_non_linear_family(self):
        assert ZeroERMatcher().non_linear


class TestOracle:
    def test_perfect_on_any_task(self, handmade_task, small_task):
        for task in (handmade_task, small_task):
            result = OracleMatcher().evaluate(task)
            assert result.f1 == 1.0
            assert result.precision == 1.0
            assert result.recall == 1.0
