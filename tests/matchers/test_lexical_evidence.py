"""Tests for the shared lexical-evidence features of the deep matchers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import RecordPair
from repro.matchers.deep.lexical import LexicalEvidence, digit_tokens
from repro.text.vectorize import TfIdfVectorizer
from tests.conftest import make_record


@pytest.fixture()
def evidence() -> LexicalEvidence:
    corpus = [
        ["sony", "turntable", "pslx350h"],
        ["sony", "camera", "dscw120"],
        ["acme", "widget", "500"],
        ["sony", "phone"],
    ]
    return LexicalEvidence(TfIdfVectorizer().fit(corpus))


_pair_counter = 0


def _pair(left_text: str, right_text: str) -> RecordPair:
    """Build a pair with unique record ids (the evidence caches by id)."""
    global _pair_counter
    _pair_counter += 1
    return RecordPair(
        make_record(f"a{_pair_counter}", "A", name=left_text),
        make_record(f"b{_pair_counter}", "B", name=right_text),
    )


class TestDigitTokens:
    def test_extracts_alphanumerics(self):
        record = make_record("r", "A", name="sony pslx350h price 99")
        assert digit_tokens(record) == {"pslx350h", "99"}

    def test_empty(self):
        record = make_record("r", "A", name="sony camera")
        assert digit_tokens(record) == set()


class TestLexicalEvidence:
    def test_feature_vector_shape(self, evidence):
        features = evidence.features(_pair("sony turntable", "sony camera"))
        assert features.shape == (len(LexicalEvidence.FEATURE_NAMES),)
        assert np.all((features >= 0.0) & (features <= 1.0))

    def test_identical_records_max_overlap(self, evidence):
        features = evidence.features(
            _pair("sony pslx350h", "sony pslx350h")
        )
        token_jaccard, idf_jaccard, qg3, digit_overlap = features
        assert token_jaccard == 1.0
        assert idf_jaccard == pytest.approx(1.0)
        assert qg3 == 1.0
        assert digit_overlap == 1.0

    def test_digit_overlap_distinguishes_family_variants(self, evidence):
        same_code = evidence.features(
            _pair("sony turntable pslx350h", "soni turntable pslx350h")
        )
        different_code = evidence.features(
            _pair("sony turntable pslx350h", "sony turntable pslx999z")
        )
        assert same_code[3] == 1.0
        assert different_code[3] == 0.0

    def test_no_digits_neutral(self, evidence):
        features = evidence.features(_pair("sony camera", "sony phone"))
        assert features[3] == 0.5

    def test_idf_jaccard_weights_rare_tokens(self, evidence):
        # Sharing the rare token 'turntable' counts more than sharing the
        # common token 'sony'.
        rare_shared = evidence.features(_pair("turntable alpha", "turntable beta"))
        common_shared = evidence.features(_pair("sony alpha", "sony beta"))
        assert rare_shared[1] > common_shared[1]

    def test_record_caching(self, evidence):
        pair = _pair("sony camera", "sony phone")
        evidence.features(pair)
        assert pair.left.record_id in evidence._token_cache
        assert pair.right.record_id in evidence._token_cache
