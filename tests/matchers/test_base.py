"""Tests for the Matcher base-class contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher


class _ConstantMatcher(Matcher):
    """Predicts a constant label; used to probe the base-class plumbing."""

    def __init__(self, label: int = 1) -> None:
        super().__init__(name=f"Constant({label})")
        self.label = label
        self.fit_calls = 0

    def _fit(self, task: MatchingTask) -> None:
        self.fit_calls += 1

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        return np.full(len(pairs), self.label, dtype=np.int64)


class _BrokenMatcher(Matcher):
    """Returns the wrong number of predictions."""

    def __init__(self) -> None:
        super().__init__(name="Broken")

    def _fit(self, task: MatchingTask) -> None:
        pass

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        return np.zeros(max(0, len(pairs) - 1), dtype=np.int64)


class TestMatcherContract:
    def test_predict_before_fit_raises(self, handmade_task):
        with pytest.raises(RuntimeError, match="not fitted"):
            _ConstantMatcher().predict(handmade_task.testing)

    def test_evaluate_fits_then_scores(self, handmade_task):
        matcher = _ConstantMatcher(label=1)
        result = matcher.evaluate(handmade_task)
        assert matcher.fit_calls == 1
        # Predicting all-positive: recall 1, precision = positive rate.
        assert result.recall == 1.0
        assert result.precision == pytest.approx(
            handmade_task.testing.imbalance_ratio
        )

    def test_all_negative_scores_zero(self, handmade_task):
        result = _ConstantMatcher(label=0).evaluate(handmade_task)
        assert result.f1 == 0.0
        assert result.precision == 0.0

    def test_prediction_shape_enforced(self, handmade_task):
        matcher = _BrokenMatcher().fit(handmade_task)
        with pytest.raises(RuntimeError, match="predictions"):
            matcher.predict(handmade_task.testing)

    def test_timings_recorded(self, handmade_task):
        result = _ConstantMatcher().evaluate(handmade_task)
        assert result.fit_seconds >= 0.0
        assert result.predict_seconds >= 0.0

    def test_repr(self):
        assert "Constant(1)" in repr(_ConstantMatcher())
