"""Tests for the ESDE linear matchers (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matchers.esde import ESDE_VARIANTS, EsdeMatcher, make_esde
from repro.matchers.features import EsdeFeatureExtractor


class TestConstruction:
    def test_all_variants_construct(self):
        for variant in EsdeFeatureExtractor.VARIANTS:
            matcher = EsdeMatcher(variant)
            assert matcher.name == f"{variant}-ESDE"
            assert not matcher.non_linear

    def test_make_esde_accepts_table_names(self):
        for name in ESDE_VARIANTS:
            assert make_esde(name).name == name

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            EsdeMatcher("XX")


class TestFeatureExtraction:
    def test_sa_dimensions(self, handmade_task):
        extractor = EsdeFeatureExtractor("SA", handmade_task)
        assert extractor.n_features == 3

    def test_sb_dimensions(self, handmade_task):
        extractor = EsdeFeatureExtractor("SB", handmade_task)
        assert extractor.n_features == 3 * len(handmade_task.attributes)

    def test_saq_dimensions(self, handmade_task):
        extractor = EsdeFeatureExtractor("SAQ", handmade_task)
        assert extractor.n_features == 27  # q in [2, 10] x {cs, ds, js}

    def test_sbq_dimensions(self, handmade_task):
        extractor = EsdeFeatureExtractor("SBQ", handmade_task)
        assert extractor.n_features == 27 * len(handmade_task.attributes)

    def test_sas_dimensions(self, handmade_task):
        extractor = EsdeFeatureExtractor("SAS", handmade_task)
        assert extractor.n_features == 3

    def test_features_in_unit_interval(self, handmade_task):
        for variant in ("SA", "SB", "SAQ", "SAS"):
            extractor = EsdeFeatureExtractor(variant, handmade_task)
            matrix = extractor.feature_matrix(handmade_task.training)
            assert np.all((matrix >= 0.0) & (matrix <= 1.0)), variant

    def test_feature_names_match_count(self, handmade_task):
        for variant in EsdeFeatureExtractor.VARIANTS:
            extractor = EsdeFeatureExtractor(variant, handmade_task)
            assert len(extractor.feature_names) == extractor.n_features


class TestFitPredict:
    @pytest.mark.parametrize("variant", ["SA", "SB", "SAQ"])
    def test_high_f1_on_easy_task(self, variant, handmade_task):
        result = EsdeMatcher(variant).evaluate(handmade_task)
        assert result.f1 > 0.9

    def test_unfitted_predict_raises(self, handmade_task):
        with pytest.raises(RuntimeError):
            EsdeMatcher("SA").predict(handmade_task.testing)

    def test_selected_feature_exposed(self, handmade_task):
        matcher = EsdeMatcher("SA")
        assert matcher.best_feature_name is None
        matcher.fit(handmade_task)
        assert matcher.best_feature_name in ("cs", "ds", "js")
        assert 0.0 <= matcher.best_threshold_ <= 1.0

    def test_training_thresholds_per_feature(self, handmade_task):
        matcher = EsdeMatcher("SB").fit(handmade_task)
        assert matcher.training_thresholds_ is not None
        assert matcher.training_thresholds_.shape == (
            3 * len(handmade_task.attributes),
        )

    def test_deterministic(self, handmade_task):
        first = EsdeMatcher("SA").evaluate(handmade_task)
        second = EsdeMatcher("SA").evaluate(handmade_task)
        assert first.f1 == second.f1

    def test_result_fields(self, handmade_task):
        result = EsdeMatcher("SA").evaluate(handmade_task)
        assert result.task == "handmade"
        assert result.matcher == "SA-ESDE"
        assert result.fit_seconds >= 0.0
        assert result.f1_percent == pytest.approx(100 * result.f1)

    def test_on_generated_task(self, small_task):
        result = EsdeMatcher("SA").evaluate(small_task)
        assert 0.3 < result.f1 <= 1.0
