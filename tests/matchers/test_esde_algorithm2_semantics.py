"""Algorithm 2 semantics: where each decision of ESDE is made.

The paper is specific: per-feature thresholds come from the *training* set
(lines 6-14), the single best feature is chosen on the *validation* set
(lines 15-24), and the testing set only ever sees that one feature at that
one threshold (lines 25-30). These tests build tasks where the sets
disagree, to pin each decision to the right split.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record, RecordStore, Schema
from repro.data.task import MatchingTask
from repro.matchers.esde import EsdeMatcher


def _record(record_id: str, source: str, name: str, brand: str) -> Record:
    return Record(
        record_id=record_id, source=source, values={"name": name, "brand": brand}
    )


def _build_task(
    training_rows, validation_rows, testing_rows
) -> MatchingTask:
    """Rows are (name_left, brand_left, name_right, brand_right, label)."""
    schema = Schema(("name", "brand"))
    left = RecordStore("L", schema)
    right = RecordStore("R", schema)
    splits = []
    counter = 0
    for rows in (training_rows, validation_rows, testing_rows):
        pairs = LabeledPairSet()
        for name_l, brand_l, name_r, brand_r, label in rows:
            counter += 1
            a = _record(f"a{counter}", "A", name_l, brand_l)
            b = _record(f"b{counter}", "B", name_r, brand_r)
            left.add(a)
            right.add(b)
            pairs.add(RecordPair(a, b), label)
        splits.append(pairs)
    return MatchingTask("alg2", left, right, *splits)


class TestAlgorithm2Decisions:
    def test_feature_selected_on_validation_not_training(self):
        """Training favours the name feature; validation reverses it.

        In training, matches always agree on name but only half agree on
        brand, so the name feature is the training-optimal one (F1 1 vs
        2/3) while brand still gets a valid low threshold. In validation,
        matches agree on brand and disagree on name — so the brand
        feature wins validation and must be the one applied to the
        testing set.
        """
        train = [
            ("alpha beta", "acme", "alpha beta", "acme", 1),
            ("gamma delta", "acme", "gamma delta", "bolt", 1),
            ("epsilon zeta", "bolt", "iota kappa", "cog", 0),
            ("lambda mu", "cog", "nu xi", "dax", 0),
        ] * 3
        valid = [
            ("one two", "acme", "three four", "acme", 1),
            ("five six", "bolt", "seven eight", "bolt", 1),
            ("nine ten", "cog", "nine ten", "zorg", 0),
            ("eleven twelve", "dax", "eleven twelve", "erg", 0),
        ]
        test = [
            # Matching by the brand rule, non-matching by the name rule.
            ("aaa bbb", "acme", "ccc ddd", "acme", 1),
            ("eee fff", "bolt", "ggg hhh", "bolt", 1),
            ("iii jjj", "cog", "iii jjj", "dax", 0),
        ]
        matcher = EsdeMatcher("SB").fit(_build_task(train, valid, test))
        assert matcher.best_feature_name is not None
        assert matcher.best_feature_name.startswith("brand:")

    def test_threshold_comes_from_training(self):
        """The applied threshold is the training-optimal one for the
        selected feature, recorded in ``training_thresholds_``."""
        train = [
            ("alpha beta", "x", "alpha beta", "x", 1),
            ("gamma delta", "x", "gamma delta", "x", 1),
            ("one two", "x", "three four", "x", 0),
            ("five six", "x", "seven eight", "x", 0),
        ] * 2
        valid = train[:4]
        test = train[:4]
        matcher = EsdeMatcher("SA").fit(_build_task(train, valid, test))
        assert matcher.best_feature_ is not None
        assert matcher.training_thresholds_ is not None
        assert matcher.best_threshold_ == pytest.approx(
            matcher.training_thresholds_[matcher.best_feature_]
        )

    def test_testing_set_never_influences_fit(self):
        """Two tasks differing only in their testing labels produce the
        same fitted decision rule."""
        train = [
            ("alpha beta", "x", "alpha beta", "x", 1),
            ("one two", "x", "three four", "x", 0),
        ] * 4
        valid = train[:4]
        test_a = [("alpha beta", "x", "alpha beta", "x", 1)]
        test_b = [("alpha beta", "x", "alpha beta", "x", 0)]
        matcher_a = EsdeMatcher("SA").fit(_build_task(train, valid, test_a))
        matcher_b = EsdeMatcher("SA").fit(_build_task(train, valid, test_b))
        assert matcher_a.best_feature_ == matcher_b.best_feature_
        assert matcher_a.best_threshold_ == matcher_b.best_threshold_

    def test_prediction_is_pure_threshold_rule(self):
        """Predictions equal (selected feature >= threshold) exactly."""
        train = [
            ("alpha beta", "x", "alpha beta", "x", 1),
            ("one two", "x", "three four", "x", 0),
        ] * 4
        task = _build_task(train, train[:4], train[:4])
        matcher = EsdeMatcher("SA").fit(task)
        assert matcher._extractor is not None
        scores = np.asarray(
            [
                matcher._extractor.features(pair)[matcher.best_feature_]
                for pair, __ in task.testing
            ]
        )
        expected = (scores >= matcher.best_threshold_).astype(int)
        np.testing.assert_array_equal(matcher.predict(task.testing), expected)
