"""Tests for the five deep matcher stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matchers.deep import (
    DeepMatcherNet,
    DittoNet,
    EMTransformerNet,
    GnemNet,
    HierMatcherNet,
)

ALL_DEEP = [
    lambda: DeepMatcherNet(epochs=30),
    lambda: EMTransformerNet("B", epochs=30),
    lambda: EMTransformerNet("R", epochs=30),
    lambda: GnemNet(epochs=30),
    lambda: DittoNet(epochs=30),
    lambda: HierMatcherNet(epochs=30),
]

#: HierMatcher's record-level alignment features cannot sharply resolve the
#: handmade task's near-duplicate negatives (identical except one digit), so
#: its bar is lower — mirroring its mediocre showing in the paper's tables.
_MIN_F1 = {"HierMatcher": 0.6}


class TestAllDeepMatchers:
    @pytest.mark.parametrize("factory", ALL_DEEP)
    def test_learns_easy_task(self, factory, handmade_task):
        result = factory().evaluate(handmade_task)
        minimum = _MIN_F1.get(result.matcher.split(" ")[0], 0.7)
        assert result.f1 > minimum, result.matcher

    @pytest.mark.parametrize("factory", ALL_DEEP)
    def test_predictions_binary(self, factory, handmade_task):
        matcher = factory().fit(handmade_task)
        predictions = matcher.predict(handmade_task.testing)
        assert set(np.unique(predictions)) <= {0, 1}

    @pytest.mark.parametrize("factory", ALL_DEEP)
    def test_unfitted_raises(self, factory, handmade_task):
        with pytest.raises(RuntimeError):
            factory().predict(handmade_task.testing)

    def test_names_carry_epochs(self):
        assert DeepMatcherNet(epochs=15).name == "DeepMatcher (15)"
        assert EMTransformerNet("R", epochs=40).name == "EMTransformer-R (40)"
        assert GnemNet(epochs=10).name == "GNEM (10)"
        assert DittoNet(epochs=15).name == "DITTO (15)"
        assert HierMatcherNet(epochs=10).name == "HierMatcher (10)"

    def test_invalid_epochs_raise(self):
        with pytest.raises(ValueError):
            DeepMatcherNet(epochs=0)

    def test_emtransformer_invalid_variant(self):
        with pytest.raises(ValueError):
            EMTransformerNet("Z")


class TestRepresentations:
    def test_deepmatcher_rep_dimension(self, handmade_task):
        matcher = DeepMatcherNet(epochs=2)
        matcher.fit(handmade_task)
        matrix = matcher.representation_matrix(handmade_task.testing)
        assert matrix.shape == (
            len(handmade_task.testing),
            4 * len(handmade_task.attributes),
        )

    def test_emtransformer_rep_dimension(self, handmade_task):
        matcher = EMTransformerNet("B", epochs=2)
        matcher.fit(handmade_task)
        matrix = matcher.representation_matrix(handmade_task.testing)
        # 2 * 64 (u*v, |u-v|) + cosine + 4 lexical evidence features.
        assert matrix.shape[1] == 2 * 64 + 1 + 4

    def test_hiermatcher_rep_dimension(self, handmade_task):
        matcher = HierMatcherNet(epochs=2)
        matcher.fit(handmade_task)
        matrix = matcher.representation_matrix(handmade_task.testing)
        assert matrix.shape[1] == 2 * len(handmade_task.attributes) + 2


class TestDitto:
    def test_augmentation_grows_training(self, handmade_task):
        matcher = DittoNet(epochs=2, augment_copies=3)
        matcher._prepare(handmade_task)
        features = matcher.representation_matrix(handmade_task.training)
        labels = handmade_task.training.labels
        augmented, augmented_labels = matcher._augment(
            features, labels, handmade_task
        )
        positives = int(labels.sum())
        assert augmented.shape[0] == features.shape[0] + 3 * positives
        assert augmented_labels.sum() == labels.sum() + 3 * positives

    def test_no_augmentation(self, handmade_task):
        matcher = DittoNet(epochs=2, augment_copies=0)
        matcher._prepare(handmade_task)
        features = matcher.representation_matrix(handmade_task.training)
        labels = handmade_task.training.labels
        augmented, __ = matcher._augment(features, labels, handmade_task)
        assert augmented.shape == features.shape

    def test_summarization_caps_tokens(self, handmade_task):
        matcher = DittoNet(epochs=2, max_tokens=3)
        matcher._prepare(handmade_task)
        record = handmade_task.left.records()[0]
        vector = matcher._record_vector(record)
        assert np.isfinite(vector).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DittoNet(max_tokens=0)
        with pytest.raises(ValueError):
            DittoNet(augment_copies=-1)


class TestGnem:
    def test_propagation_bounds(self, handmade_task):
        matcher = GnemNet(epochs=3, propagation=0.3).fit(handmade_task)
        scores = matcher._propagated_scores(handmade_task.testing)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_zero_propagation_equals_local(self, handmade_task):
        matcher = GnemNet(epochs=3, propagation=0.0).fit(handmade_task)
        local = matcher.decision_scores(handmade_task.testing)
        propagated = matcher._propagated_scores(handmade_task.testing)
        np.testing.assert_allclose(local, propagated)

    def test_invalid_propagation(self):
        with pytest.raises(ValueError):
            GnemNet(propagation=1.0)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [lambda: DeepMatcherNet(epochs=3, seed=5),
                    lambda: EMTransformerNet("B", epochs=3, seed=5)]
    )
    def test_same_seed_same_result(self, factory, handmade_task):
        first = factory().evaluate(handmade_task)
        second = factory().evaluate(handmade_task)
        assert first.f1 == second.f1
