"""Golden parity: vectorized feature paths vs the scalar per-pair oracle.

The contract of the ISSUE-5 refactor is *bit-identical* features: for
every ESDE variant, for Magellan, and for the linearity sweep's pair
similarities, the batched kernel path must reproduce the per-pair scalar
computation exactly (``np.array_equal``, no tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.linearity import DEGENERATE_THRESHOLD, pair_similarities
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import RecordStore, Schema
from repro.data.task import MatchingTask
from repro.matchers.esde import EsdeMatcher
from repro.matchers.features import (
    EsdeFeatureExtractor,
    MagellanFeatureExtractor,
)
from repro.obs import Observability
from repro.text.feature_store import (
    FeatureMatrixCache,
    feature_cache_scope,
    store_for_task,
)
from repro.text.similarity import (
    cosine_similarity,
    jaccard_similarity,
    overlap_coefficient,
)
from tests.conftest import make_record

SET_VARIANTS = ("SA", "SB", "SAQ", "SBQ")
ALL_VARIANTS = EsdeFeatureExtractor.VARIANTS


def _oracle(extractor, pairs: LabeledPairSet) -> np.ndarray:
    """The scalar per-pair path, stacked — the golden reference."""
    return np.vstack([extractor.features(pair) for pair in pairs.pairs])


def _edge_case_task() -> MatchingTask:
    """A task whose records exercise every awkward text shape.

    Empty values, values shorter than the largest q (10), single
    characters, repeated grams, numerics, and unicode — the shapes most
    likely to diverge between a vectorized encoder and the scalar one.
    """
    schema = Schema(("name", "code"))
    lefts = [
        make_record("l0", "edge_left", name="", code=""),
        make_record("l1", "edge_left", name="a", code="7"),
        make_record("l2", "edge_left", name="ab cd", code="x"),
        make_record("l3", "edge_left", name="aaaaaaaaaaaa", code="12.5"),
        make_record("l4", "edge_left", name="Straße déjà vu", code="ß"),
        make_record("l5", "edge_left", name="one two three four", code="n/a"),
    ]
    rights = [
        make_record("r0", "edge_right", name="", code="7"),
        make_record("r1", "edge_right", name="a", code=""),
        make_record("r2", "edge_right", name="ab", code="x y"),
        make_record("r3", "edge_right", name="aaaa", code="12.9"),
        make_record("r4", "edge_right", name="strasse deja vu", code="ss"),
        make_record("r5", "edge_right", name="three four five", code="N/A"),
    ]
    left = RecordStore("edge_left", schema, lefts)
    right = RecordStore("edge_right", schema, rights)
    training = LabeledPairSet()
    validation = LabeledPairSet()
    testing = LabeledPairSet()
    for index, (a, b) in enumerate(
        (l, r) for l in lefts for r in rights
    ):
        split = (training, validation, testing)[index % 3]
        split.add(RecordPair(a, b), int(a.record_id[1] == b.record_id[1]))
    return MatchingTask("edge", left, right, training, validation, testing)


class TestEsdeParity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_matrix_matches_oracle(self, variant, handmade_task):
        extractor = EsdeFeatureExtractor(variant, handmade_task)
        for split in (handmade_task.training, handmade_task.validation):
            matrix = extractor.feature_matrix(split)
            assert matrix.shape == (len(split), extractor.n_features)
            assert np.array_equal(matrix, _oracle(extractor, split))

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_every_column_matches_matrix(self, variant, handmade_task):
        extractor = EsdeFeatureExtractor(variant, handmade_task)
        split = handmade_task.testing
        matrix = extractor.feature_matrix(split)
        for index in range(extractor.n_features):
            column = extractor.feature_column(split, index)
            assert column.shape == (len(split),)
            assert np.array_equal(column, matrix[:, index])

    @pytest.mark.parametrize("variant", SET_VARIANTS)
    def test_edge_case_records(self, variant):
        task = _edge_case_task()
        extractor = EsdeFeatureExtractor(variant, task)
        for split in (task.training, task.validation, task.testing):
            matrix = extractor.feature_matrix(split)
            assert np.array_equal(matrix, _oracle(extractor, split))

    def test_cache_hit_is_byte_identical(self, handmade_task, tmp_path):
        split = handmade_task.training
        with obs.use(Observability()), feature_cache_scope(
            FeatureMatrixCache(tmp_path)
        ):
            first = EsdeFeatureExtractor("SAQ", handmade_task).feature_matrix(
                split
            )
            second = EsdeFeatureExtractor("SAQ", handmade_task).feature_matrix(
                split
            )
            assert obs.counter("features.cache_hit") == 1
        assert first.tobytes() == second.tobytes()


class TestEsdeDegenerateFold:
    def test_all_negative_training_predicts_all_negative(self):
        # Regression: with zero training positives no threshold attains
        # f1 > 0, and the old code fell back to threshold 0.0 — which
        # classifies *every* pair positive (all similarities are >= 0).
        # The DEGENERATE_THRESHOLD sentinel must predict all-negative.
        task = _edge_case_task()
        negative_training = LabeledPairSet()
        for pair, __ in task.training:
            negative_training.add(pair, 0)
        negative_task = MatchingTask(
            "all_negative",
            task.left,
            task.right,
            negative_training,
            task.validation,
            task.testing,
        )
        matcher = EsdeMatcher("SA")
        matcher.fit(negative_task)
        assert matcher.training_thresholds_ is not None
        assert np.all(matcher.training_thresholds_ == DEGENERATE_THRESHOLD)
        predictions = matcher.predict(negative_task.testing)
        assert not predictions.any()


class TestMagellanParity:
    def test_matrix_matches_oracle(self, handmade_task):
        extractor = MagellanFeatureExtractor(
            handmade_task.attributes, store_for_task(handmade_task)
        )
        for split in (handmade_task.training, handmade_task.testing):
            matrix = extractor.feature_matrix(split)
            assert matrix.shape == (len(split), extractor.n_features)
            assert np.array_equal(matrix, _oracle(extractor, split))

    def test_edge_case_records(self):
        task = _edge_case_task()
        extractor = MagellanFeatureExtractor(("name", "code"))
        matrix = extractor.feature_matrix(task.testing)
        assert np.array_equal(matrix, _oracle(extractor, task.testing))

    def test_features_are_symmetric_and_cached_once(self):
        # Every Magellan measure is symmetric (Monge-Elkan explicitly
        # symmetrized), so the value cache canonicalizes (a, b)/(b, a) to
        # one key — the old direction-sensitive key computed both and
        # could disagree with itself on asymmetric Monge-Elkan scores.
        left = make_record("l0", "left", name="acme widget alpha kit")
        right = make_record("r0", "right", name="widget acme kits")
        extractor = MagellanFeatureExtractor(("name",))
        forward = extractor.features(RecordPair(left, right))
        backward = extractor.features(RecordPair(right, left))
        assert np.array_equal(forward, backward)
        assert len(extractor._value_cache) == 1
        assert len(extractor._edit_cache) == 1

    def test_docstring_behavior_pinned(self):
        # The documented edge-case contract, pinned so a future "cleanup"
        # cannot silently change feature values:
        extractor = MagellanFeatureExtractor(("name",))
        names = extractor._PER_ATTRIBUTE

        def features_for(left_value, right_value):
            pair = RecordPair(
                make_record(f"l{left_value!r}", "left", name=left_value),
                make_record(f"r{right_value!r}", "right", name=right_value),
            )
            return dict(zip(names, extractor.features(pair)))

        # An empty value yields 0.0 for both edit measures (no fallback).
        empty = features_for("", "acme")
        assert empty["lev"] == 0.0 and empty["jw"] == 0.0
        # Values are truncated to 32 chars before the edit measures:
        # strings identical in their first 32 characters score 1.0.
        long = features_for("x" * 32 + "left tail", "x" * 32 + "other")
        assert long["lev"] == 1.0 and long["jw"] == 1.0
        # Monge-Elkan degrades to 0.5 beyond 6 tokens per side...
        many = features_for("a b c d e f g", "a b c d e f g")
        assert many["me"] == 0.5
        # ...and numeric similarity to 0.5 when either side is not a number.
        assert many["num"] == 0.5
        both_numeric = features_for("10", "10")
        assert both_numeric["num"] == 1.0


class TestPairSimilarities:
    def test_vectorized_measures_match_scalar_loop(self, handmade_task):
        store = store_for_task(handmade_task)
        for split in (handmade_task.training, handmade_task.testing):
            for measure in (cosine_similarity, jaccard_similarity):
                batched = pair_similarities(split, measure, store)
                scalar = np.asarray(
                    [
                        measure(pair.left.tokens(), pair.right.tokens())
                        for pair, __ in split
                    ],
                    dtype=np.float64,
                )
                assert np.array_equal(batched, scalar)

    def test_custom_callable_uses_scalar_path(self, handmade_task):
        split = handmade_task.validation
        scores = pair_similarities(split, overlap_coefficient)
        expected = [
            overlap_coefficient(pair.left.tokens(), pair.right.tokens())
            for pair, __ in split
        ]
        assert list(scores) == expected
