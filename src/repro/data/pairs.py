"""Candidate record pairs and labeled pair sets."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.records import Record


@dataclass(frozen=True)
class RecordPair:
    """A candidate pair: one record from each of the two sources."""

    left: Record
    right: Record

    @property
    def key(self) -> tuple[str, str]:
        """A hashable identity for the pair (left id, right id)."""
        return (self.left.record_id, self.right.record_id)


class LabeledPairSet:
    """An ordered set of candidate pairs with binary match labels.

    Serves as any of the T / V / C sets of Problem 1. Order is preserved and
    meaningful (labels align by position); pair keys are unique.
    """

    def __init__(
        self,
        pairs: Sequence[RecordPair] = (),
        labels: Sequence[int] = (),
    ) -> None:
        if len(pairs) != len(labels):
            raise ValueError(
                f"{len(pairs)} pairs but {len(labels)} labels"
            )
        self._pairs: list[RecordPair] = []
        self._labels: list[int] = []
        self._keys: set[tuple[str, str]] = set()
        for pair, label in zip(pairs, labels):
            self.add(pair, label)

    def add(self, pair: RecordPair, label: int) -> None:
        """Append a labeled pair; duplicate pair keys are rejected."""
        if label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {label!r}")
        if pair.key in self._keys:
            raise ValueError(f"duplicate pair {pair.key}")
        self._keys.add(pair.key)
        self._pairs.append(pair)
        self._labels.append(label)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[RecordPair, int]]:
        return iter(zip(self._pairs, self._labels))

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._keys

    @property
    def pairs(self) -> list[RecordPair]:
        return list(self._pairs)

    @property
    def labels(self) -> np.ndarray:
        return np.asarray(self._labels, dtype=np.int64)

    @property
    def positive_count(self) -> int:
        return sum(self._labels)

    @property
    def negative_count(self) -> int:
        return len(self._labels) - self.positive_count

    @property
    def imbalance_ratio(self) -> float:
        """Fraction of positive instances (the IR column of Table III/V)."""
        if not self._labels:
            return 0.0
        return self.positive_count / len(self._labels)

    def keys(self) -> set[tuple[str, str]]:
        """The set of pair keys (copies the internal set)."""
        return set(self._keys)

    def subset(self, indices: Sequence[int]) -> "LabeledPairSet":
        """A new set with the pairs at *indices*, in that order."""
        return LabeledPairSet(
            [self._pairs[i] for i in indices],
            [self._labels[i] for i in indices],
        )

    @staticmethod
    def merge(parts: Iterable["LabeledPairSet"]) -> "LabeledPairSet":
        """Concatenate several disjoint pair sets into one.

        This is line 1 of Algorithm 1 (``D = T | V | C``); overlapping keys
        raise, enforcing the mutual exclusivity of Problem 1.
        """
        merged = LabeledPairSet()
        for part in parts:
            for pair, label in part:
                merged.add(pair, label)
        return merged
