"""CSV round-trip for record stores and matching tasks.

The public ER benchmarks ship as CSV files (tableA.csv / tableB.csv plus
train/valid/test pair lists); this module mirrors that layout so generated
benchmarks can be exported, inspected and re-loaded.

All writes are atomic (tmp file + ``os.replace`` via
:func:`repro.runtime.atomic_writer`, which also fsyncs the directory so
the rename survives a power cut): an interrupted export never leaves a
half-written table or pair list behind. A full volume surfaces as the
typed :class:`repro.runtime.DiskFull` (ENOSPC/EDQUOT, partial temp file
already cleaned up) rather than a bare ``OSError``. Readers pass the
``io:read`` fault site, so chaos campaigns can rehearse unreadable
exports too.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record, RecordStore, Schema
from repro.data.task import MatchingTask
from repro.runtime import atomic_write_text, atomic_writer, faults


def save_record_store(store: RecordStore, path: Path | str) -> None:
    """Write a store to CSV with an ``id`` column plus one per attribute."""
    with atomic_writer(Path(path), newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", *store.schema.attributes])
        for record in store:
            writer.writerow(
                [record.record_id]
                + [record.value(attribute) for attribute in store.schema]
            )


def load_record_store(path: Path | str, name: str, source: str) -> RecordStore:
    """Load a store written by :func:`save_record_store`."""
    source_path = Path(path)
    faults.fire("io:read")
    with source_path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "id":
            raise ValueError(f"{source_path} is not a record-store CSV")
        schema = Schema(tuple(header[1:]))
        store = RecordStore(name, schema)
        for row in reader:
            if len(row) != len(header):
                raise ValueError(
                    f"{source_path}: row has {len(row)} fields, expected {len(header)}"
                )
            values = dict(zip(schema.attributes, row[1:]))
            store.add(Record(record_id=row[0], source=source, values=values))
    return store


def _save_pairs(pairs: LabeledPairSet, path: Path) -> None:
    with atomic_writer(path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ltable_id", "rtable_id", "label"])
        for pair, label in pairs:
            writer.writerow([pair.left.record_id, pair.right.record_id, label])


def _load_pairs(
    path: Path, left: RecordStore, right: RecordStore
) -> LabeledPairSet:
    pairs = LabeledPairSet()
    faults.fire("io:read")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["ltable_id", "rtable_id", "label"]:
            raise ValueError(f"{path} is not a pair-list CSV")
        for left_id, right_id, label in reader:
            pairs.add(
                RecordPair(left.get(left_id), right.get(right_id)), int(label)
            )
    return pairs


def save_task(task: MatchingTask, directory: Path | str) -> None:
    """Write a task as tableA/tableB + train/valid/test CSVs."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    save_record_store(task.left, target / "tableA.csv")
    save_record_store(task.right, target / "tableB.csv")
    _save_pairs(task.training, target / "train.csv")
    _save_pairs(task.validation, target / "valid.csv")
    _save_pairs(task.testing, target / "test.csv")
    atomic_write_text(target / "NAME", task.name + "\n")


def load_task(directory: Path | str) -> MatchingTask:
    """Load a task written by :func:`save_task`."""
    source = Path(directory)
    name = (source / "NAME").read_text(encoding="utf-8").strip()
    left = load_record_store(source / "tableA.csv", name + "/A", "A")
    right = load_record_store(source / "tableB.csv", name + "/B", "B")
    return MatchingTask(
        name=name,
        left=left,
        right=right,
        training=_load_pairs(source / "train.csv", left, right),
        validation=_load_pairs(source / "valid.csv", left, right),
        testing=_load_pairs(source / "test.csv", left, right),
    )
