"""The matching task: Problem 1 of the paper as a first-class object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.pairs import LabeledPairSet
from repro.data.records import RecordStore


@dataclass(frozen=True)
class TaskStatistics:
    """The descriptive statistics reported in Tables III and V."""

    name: str
    left_size: int
    right_size: int
    n_attributes: int
    training_instances: int
    training_positives: int
    training_negatives: int
    validation_instances: int
    testing_instances: int
    testing_positives: int
    testing_negatives: int
    imbalance_ratio: float


class MatchingTask:
    """A record-linkage matching benchmark: two sources plus T, V, C.

    Invariants enforced at construction (Problem 1): the three pair sets are
    mutually exclusive, and every pair joins a left-source record with a
    right-source record.
    """

    def __init__(
        self,
        name: str,
        left: RecordStore,
        right: RecordStore,
        training: LabeledPairSet,
        validation: LabeledPairSet,
        testing: LabeledPairSet,
        metadata: dict[str, object] | None = None,
    ) -> None:
        for first, second, label in (
            (training, validation, "training/validation"),
            (training, testing, "training/testing"),
            (validation, testing, "validation/testing"),
        ):
            overlap = first.keys() & second.keys()
            if overlap:
                raise ValueError(
                    f"{label} sets of task {name!r} overlap on {len(overlap)} pairs"
                )
        for split_name, split in (
            ("training", training),
            ("validation", validation),
            ("testing", testing),
        ):
            for pair, __ in split:
                if pair.left.record_id not in left:
                    raise ValueError(
                        f"{split_name} pair references unknown left record "
                        f"{pair.left.record_id!r} in task {name!r}"
                    )
                if pair.right.record_id not in right:
                    raise ValueError(
                        f"{split_name} pair references unknown right record "
                        f"{pair.right.record_id!r} in task {name!r}"
                    )
        self.name = name
        self.left = left
        self.right = right
        self.training = training
        self.validation = validation
        self.testing = testing
        #: free-form provenance, e.g. the generator's concept vocabulary
        #: (under key ``"vocabulary"``) that the synthetic language model
        #: uses as its "pre-training corpus".
        self.metadata: dict[str, object] = dict(metadata or {})

    def all_pairs(self) -> LabeledPairSet:
        """T | V | C merged (line 1 of Algorithm 1)."""
        return LabeledPairSet.merge([self.training, self.validation, self.testing])

    @property
    def attributes(self) -> tuple[str, ...]:
        """The shared attribute names (both sources use aligned schemata)."""
        return self.left.schema.attributes

    def statistics(self) -> TaskStatistics:
        """Compute the Table III / Table V row for this task."""
        return TaskStatistics(
            name=self.name,
            left_size=len(self.left),
            right_size=len(self.right),
            n_attributes=len(self.left.schema),
            training_instances=len(self.training),
            training_positives=self.training.positive_count,
            training_negatives=self.training.negative_count,
            validation_instances=len(self.validation),
            testing_instances=len(self.testing),
            testing_positives=self.testing.positive_count,
            testing_negatives=self.testing.negative_count,
            imbalance_ratio=self.all_pairs().imbalance_ratio,
        )

    def __repr__(self) -> str:
        return (
            f"MatchingTask({self.name!r}, |T|={len(self.training)}, "
            f"|V|={len(self.validation)}, |C|={len(self.testing)})"
        )
