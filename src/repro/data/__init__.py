"""Record/pair substrate: the data model every other subsystem builds on.

A *record* is a dict of attribute values with an id and a source tag; a
*record store* is one duplicate-free data source; a *record pair* joins two
records (one per source, record linkage / Clean-Clean ER); a *labeled pair
set* carries match/non-match labels; and a *matching task* bundles the
training, validation and testing sets (T, V, C of Problem 1 in the paper)
with the 3:1:1 split convention of the established benchmarks.
"""

from repro.data.records import Record, RecordStore, Schema
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.task import MatchingTask, TaskStatistics
from repro.data.splits import split_three_way
from repro.data.io import (
    load_record_store,
    load_task,
    save_record_store,
    save_task,
)

__all__ = [
    "LabeledPairSet",
    "MatchingTask",
    "Record",
    "RecordPair",
    "RecordStore",
    "Schema",
    "TaskStatistics",
    "load_record_store",
    "load_task",
    "save_record_store",
    "save_task",
    "split_three_way",
]
