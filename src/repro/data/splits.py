"""Seeded stratified splitting of labeled pair sets.

The established benchmarks split candidates into training/validation/testing
with ratio 3:1:1 (Section V); the new-benchmark methodology (Section VI,
step 3) does the same "randomly ... using the ground truth", i.e. stratified
so that "the imbalance ratio ... is the same in all sets".
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import LabeledPairSet


def split_three_way(
    pairs: LabeledPairSet,
    ratios: tuple[int, int, int] = (3, 1, 1),
    seed: int = 0,
) -> tuple[LabeledPairSet, LabeledPairSet, LabeledPairSet]:
    """Split into (training, validation, testing) stratified by label.

    Each class is shuffled independently and divided according to *ratios*,
    so every split keeps (up to rounding) the global imbalance ratio. The
    split is deterministic given *seed*.
    """
    if len(ratios) != 3 or any(r <= 0 for r in ratios):
        raise ValueError(f"ratios must be three positive numbers, got {ratios}")
    if len(pairs) < 3:
        raise ValueError(f"need at least 3 pairs to split, got {len(pairs)}")

    rng = np.random.default_rng(seed)
    labels = pairs.labels
    total = sum(ratios)
    buckets: tuple[list[int], list[int], list[int]] = ([], [], [])
    for cls in (1, 0):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        first_cut = int(round(len(members) * ratios[0] / total))
        second_cut = first_cut + int(round(len(members) * ratios[1] / total))
        if len(members) >= 3:
            # Rounding starves minorities at small n: with ratios (3,1,1)
            # a 2-member class cuts to [1,0,1] and a 3-member class to
            # [2,1,0], so validation or testing sees zero positives and
            # threshold fitting silently degrades. Clamp so every split
            # keeps at least one member whenever the class can afford it;
            # larger classes are untouched (their cuts already satisfy
            # the bounds).
            first_cut = min(max(first_cut, 1), len(members) - 2)
            second_cut = min(max(second_cut, first_cut + 1), len(members) - 1)
        buckets[0].extend(members[:first_cut].tolist())
        buckets[1].extend(members[first_cut:second_cut].tolist())
        buckets[2].extend(members[second_cut:].tolist())

    # Shuffle within each split so classes are interleaved, not blocked.
    final: list[LabeledPairSet] = []
    for bucket in buckets:
        order = np.asarray(bucket)
        rng.shuffle(order)
        final.append(pairs.subset(order.tolist()))
    return final[0], final[1], final[2]
