"""Records, schemas and record stores (one store = one data source)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.text.tokenize import qgrams, tokenize


@dataclass(frozen=True)
class Schema:
    """An ordered list of attribute names shared by all records in a store."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a schema needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names: {self.attributes}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes


@dataclass(frozen=True)
class Record:
    """One entity description: an id, a source tag and attribute values.

    Values are plain strings (numeric attributes are stored in their string
    form, as in the CSV benchmarks); missing values are empty strings.
    """

    record_id: str
    source: str
    values: Mapping[str, str] = field(hash=False)

    def value(self, attribute: str) -> str:
        """The value of *attribute* ('' when missing)."""
        return self.values.get(attribute, "")

    def full_text(self) -> str:
        """All attribute values concatenated (schema-agnostic view)."""
        return " ".join(v for v in self.values.values() if v)

    def tokens(self) -> set[str]:
        """Distinct lower-cased tokens over all attribute values.

        This is the ``tokens(r)`` function of Algorithm 1.
        """
        return set(tokenize(self.full_text()))

    def attribute_tokens(self, attribute: str) -> set[str]:
        """Distinct tokens of one attribute value."""
        return set(tokenize(self.value(attribute)))

    def qgrams(self, q: int) -> set[str]:
        """Character q-grams over the concatenated record text."""
        return qgrams(self.full_text(), q)

    def attribute_qgrams(self, attribute: str, q: int) -> set[str]:
        """Character q-grams of one attribute value."""
        return qgrams(self.value(attribute), q)


class RecordStore:
    """A duplicate-free collection of records from a single source."""

    def __init__(
        self, name: str, schema: Schema, records: Iterable[Record] = ()
    ) -> None:
        self.name = name
        self.schema = schema
        self._records: dict[str, Record] = {}
        for record in records:
            self.add(record)

    def add(self, record: Record) -> None:
        """Add a record; ids must be unique and values must fit the schema."""
        if record.record_id in self._records:
            raise ValueError(f"duplicate record id {record.record_id!r}")
        unknown = set(record.values) - set(self.schema.attributes)
        if unknown:
            raise ValueError(
                f"record {record.record_id!r} has attributes {sorted(unknown)} "
                f"outside schema {self.schema.attributes}"
            )
        self._records[record.record_id] = record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    def get(self, record_id: str) -> Record:
        """Look up a record by id (raises ``KeyError`` when absent)."""
        return self._records[record_id]

    def ids(self) -> list[str]:
        """All record ids in insertion order."""
        return list(self._records)

    def records(self) -> list[Record]:
        """All records in insertion order (a copy of the view)."""
        return list(self._records.values())

    def subset(self, record_ids: Sequence[str], name: str | None = None) -> "RecordStore":
        """A new store containing only the given ids, in the given order."""
        return RecordStore(
            name if name is not None else self.name,
            self.schema,
            (self._records[record_id] for record_id in record_ids),
        )
