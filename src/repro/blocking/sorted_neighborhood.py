"""Sorted-neighborhood blocking.

The classic alternative to token blocking (Hernandez & Stolfo): records of
both sources are sorted by a blocking key and a window slides over the
merged order; records of different sources within the same window become
candidates. Included as a further baseline for the blocking substrate —
the methodology of Section VI accepts any blocker, and the tuner's
recall/precision analysis applies unchanged.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.blocking.base import observed_candidates
from repro.data.records import Record
from repro.datasets.generator import SourcePair
from repro.text.tokenize import tokenize

KeyFn = Callable[[Record], str]


def default_key(record: Record) -> str:
    """Default blocking key: the first three tokens, sorted, concatenated.

    Sorting the tokens makes the key robust to token-order differences
    between sources, a common sorted-neighborhood trick.
    """
    tokens = sorted(tokenize(record.full_text()))[:3]
    return " ".join(tokens)


class SortedNeighborhoodBlocker:
    """Sliding-window blocking over a sorted key order.

    Classic sorted neighborhood silently loses cross-source pairs when a
    run of identical keys is longer than the window (the tie-overflow
    problem: two records with the *same* key can sit further than
    ``window`` apart in the sorted order). Runs of equal keys are
    therefore expanded into full same-key blocks, guarded by
    ``max_block_size``: a tie run longer than that is left to the sliding
    window alone, so a degenerate key (e.g. every key empty) cannot
    explode into the cross product. ``max_block_size=None`` expands every
    run; ``max_block_size=0`` disables expansion entirely.
    """

    def __init__(
        self,
        window: int = 5,
        key: KeyFn = default_key,
        max_block_size: int | None = 200,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if max_block_size is not None and max_block_size < 0:
            raise ValueError(
                f"max_block_size must be >= 0, got {max_block_size}"
            )
        self.window = window
        self.key = key
        self.max_block_size = max_block_size

    def _expand_ties(
        self,
        entries: list[tuple[str, str, str]],
        results: set[tuple[str, str]],
    ) -> None:
        """Add all cross-source pairs of each same-key run (tie blocks)."""
        start = 0
        while start < len(entries):
            stop = start + 1
            while stop < len(entries) and entries[stop][0] == entries[start][0]:
                stop += 1
            run = entries[start:stop]
            # Runs the window already covers need no expansion; oversized
            # runs are skipped (the max_block_size guard).
            if len(run) > self.window and (
                self.max_block_size is None
                or len(run) <= self.max_block_size
            ):
                left_ids = [rid for __, side, rid in run if side == "L"]
                right_ids = [rid for __, side, rid in run if side == "R"]
                for left_id in left_ids:
                    for right_id in right_ids:
                        results.add((left_id, right_id))
            start = stop

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """All cross-source pairs co-occurring in a window or a tie block."""
        entries: list[tuple[str, str, str]] = []  # (key, side, record_id)
        for record in sources.left:
            entries.append((self.key(record), "L", record.record_id))
        for record in sources.right:
            entries.append((self.key(record), "R", record.record_id))
        entries.sort()

        results: set[tuple[str, str]] = set()
        for index, (__, side, record_id) in enumerate(entries):
            for offset in range(1, self.window):
                neighbor_index = index + offset
                if neighbor_index >= len(entries):
                    break
                __, other_side, other_id = entries[neighbor_index]
                if side == other_side:
                    continue
                if side == "L":
                    results.add((record_id, other_id))
                else:
                    results.add((other_id, record_id))
        if self.max_block_size != 0:
            self._expand_ties(entries, results)
        return results
