"""Sorted-neighborhood blocking.

The classic alternative to token blocking (Hernandez & Stolfo): records of
both sources are sorted by a blocking key and a window slides over the
merged order; records of different sources within the same window become
candidates. Included as a further baseline for the blocking substrate —
the methodology of Section VI accepts any blocker, and the tuner's
recall/precision analysis applies unchanged.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.blocking.base import observed_candidates
from repro.data.records import Record
from repro.datasets.generator import SourcePair
from repro.text.tokenize import tokenize

KeyFn = Callable[[Record], str]


def default_key(record: Record) -> str:
    """Default blocking key: the first three tokens, sorted, concatenated.

    Sorting the tokens makes the key robust to token-order differences
    between sources, a common sorted-neighborhood trick.
    """
    tokens = sorted(tokenize(record.full_text()))[:3]
    return " ".join(tokens)


class SortedNeighborhoodBlocker:
    """Sliding-window blocking over a sorted key order."""

    def __init__(self, window: int = 5, key: KeyFn = default_key) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.key = key

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """All cross-source pairs co-occurring in a window."""
        entries: list[tuple[str, str, str]] = []  # (key, side, record_id)
        for record in sources.left:
            entries.append((self.key(record), "L", record.record_id))
        for record in sources.right:
            entries.append((self.key(record), "R", record.record_id))
        entries.sort()

        results: set[tuple[str, str]] = set()
        for index, (__, side, record_id) in enumerate(entries):
            for offset in range(1, self.window):
                neighbor_index = index + offset
                if neighbor_index >= len(entries):
                    break
                __, other_side, other_id = entries[neighbor_index]
                if side == other_side:
                    continue
                if side == "L":
                    results.add((record_id, other_id))
                else:
                    results.add((other_id, record_id))
        return results
