"""One spec-driven factory for blockers and resident ANN indexes.

Before this module, every consumer built blockers its own way — the CLI
switched on ``--blocker`` strings, :func:`repro.blocking.ann
.provenance_sweep` constructed ``QGramBlocker``/``AnnBlocker`` inline,
and ``repro.serve`` would have added a fourth idiom. :func:`make_blocker`
is now the single construction path: a spec string (or an
:class:`~repro.blocking.ann.AnnConfig` passed through verbatim) plus
keyword options resolves to a configured blocker instance.
:func:`make_index` is its resident-index sibling: the same spec strings
resolve to an incremental :class:`~repro.blocking.ann.GraphIndex` or
:class:`~repro.blocking.ann.LshIndex` over a shared
:class:`~repro.text.feature_store.FeatureStore`, which is what the
``repro.serve`` session holds.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.blocking.ann import AnnBlocker, AnnConfig, GraphIndex, LshIndex
from repro.blocking.qgram import QGramBlocker
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.blocking.token import TokenBlocker
from repro.text.feature_store import FeatureStore

#: Spec strings :func:`make_blocker` understands. ``exhaustive`` is the
#: classic per-left-record q-gram blocker (the provenance-sweep
#: baseline); ``qgram`` is its explicit alias.
BLOCKER_SPECS: tuple[str, ...] = (
    "exhaustive",
    "qgram",
    "token",
    "sorted-neighborhood",
    "lsh",
    "graph",
)

#: Spec strings :func:`make_index` understands — the resident backends.
INDEX_SPECS: tuple[str, ...] = ("lsh", "graph")


def make_blocker(spec: Union[str, AnnConfig], **options):
    """Build the blocker a spec names, passing *options* to its config.

    ``exhaustive`` / ``qgram`` -> :class:`QGramBlocker`; ``token`` ->
    :class:`TokenBlocker`; ``sorted-neighborhood`` ->
    :class:`SortedNeighborhoodBlocker`; ``lsh`` / ``graph`` ->
    :class:`AnnBlocker` over ``AnnConfig(backend=spec, **options)``. An
    :class:`AnnConfig` instance passes through to :class:`AnnBlocker`
    unchanged (*options* must then be empty). Unknown specs raise
    ``ValueError`` naming :data:`BLOCKER_SPECS`.
    """
    if isinstance(spec, AnnConfig):
        if options:
            raise ValueError(
                "options cannot be combined with an explicit AnnConfig: "
                f"{sorted(options)}"
            )
        return AnnBlocker(spec)
    if spec in ("exhaustive", "qgram"):
        return QGramBlocker(**options)
    if spec == "token":
        return TokenBlocker(**options)
    if spec == "sorted-neighborhood":
        return SortedNeighborhoodBlocker(**options)
    if spec in ("lsh", "graph"):
        return AnnBlocker(AnnConfig(backend=spec, **options))
    raise ValueError(
        f"unknown blocker spec {spec!r}; known specs: {BLOCKER_SPECS}"
    )


def make_index(
    spec: Union[str, AnnConfig],
    records: Sequence,
    *,
    store: FeatureStore | None = None,
    **options,
):
    """Build a resident, incremental ANN index over *records*.

    ``graph`` -> :class:`GraphIndex` (small-world beam search), ``lsh``
    -> :class:`LshIndex` (banded-minhash buckets); both support
    ``insert(records)`` appends and ``search(record, k) ->
    Candidates``. An :class:`AnnConfig` may be passed directly as the
    spec (its ``backend`` selects the index class). Pass a *store* to
    share tokenization with other consumers — ``repro.serve`` shares
    one store between its index and its feature extraction, so every
    record is tokenized exactly once.
    """
    if isinstance(spec, AnnConfig):
        if options:
            raise ValueError(
                "options cannot be combined with an explicit AnnConfig: "
                f"{sorted(options)}"
            )
        config = spec
    elif spec in INDEX_SPECS:
        config = AnnConfig(backend=spec, **options)
    else:
        raise ValueError(
            f"unknown index spec {spec!r}; known specs: {INDEX_SPECS}"
        )
    if store is None:
        store = FeatureStore()
    view = ("qgrams", None, config.q)
    records = list(records)
    rows = store.rows(records, view)
    index_class = GraphIndex if config.backend == "graph" else LshIndex
    return index_class(records, rows, config, store=store, view=view)
