"""Blocking evaluation: pair completeness (PC) and pairs quality (PQ).

Section VI measures blocking with recall — *pair completeness*, the fraction
of true matches among the candidates — and precision — *pairs quality*, the
fraction of candidates that are matches. Both follow Christen's standard
definitions.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import obs
from repro.datasets.generator import SourcePair

_C = TypeVar("_C", bound=Callable)


def observed_candidates(method: _C) -> _C:
    """Instrument a blocker's ``candidates(self, sources)`` method.

    Wraps candidate generation with the blocking metrics — candidate
    count, block wall time, derived pairs/sec throughput — plus a phase
    probe notification keyed by the blocker's class name. A decorator so
    each blocker keeps its own generation logic untouched.
    """

    @functools.wraps(method)
    def wrapper(self, sources: SourcePair):  # type: ignore[no-untyped-def]
        start = time.perf_counter()
        result = method(self, sources)
        seconds = time.perf_counter() - start
        obs.observe("blocking.block_seconds", seconds)
        obs.inc("blocking.candidates", len(result))
        if seconds > 0:
            obs.gauge("blocking.pairs_per_sec", len(result) / seconds)
        obs.phase(type(self).__name__, "block", seconds)
        return result

    return wrapper  # type: ignore[return-value]


@dataclass(frozen=True)
class Candidates:
    """One typed candidate result: parallel ids and scores plus provenance.

    The single result shape shared by batch blocking and ``repro.serve``:
    ``ids[i]`` is what was retrieved — a record id for an index query
    (:meth:`~repro.blocking.ann.GraphIndex.search`), a ``(left_id,
    right_id)`` pair for a blocker sweep (:meth:`~repro.blocking.ann
    .AnnBlocker.candidate_result`) — ``scores[i]`` is its retrieval score
    (cosine similarity for the graph backend, shared-band fraction for
    LSH), and ``provenance`` names the backend configuration that
    produced it (:meth:`~repro.blocking.ann.AnnConfig.describe`).
    Results are ordered best-first with ties broken deterministically by
    the producer. Iteration yields the ids, so existing ``for pair in
    candidates`` / ``set(candidates)`` call shapes keep working.
    """

    ids: tuple
    scores: tuple[float, ...]
    provenance: str

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.scores):
            raise ValueError(
                f"{len(self.ids)} ids but {len(self.scores)} scores"
            )

    def __len__(self) -> int:
        return len(self.ids)

    def __bool__(self) -> bool:
        return bool(self.ids)

    def __iter__(self):
        return iter(self.ids)

    def top(self, k: int) -> "Candidates":
        """The best ``k`` results (the ordering is the producer's)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return Candidates(
            ids=self.ids[:k],
            scores=self.scores[:k],
            provenance=self.provenance,
        )

    def to_set(self) -> set:
        """The untyped id set (the classic blocker-protocol shape)."""
        return set(self.ids)


@dataclass(frozen=True)
class BlockingResult:
    """Candidate set plus its PC/PQ against the ground truth."""

    candidates: frozenset[tuple[str, str]]
    pair_completeness: float
    pairs_quality: float
    n_matching_candidates: int

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)


def evaluate_blocking(
    candidates: Iterable[tuple[str, str]], sources: SourcePair
) -> BlockingResult:
    """Score a candidate key set against the source pair's ground truth."""
    candidate_set = frozenset(candidates)
    obs.inc("blocking.evaluations")
    matching = len(candidate_set & sources.matches)
    # A zero-match source is vacuously complete: there is no true match a
    # candidate set could have missed. Reporting 0.0 here made tuners
    # (tune_deepblocker/tune_ann) unable to ever meet their recall target
    # on all-negative sources, silently falling back to the first-seen
    # configuration.
    pair_completeness = (
        matching / sources.n_matches if sources.n_matches else 1.0
    )
    pairs_quality = matching / len(candidate_set) if candidate_set else 0.0
    return BlockingResult(
        candidates=candidate_set,
        pair_completeness=pair_completeness,
        pairs_quality=pairs_quality,
        n_matching_candidates=matching,
    )
