"""Blocking evaluation: pair completeness (PC) and pairs quality (PQ).

Section VI measures blocking with recall — *pair completeness*, the fraction
of true matches among the candidates — and precision — *pairs quality*, the
fraction of candidates that are matches. Both follow Christen's standard
definitions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.datasets.generator import SourcePair


@dataclass(frozen=True)
class BlockingResult:
    """Candidate set plus its PC/PQ against the ground truth."""

    candidates: frozenset[tuple[str, str]]
    pair_completeness: float
    pairs_quality: float
    n_matching_candidates: int

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)


def evaluate_blocking(
    candidates: Iterable[tuple[str, str]], sources: SourcePair
) -> BlockingResult:
    """Score a candidate key set against the source pair's ground truth."""
    candidate_set = frozenset(candidates)
    matching = len(candidate_set & sources.matches)
    pair_completeness = (
        matching / sources.n_matches if sources.n_matches else 0.0
    )
    pairs_quality = matching / len(candidate_set) if candidate_set else 0.0
    return BlockingResult(
        candidates=candidate_set,
        pair_completeness=pair_completeness,
        pairs_quality=pairs_quality,
        n_matching_candidates=matching,
    )
