"""Blocking substrate: candidate generation and its evaluation.

Blocking reduces the quadratic pair space to the likely matches a matcher
can afford to classify. This package provides classic token and q-gram
blocking, the DeepBlocker equivalent (embedding top-K nearest-neighbour
retrieval with an optional self-supervised autoencoder), the PC/PQ
evaluation used throughout Section VI, and the grid-search tuner that
realizes the paper's "fine-tune for a minimum level of recall, maximizing
precision" step.
"""

from repro.blocking.base import (
    BlockingResult,
    Candidates,
    evaluate_blocking,
)
from repro.blocking.token import TokenBlocker
from repro.blocking.qgram import QGramBlocker
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.blocking.autoencoder import LinearAutoencoder
from repro.blocking.deepblocker import DeepBlocker, DeepBlockerConfig
from repro.blocking.tuning import (
    TunedBlocking,
    fallback_preferred,
    meeting_preferred,
    tune_deepblocker,
)
from repro.blocking.ann import (
    ANN_BACKENDS,
    AnnBlocker,
    AnnConfig,
    BackendProvenance,
    GraphIndex,
    LshIndex,
    SmallWorldGraph,
    TunedAnnBlocking,
    provenance_sweep,
    tune_ann,
)
from repro.blocking.factory import (
    BLOCKER_SPECS,
    INDEX_SPECS,
    make_blocker,
    make_index,
)

__all__ = [
    "ANN_BACKENDS",
    "AnnBlocker",
    "AnnConfig",
    "BLOCKER_SPECS",
    "BackendProvenance",
    "BlockingResult",
    "Candidates",
    "DeepBlocker",
    "DeepBlockerConfig",
    "GraphIndex",
    "INDEX_SPECS",
    "LinearAutoencoder",
    "LshIndex",
    "QGramBlocker",
    "SmallWorldGraph",
    "SortedNeighborhoodBlocker",
    "TokenBlocker",
    "TunedAnnBlocking",
    "TunedBlocking",
    "evaluate_blocking",
    "fallback_preferred",
    "make_blocker",
    "make_index",
    "meeting_preferred",
    "provenance_sweep",
    "tune_ann",
    "tune_deepblocker",
]
