"""Blocking substrate: candidate generation and its evaluation.

Blocking reduces the quadratic pair space to the likely matches a matcher
can afford to classify. This package provides classic token and q-gram
blocking, the DeepBlocker equivalent (embedding top-K nearest-neighbour
retrieval with an optional self-supervised autoencoder), the PC/PQ
evaluation used throughout Section VI, and the grid-search tuner that
realizes the paper's "fine-tune for a minimum level of recall, maximizing
precision" step.
"""

from repro.blocking.base import BlockingResult, evaluate_blocking
from repro.blocking.token import TokenBlocker
from repro.blocking.qgram import QGramBlocker
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.blocking.autoencoder import LinearAutoencoder
from repro.blocking.deepblocker import DeepBlocker, DeepBlockerConfig
from repro.blocking.tuning import TunedBlocking, tune_deepblocker

__all__ = [
    "BlockingResult",
    "DeepBlocker",
    "DeepBlockerConfig",
    "LinearAutoencoder",
    "QGramBlocker",
    "SortedNeighborhoodBlocker",
    "TokenBlocker",
    "TunedBlocking",
    "evaluate_blocking",
    "tune_deepblocker",
]
