"""Grid-search fine-tuning of DeepBlocker (Section VI, step 2).

The paper's objective: reach a minimum pair completeness (recall, default
0.9) while maximizing pairs quality (precision) — equivalently, while
minimizing the number of candidates. The grid spans the attribute to block
on (each individual attribute plus the schema-agnostic concatenation),
whether cleaning is applied, the indexing direction, and K (the lowest K
meeting the recall target is chosen per combination).

The expensive work — embeddings, autoencoder, similarity matrix — is done
once per (attribute, clean) combination through
:class:`repro.blocking.deepblocker.DeepBlockerIndex`; the K ladder and both
indexing directions reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.base import BlockingResult, evaluate_blocking
from repro.blocking.deepblocker import DeepBlockerConfig, DeepBlockerIndex
from repro.datasets.generator import SourcePair

#: K ladder searched per (attribute, clean, direction) combination.
DEFAULT_K_LADDER: tuple[int, ...] = (1, 2, 3, 5, 8, 10, 17, 25, 31, 43, 63, 95)


@dataclass(frozen=True)
class TunedBlocking:
    """The winning configuration and its blocking result."""

    config: DeepBlockerConfig
    result: BlockingResult

    @property
    def pair_completeness(self) -> float:
        return self.result.pair_completeness

    @property
    def pairs_quality(self) -> float:
        return self.result.pairs_quality


def meeting_preferred(
    challenger: BlockingResult, incumbent: BlockingResult | None
) -> bool:
    """Among configs meeting the recall target, prefer *challenger*?

    The paper's objective is candidate-minimal blocking: fewer candidates
    wins, and a candidate-count tie goes to the higher pair completeness.
    Shared by every grid tuner (:func:`tune_deepblocker`,
    :func:`repro.blocking.ann.tune_ann`).
    """
    if incumbent is None:
        return True
    if challenger.n_candidates != incumbent.n_candidates:
        return challenger.n_candidates < incumbent.n_candidates
    return challenger.pair_completeness > incumbent.pair_completeness


def fallback_preferred(
    challenger: BlockingResult, incumbent: BlockingResult | None
) -> bool:
    """When no config meets the target, prefer *challenger* as fallback?

    Highest pair completeness wins; a PC tie is broken by **fewer**
    candidates. The pre-fix strictly-greater comparison kept the
    first-seen config among PC ties, which was often the far larger
    candidate set — contradicting the minimize-candidates objective.
    """
    if incumbent is None:
        return True
    if challenger.pair_completeness != incumbent.pair_completeness:
        return challenger.pair_completeness > incumbent.pair_completeness
    return challenger.n_candidates < incumbent.n_candidates


def tune_deepblocker(
    sources: SourcePair,
    recall_target: float = 0.9,
    k_ladder: tuple[int, ...] = DEFAULT_K_LADDER,
    seed: int = 0,
) -> TunedBlocking:
    """Find the candidate-minimal DeepBlocker configuration.

    Every (attribute | all, clean, index direction) combination is probed
    with increasing K until the recall target is met; among the combinations
    that meet it, the one with the fewest candidates (highest PQ) wins. If
    none reaches the target, the configuration with the highest recall is
    returned (recall ties broken by fewer candidates) — mirroring the
    paper's observation that DeepBlocker's recall can dip slightly below
    0.9 on stubborn datasets.
    """
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(f"recall_target must be in (0, 1], got {recall_target}")
    if not k_ladder or any(k < 1 for k in k_ladder):
        raise ValueError(f"k_ladder must contain positive K values, got {k_ladder}")

    attributes: list[str | None] = [None]
    attributes.extend(sources.left.schema.attributes)
    ladder = sorted(k_ladder)

    best_meeting: TunedBlocking | None = None
    best_fallback: TunedBlocking | None = None
    for attribute in attributes:
        for clean in (False, True):
            index = DeepBlockerIndex(
                sources, attribute=attribute, clean=clean, seed=seed
            )
            for index_left in (False, True):
                for k in ladder:
                    config = DeepBlockerConfig(
                        k=k,
                        attribute=attribute,
                        clean=clean,
                        index_left=index_left,
                    )
                    result = evaluate_blocking(
                        index.candidates(k, index_left), sources
                    )
                    tuned = TunedBlocking(config=config, result=result)
                    if fallback_preferred(
                        result,
                        None if best_fallback is None else best_fallback.result,
                    ):
                        best_fallback = tuned
                    if result.pair_completeness >= recall_target:
                        if meeting_preferred(
                            result,
                            None
                            if best_meeting is None
                            else best_meeting.result,
                        ):
                            best_meeting = tuned
                        break  # lowest K for this combination found
    if best_meeting is not None:
        return best_meeting
    assert best_fallback is not None
    return best_fallback
