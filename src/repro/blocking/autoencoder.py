"""A small linear autoencoder trained self-supervised on record embeddings.

DeepBlocker's aggregator learns, without labels, a compact representation of
the record embeddings via an autoencoder. This numpy equivalent learns an
encoder/decoder pair minimizing reconstruction error with full-batch Adam;
the encoded space is what the top-K retrieval runs in.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features
from repro.ml.optim import Adam


class LinearAutoencoder:
    """One-hidden-layer tied-bias autoencoder: x -> z = xW + b -> x' = zW' + b'."""

    def __init__(
        self,
        encoding_dim: int = 32,
        epochs: int = 60,
        learning_rate: float = 5e-3,
        seed: int = 0,
    ) -> None:
        if encoding_dim < 1:
            raise ValueError(f"encoding_dim must be >= 1, got {encoding_dim}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.encoding_dim = encoding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self._encoder: np.ndarray | None = None
        self._encoder_bias: np.ndarray | None = None
        self._decoder: np.ndarray | None = None
        self._decoder_bias: np.ndarray | None = None
        self.reconstruction_error_: float = float("inf")

    def fit(self, features: np.ndarray) -> "LinearAutoencoder":
        array = check_features(features)
        n_samples, n_features = array.shape
        rng = np.random.default_rng(self.seed)
        scale = np.sqrt(6.0 / (n_features + self.encoding_dim))
        encoder = rng.uniform(-scale, scale, size=(n_features, self.encoding_dim))
        encoder_bias = np.zeros(self.encoding_dim)
        decoder = rng.uniform(-scale, scale, size=(self.encoding_dim, n_features))
        decoder_bias = np.zeros(n_features)
        params = [encoder, encoder_bias, decoder, decoder_bias]
        optimizer = Adam(params, learning_rate=self.learning_rate)

        for __ in range(self.epochs):
            encoded = array @ encoder + encoder_bias
            reconstructed = encoded @ decoder + decoder_bias
            error = (reconstructed - array) / n_samples
            grad_decoder = encoded.T @ error
            grad_decoder_bias = error.sum(axis=0)
            grad_encoded = error @ decoder.T
            grad_encoder = array.T @ grad_encoded
            grad_encoder_bias = grad_encoded.sum(axis=0)
            optimizer.step(
                [grad_encoder, grad_encoder_bias, grad_decoder, grad_decoder_bias]
            )

        self._encoder = encoder
        self._encoder_bias = encoder_bias
        self._decoder = decoder
        self._decoder_bias = decoder_bias
        encoded = array @ encoder + encoder_bias
        reconstructed = encoded @ decoder + decoder_bias
        self.reconstruction_error_ = float(np.mean((reconstructed - array) ** 2))
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Project features into the learned encoding space."""
        if self._encoder is None or self._encoder_bias is None:
            raise RuntimeError("LinearAutoencoder is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self._encoder.shape[0]:
            raise ValueError(
                f"expected {self._encoder.shape[0]} features, got {array.shape[1]}"
            )
        return array @ self._encoder + self._encoder_bias
