"""Character q-gram blocking: robust to typos at the cost of larger blocks."""

from __future__ import annotations

from repro.blocking.base import observed_candidates
from repro.data.records import RecordStore
from repro.datasets.generator import SourcePair


class QGramBlocker:
    """Inverted-index blocking on character q-grams of the full record text.

    A pair becomes a candidate when it shares at least ``min_common``
    q-grams. Because q-grams survive single-character typos, this blocker
    catches duplicates token blocking loses — with much lower precision.
    """

    def __init__(
        self, q: int = 3, min_common: int = 2, max_block_size: int | None = 200
    ) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        if min_common < 1:
            raise ValueError(f"min_common must be >= 1, got {min_common}")
        self.q = q
        self.min_common = min_common
        self.max_block_size = max_block_size

    def _index(self, store: RecordStore) -> dict[str, list[str]]:
        index: dict[str, list[str]] = {}
        for record in store:
            for gram in record.qgrams(self.q):
                index.setdefault(gram, []).append(record.record_id)
        if self.max_block_size is not None:
            index = {
                gram: ids
                for gram, ids in index.items()
                if len(ids) <= self.max_block_size
            }
        return index

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """All candidate (left_id, right_id) pairs."""
        right_index = self._index(sources.right)
        results: set[tuple[str, str]] = set()
        for left_record in sources.left:
            counts: dict[str, int] = {}
            for gram in left_record.qgrams(self.q):
                for right_id in right_index.get(gram, ()):
                    counts[right_id] = counts.get(right_id, 0) + 1
            for right_id, shared in counts.items():
                if shared >= self.min_common:
                    results.add((left_record.record_id, right_id))
        return results
