"""Standard token blocking: candidates share at least ``min_common`` tokens."""

from __future__ import annotations

from repro.blocking.base import observed_candidates
from repro.data.records import RecordStore
from repro.datasets.generator import SourcePair
from repro.text.tokenize import STOPWORDS


class TokenBlocker:
    """Inverted-index token blocking over the schema-agnostic token sets.

    Every (left, right) pair sharing at least ``min_common`` non-stop-word
    tokens becomes a candidate. ``max_block_size`` prunes high-frequency
    tokens whose blocks would degenerate toward the cross product.
    """

    def __init__(self, min_common: int = 1, max_block_size: int | None = None) -> None:
        if min_common < 1:
            raise ValueError(f"min_common must be >= 1, got {min_common}")
        self.min_common = min_common
        self.max_block_size = max_block_size

    def _index(self, store: RecordStore) -> dict[str, list[str]]:
        index: dict[str, list[str]] = {}
        for record in store:
            for token in record.tokens():
                if token in STOPWORDS:
                    continue
                index.setdefault(token, []).append(record.record_id)
        return index

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """All candidate (left_id, right_id) pairs."""
        right_index = self._index(sources.right)
        if self.max_block_size is not None:
            right_index = {
                token: ids
                for token, ids in right_index.items()
                if len(ids) <= self.max_block_size
            }
        results: set[tuple[str, str]] = set()
        for left_record in sources.left:
            counts: dict[str, int] = {}
            for token in left_record.tokens():
                for right_id in right_index.get(token, ()):
                    counts[right_id] = counts.get(right_id, 0) + 1
            for right_id, shared in counts.items():
                if shared >= self.min_common:
                    results.add((left_record.record_id, right_id))
        return results
