"""Approximate-nearest-neighbour blocking over packed q-gram codes.

Every classic blocker of this package generates candidates effectively
exhaustively per left record, which is the scalability wall of the
ROADMAP's million-record north star. This module provides the ANN
substrate (the *BlockingPy* direction, arXiv 2504.04266) on top of the
incidence structures :mod:`repro.text.kernels` already produces, with
two pure-numpy backends:

* **LSH banding** — minhash signatures over the int64 q-gram codes
  (:func:`repro.text.kernels.minhash_signatures`), folded into banded
  bucket keys; two records become a candidate pair when they share at
  least ``min_shared_bands`` buckets. The per-band bucket join is fully
  vectorized (argsort + searchsorted range joins), so candidate
  generation never walks the cross product.
* **small-world graph** — a navigable-small-world index
  (:class:`SmallWorldGraph`, HNSW-style greedy beam search over the
  masked cosine kernel) giving the ``query(record, k)`` access shape the
  future ``repro.serve`` item needs; :class:`GraphIndex` wraps it with
  the record encoding so external records can be queried directly.

Both backends are **bit-deterministic for a fixed seed**: the hash
family is derived from the seed alone, every join is sort-based (no
Python dict/set iteration order anywhere near candidate selection), and
the graph breaks all similarity ties by node id.

:class:`AnnBlocker` implements the ``candidates(sources)`` blocker
protocol under ``@observed_candidates`` and emits the ``blocking.ann.*``
metrics; :func:`tune_ann` grid-searches (signature size x bands x
min-shared-bands) for the candidate-minimal configuration meeting a
recall target, reusing :func:`repro.blocking.base.evaluate_blocking` and
the comparator pair shared with :func:`repro.blocking.tuning
.tune_deepblocker`; :func:`provenance_sweep` regenerates the Table V
blocking-provenance analysis under each backend (the recall/CSSR
trade-off of Steorts et al., arXiv 1407.3191).
"""

from __future__ import annotations

import heapq
import time
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.blocking.base import (
    BlockingResult,
    Candidates,
    evaluate_blocking,
    observed_candidates,
)
from repro.blocking.tuning import fallback_preferred, meeting_preferred
from repro.datasets.generator import SourcePair
from repro.text.feature_store import FeatureStore
from repro.text.kernels import CodeTable, band_keys, minhash_signatures

#: The two ANN backends (plus the implicit "exhaustive" baseline of the
#: provenance sweep).
ANN_BACKENDS: tuple[str, ...] = ("lsh", "graph")

_EMPTY_INDEX = np.empty(0, dtype=np.int64)


def _warn_deprecated(old: str, new: str) -> None:
    """One DeprecationWarning per call site (the PR-3 ``render`` idiom)."""
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class AnnConfig:
    """One configuration of the ANN blocking substrate.

    LSH knobs: ``n_hashes`` (signature width), ``bands`` (must divide the
    width; ``rows = n_hashes // bands`` minhash values per band),
    ``min_shared_bands`` (buckets two records must share) and
    ``max_bucket`` (degenerate buckets larger than this are skipped, the
    ``max_block_size`` analogue; ``0`` skips every bucket, ``None``
    disables the guard). Graph knobs: ``k`` neighbours retrieved per
    query, ``max_degree`` graph connectivity, ``beam_width`` search beam.
    ``q`` selects the q-gram plane and ``seed`` fixes the hash family —
    the whole pipeline is deterministic in ``(config, sources)``.
    """

    backend: str = "lsh"
    q: int = 3
    n_hashes: int = 128
    bands: int = 32
    min_shared_bands: int = 1
    max_bucket: int | None = 200
    k: int = 10
    max_degree: int = 16
    beam_width: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ANN_BACKENDS:
            raise ValueError(
                f"backend must be one of {ANN_BACKENDS}, got {self.backend!r}"
            )
        if self.q < 1:
            raise ValueError(f"q must be >= 1, got {self.q}")
        if self.n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {self.n_hashes}")
        if self.bands < 1 or self.n_hashes % self.bands:
            raise ValueError(
                f"bands must divide n_hashes ({self.n_hashes}), "
                f"got {self.bands}"
            )
        if not 1 <= self.min_shared_bands <= self.bands:
            raise ValueError(
                f"min_shared_bands must be in [1, {self.bands}], "
                f"got {self.min_shared_bands}"
            )
        if self.max_bucket is not None and self.max_bucket < 0:
            raise ValueError(
                f"max_bucket must be >= 0, got {self.max_bucket}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.max_degree < 1:
            raise ValueError(
                f"max_degree must be >= 1, got {self.max_degree}"
            )
        if self.beam_width < 1:
            raise ValueError(
                f"beam_width must be >= 1, got {self.beam_width}"
            )

    def describe(self) -> str:
        """Compact rendering for the provenance tables."""
        if self.backend == "lsh":
            rows = self.n_hashes // self.bands
            return (
                f"lsh q={self.q} sig={self.n_hashes} bands={self.bands} "
                f"rows={rows} shared>={self.min_shared_bands}"
            )
        return (
            f"graph q={self.q} K={self.k} deg={self.max_degree} "
            f"beam={self.beam_width}"
        )


class _EncodedSources:
    """Q-gram code rows of both sources through one shared feature store.

    Encoding order (left, then right) is part of the determinism
    contract: :class:`~repro.text.kernels.CharTable` ids are assigned on
    first sight, so every consumer (blocker runs, the tuner's grid) must
    encode in the same order to see identical codes.
    """

    __slots__ = (
        "store", "view", "left_records", "right_records",
        "left_rows", "right_rows",
    )

    def __init__(self, sources: SourcePair, q: int) -> None:
        self.store = FeatureStore()
        self.view = ("qgrams", None, q)
        self.left_records = list(sources.left)
        self.right_records = list(sources.right)
        self.left_rows = self.store.rows(self.left_records, self.view)
        self.right_rows = self.store.rows(self.right_records, self.view)


def _nonempty_mask(rows: Sequence[np.ndarray]) -> np.ndarray:
    return np.fromiter(
        (len(row) > 0 for row in rows), dtype=bool, count=len(rows)
    )


def _lsh_candidate_indexes(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_nonempty: np.ndarray,
    right_nonempty: np.ndarray,
    min_shared_bands: int,
    max_bucket: int | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """``(left_idx, right_idx, shared_bands, pairs_examined, buckets_skipped)``.

    One vectorized range join per band: right keys are sorted once, left
    keys locate their bucket with two binary searches, and the matched
    ranges expand with the same arange-minus-offsets trick the kernels
    use. Pair multiplicity across bands is recovered by sorting the
    folded ``left * n_right + right`` keys and counting runs — a pair
    matches a band at most once, so the run length *is* the number of
    shared bands. Empty-signature rows (records with no features) are
    excluded up front: their identical sentinel signatures would
    otherwise all collide.
    """
    n_right = len(right_keys)
    left_live = np.flatnonzero(left_nonempty)
    right_live = np.flatnonzero(right_nonempty)
    if len(left_live) == 0 or len(right_live) == 0:
        return _EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_INDEX, 0, 0

    examined = 0
    skipped = 0
    folded_parts: list[np.ndarray] = []
    for band in range(left_keys.shape[1]):
        right_band = right_keys[right_live, band]
        order = np.argsort(right_band, kind="stable")
        sorted_right = right_band[order]
        left_band = left_keys[left_live, band]
        lo = np.searchsorted(sorted_right, left_band, side="left")
        hi = np.searchsorted(sorted_right, left_band, side="right")
        sizes = hi - lo
        if max_bucket is not None:
            oversized = sizes > max_bucket
            skipped += int(np.count_nonzero(oversized))
            sizes = np.where(oversized, 0, sizes)
        hit = np.flatnonzero(sizes > 0)
        if len(hit) == 0:
            continue
        hit_sizes = sizes[hit]
        total = int(hit_sizes.sum())
        examined += total
        offsets = np.zeros(len(hit) + 1, dtype=np.int64)
        np.cumsum(hit_sizes, out=offsets[1:])
        take = np.repeat(lo[hit], hit_sizes) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], hit_sizes)
        )
        left_idx = left_live[np.repeat(hit, hit_sizes)]
        right_idx = right_live[order[take]]
        folded_parts.append(left_idx * n_right + right_idx)

    if not folded_parts:
        return _EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_INDEX, examined, skipped
    folded = np.concatenate(folded_parts)
    folded.sort()
    starts = np.ones(len(folded), dtype=bool)
    np.not_equal(folded[1:], folded[:-1], out=starts[1:])
    run_starts = np.flatnonzero(starts)
    run_lengths = np.diff(np.append(run_starts, len(folded)))
    hits = run_lengths >= min_shared_bands
    kept = folded[run_starts[hits]]
    return kept // n_right, kept % n_right, run_lengths[hits], examined, skipped


class SmallWorldGraph:
    """A navigable-small-world index over dense sorted id rows.

    Single-layer NSW: nodes are inserted in order, each connected to its
    ``max_degree`` (approximately) most cosine-similar predecessors found
    by a greedy beam search from the entry point; degrees are pruned back
    to ``max_degree`` keeping the most similar neighbours. Search and
    insertion break every similarity tie by node id, so the structure —
    and therefore every query — is deterministic. Empty rows are
    unreachable islands (they can never score above zero).

    The structure is inherently incremental — building *is* inserting
    node by node — so :meth:`add_row` appends a new node in the same
    O(beam) work as one build step; a graph grown by appends is
    bit-identical to one built from the concatenated row list.
    """

    def __init__(
        self,
        rows: Sequence[np.ndarray],
        max_degree: int = 8,
        beam_width: int = 12,
        n_entry_points: int = 8,
    ) -> None:
        self.max_degree = max_degree
        self.beam_width = beam_width
        self.n_entry_points = n_entry_points
        self._rows: list[np.ndarray] = []
        self._sizes = np.empty(0, dtype=np.int64)
        self._neighbors: list[list[int]] = []
        self._entry: int | None = None
        self.sim_evals = 0
        for row in rows:
            self.add_row(row)

    def add_row(self, row: np.ndarray) -> int:
        """Append one dense sorted id row as a new node; returns its id."""
        node = len(self._rows)
        self._rows.append(row)
        self._sizes = np.append(self._sizes, len(row))
        self._neighbors.append([])
        self._insert(node)
        return node

    def __len__(self) -> int:
        return len(self._rows)

    def _sims_to(
        self, query: np.ndarray, query_size: int, nodes: list[int]
    ) -> np.ndarray:
        """Cosine of *query* against each node, in one batched pass."""
        out = np.zeros(len(nodes), dtype=np.float64)
        if not nodes or query_size == 0 or len(query) == 0:
            return out
        self.sim_evals += len(nodes)
        sizes = self._sizes[nodes]
        flat = (
            np.concatenate([self._rows[node] for node in nodes])
            if int(sizes.sum())
            else _EMPTY_INDEX
        )
        if len(flat) == 0:
            return out
        positions = np.searchsorted(query, flat)
        positions[positions == len(query)] = 0
        matched = query[positions] == flat
        row_of = np.repeat(np.arange(len(nodes), dtype=np.int64), sizes)
        inter = np.bincount(row_of[matched], minlength=len(nodes))
        mask = sizes > 0
        out[mask] = inter[mask] / np.sqrt(float(query_size) * sizes[mask])
        return out

    def _entry_points(self) -> list[int]:
        """Deterministic multi-entry seeds: the entry plus strided probes.

        A single-entry greedy search strands nodes whose reverse edges
        were all degree-pruned — on near-orthogonal data (tiny pairwise
        similarities) the beam has no gradient to follow and whole
        regions become unreachable. Seeding the beam with nodes spread
        evenly across insertion order restores coverage the way NSW's
        multi-restart search does, but deterministically: the seed set
        is a pure function of the node count, so a graph grown by
        appends still answers bit-identically to one built in one shot.
        """
        if self._entry is None:
            return []
        count = len(self._rows)
        seeds = {self._entry}
        for probe in range(self.n_entry_points):
            seeds.add((probe * count) // self.n_entry_points)
        seeds.add(count - 1)
        return sorted(seeds)

    def _search(
        self, query: np.ndarray, query_size: int, beam: int
    ) -> list[tuple[float, int]]:
        """Greedy beam search: ``[(similarity, node), ...]`` best first."""
        entries = self._entry_points()
        if not entries:
            return []
        entry_sims = self._sims_to(query, query_size, entries)
        visited = set(entries)
        # Max-heap of frontier nodes by (-sim, node); min-heap of the
        # best `beam` results by (sim, -node) — both orders break ties
        # by node id, deterministically.
        frontier = [
            (-sim, entry) for entry, sim in zip(entries, entry_sims.tolist())
        ]
        heapq.heapify(frontier)
        results = [
            (sim, -entry) for entry, sim in zip(entries, entry_sims.tolist())
        ]
        heapq.heapify(results)
        while len(results) > beam:
            heapq.heappop(results)
        while frontier:
            negative_sim, node = heapq.heappop(frontier)
            if len(results) >= beam and -negative_sim < results[0][0]:
                break
            fresh = [
                neighbor
                for neighbor in self._neighbors[node]
                if neighbor not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            sims = self._sims_to(query, query_size, fresh)
            for neighbor, sim in zip(fresh, sims.tolist()):
                if len(results) < beam or sim > results[0][0]:
                    heapq.heappush(frontier, (-sim, neighbor))
                    heapq.heappush(results, (sim, -neighbor))
                    if len(results) > beam:
                        heapq.heappop(results)
        found = [(sim, -negative_node) for sim, negative_node in results]
        found.sort(key=lambda item: (-item[0], item[1]))
        return found

    def _insert(self, node: int) -> None:
        row = self._rows[node]
        if len(row) == 0:
            return
        if self._entry is None:
            self._entry = node
            return
        beam = max(self.beam_width, self.max_degree)
        for __, other in self._search(row, len(row), beam)[: self.max_degree]:
            self._connect(node, other)

    def _connect(self, node: int, other: int) -> None:
        for source, target in ((node, other), (other, node)):
            neighbors = self._neighbors[source]
            if target in neighbors:
                continue
            neighbors.append(target)
            if len(neighbors) > self.max_degree:
                row = self._rows[source]
                sims = self._sims_to(row, len(row), neighbors)
                order = sorted(
                    range(len(neighbors)),
                    key=lambda i: (-sims[i], neighbors[i]),
                )
                self._neighbors[source] = [
                    neighbors[i] for i in order[: self.max_degree]
                ]

    def search(
        self, query: np.ndarray, query_size: int, k: int
    ) -> list[tuple[float, int]]:
        """``[(similarity, node), ...]`` of the ``<= k`` most similar nodes.

        Best first, ties broken by node id. Nodes with zero similarity
        are never returned — an unreachable record should not become a
        candidate just because the beam visited it.
        """
        found = self._search(query, query_size, max(self.beam_width, k))
        return [(sim, node) for sim, node in found[:k] if sim > 0.0]

    def query(
        self, query: np.ndarray, query_size: int, k: int
    ) -> list[int]:
        """The nodes of :meth:`search`, without their scores."""
        return [node for __, node in self.search(query, query_size, k)]


class GraphIndex:
    """``search(record, k)`` ANN access over one growing record list.

    Wraps a :class:`SmallWorldGraph` with a first-sight
    :class:`~repro.text.kernels.CodeTable` code-to-dense-id mapping, so
    external records (streaming queries, the ``repro.serve`` session)
    can be encoded through the same feature store and queried directly,
    and new records can be :meth:`insert`-ed without ever rebuilding:
    set intersections are invariant to the id assignment scheme, so
    first-sight ids produce the exact same similarities — and therefore
    the exact same graph — as the frozen sorted-rank vocabulary the
    index used when it was build-once. Query codes outside the indexed
    vocabulary cannot intersect anything and are dropped from the probe,
    but still count toward the query's cosine magnitude.
    """

    def __init__(
        self,
        records: Sequence,
        rows: Sequence[np.ndarray],
        config: AnnConfig,
        store: FeatureStore,
        view: tuple,
    ) -> None:
        self.records: list = []
        self._store = store
        self._view = view
        self.config = config
        self._table = CodeTable()
        self.graph = SmallWorldGraph(
            (),
            max_degree=config.max_degree,
            beam_width=config.beam_width,
        )
        started = time.perf_counter()
        self._append(records, rows)
        obs.observe(
            "blocking.ann.graph_build_seconds", time.perf_counter() - started
        )
        obs.inc("blocking.ann.index_builds")

    def __len__(self) -> int:
        return len(self.records)

    def _append(self, records: Sequence, rows: Sequence[np.ndarray]) -> None:
        self.records.extend(records)
        for row in rows:
            dense = (
                np.unique(self._table.intern(row))
                if len(row)
                else _EMPTY_INDEX
            )
            self.graph.add_row(dense)

    def insert(self, records: Sequence) -> None:
        """Append *records* to the live index — incremental, no rebuild."""
        records = list(records)
        rows = self._store.rows(records, self._view)
        started = time.perf_counter()
        self._append(records, rows)
        obs.observe(
            "blocking.ann.index_insert_seconds",
            time.perf_counter() - started,
        )
        obs.inc("blocking.ann.index_inserts", float(len(records)))

    def map_row(self, raw_row: np.ndarray) -> tuple[np.ndarray, int]:
        """``(dense sorted probe ids, distinct query size)`` of raw codes."""
        distinct = np.unique(raw_row)
        if len(distinct) == 0 or len(self._table) == 0:
            return _EMPTY_INDEX, len(distinct)
        return np.sort(self._table.lookup(distinct)), len(distinct)

    def search_row(
        self, raw_row: np.ndarray, k: int
    ) -> list[tuple[float, int]]:
        """``[(score, position), ...]`` of the ``<= k`` nearest records."""
        probe, query_size = self.map_row(raw_row)
        return self.graph.search(probe, query_size, k)

    def query_row(self, raw_row: np.ndarray, k: int) -> list[int]:
        """Positions (into ``records``) of the ``<= k`` nearest records."""
        return [position for __, position in self.search_row(raw_row, k)]

    def search(self, record, k: int) -> Candidates:
        """The ``<= k`` most similar record ids, scored, best first."""
        raw_row = self._store.rows([record], self._view)[0]
        scored = self.search_row(raw_row, k)
        return Candidates(
            ids=tuple(
                self.records[position].record_id for __, position in scored
            ),
            scores=tuple(sim for sim, __ in scored),
            provenance=self.config.describe(),
        )

    def query(self, record, k: int) -> list:
        """Deprecated shim for :meth:`search`: bare record objects."""
        _warn_deprecated("GraphIndex.query", "GraphIndex.search")
        raw_row = self._store.rows([record], self._view)[0]
        return [
            self.records[position]
            for __, position in self.search_row(raw_row, k)
        ]


class LshIndex:
    """Incremental banded-minhash index with the :class:`GraphIndex` shape.

    Per-band hash buckets (``key -> positions``) grown append-only:
    minhash signatures are per-row independent (the hash family is
    derived from the seed alone), so :meth:`insert` computes signatures
    for the new rows only and appends their band keys — existing buckets
    are never touched, let alone rebuilt. :meth:`search_row` scores each
    colliding position by its shared-band fraction, mirroring the batch
    :func:`_lsh_candidate_indexes` semantics (``min_shared_bands``
    filter, oversized buckets skipped).
    """

    def __init__(
        self,
        records: Sequence,
        rows: Sequence[np.ndarray],
        config: AnnConfig,
        store: FeatureStore,
        view: tuple,
    ) -> None:
        self.records: list = []
        self._store = store
        self._view = view
        self.config = config
        self._buckets: list[dict[int, list[int]]] = [
            {} for __ in range(config.bands)
        ]
        started = time.perf_counter()
        self._append(records, rows)
        obs.observe(
            "blocking.ann.lsh_build_seconds", time.perf_counter() - started
        )
        obs.inc("blocking.ann.index_builds")

    def __len__(self) -> int:
        return len(self.records)

    def _append(self, records: Sequence, rows: Sequence[np.ndarray]) -> None:
        base = len(self.records)
        self.records.extend(records)
        if not rows:
            return
        signatures = minhash_signatures(
            list(rows), self.config.n_hashes, self.config.seed
        )
        keys = band_keys(signatures, self.config.bands)
        for offset, live in enumerate(_nonempty_mask(rows).tolist()):
            if not live:
                continue
            for band in range(self.config.bands):
                self._buckets[band].setdefault(
                    int(keys[offset, band]), []
                ).append(base + offset)

    def insert(self, records: Sequence) -> None:
        """Append *records* to the live index — incremental, no rebuild."""
        records = list(records)
        rows = self._store.rows(records, self._view)
        started = time.perf_counter()
        self._append(records, rows)
        obs.observe(
            "blocking.ann.index_insert_seconds",
            time.perf_counter() - started,
        )
        obs.inc("blocking.ann.index_inserts", float(len(records)))

    def search_row(
        self, raw_row: np.ndarray, k: int
    ) -> list[tuple[float, int]]:
        """``[(score, position), ...]`` of the ``<= k`` best collisions."""
        config = self.config
        distinct = np.unique(raw_row)
        if len(distinct) == 0:
            return []
        signature = minhash_signatures(
            [distinct], config.n_hashes, config.seed
        )
        keys = band_keys(signature, config.bands)[0]
        shared: dict[int, int] = {}
        for band in range(config.bands):
            bucket = self._buckets[band].get(int(keys[band]))
            if bucket is None:
                continue
            if config.max_bucket is not None and len(bucket) > config.max_bucket:
                obs.inc("blocking.ann.buckets_skipped")
                continue
            for position in bucket:
                shared[position] = shared.get(position, 0) + 1
        scored = [
            (count / config.bands, position)
            for position, count in shared.items()
            if count >= config.min_shared_bands
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return scored[:k]

    def query_row(self, raw_row: np.ndarray, k: int) -> list[int]:
        """Positions (into ``records``) of the ``<= k`` best collisions."""
        return [position for __, position in self.search_row(raw_row, k)]

    def search(self, record, k: int) -> Candidates:
        """The ``<= k`` best-colliding record ids, scored, best first."""
        raw_row = self._store.rows([record], self._view)[0]
        scored = self.search_row(raw_row, k)
        return Candidates(
            ids=tuple(
                self.records[position].record_id for __, position in scored
            ),
            scores=tuple(score for score, __ in scored),
            provenance=self.config.describe(),
        )


class AnnBlocker:
    """Approximate-nearest-neighbour blocking under the blocker protocol.

    ``backend="lsh"`` generates candidates from banded minhash buckets;
    ``backend="graph"`` indexes the right source in a
    :class:`SmallWorldGraph` and retrieves ``k`` neighbours per left
    record. Results are bit-deterministic for a fixed
    :class:`AnnConfig`.
    """

    def __init__(self, config: AnnConfig | None = None) -> None:
        self.config = config if config is not None else AnnConfig()

    def build_index(self, sources: SourcePair) -> GraphIndex:
        """Deprecated shim: build the index with ``make_index`` instead."""
        _warn_deprecated(
            "AnnBlocker.build_index", "repro.blocking.make_index"
        )
        encoded = _EncodedSources(sources, self.config.q)
        return GraphIndex(
            encoded.right_records,
            encoded.right_rows,
            self.config,
            store=encoded.store,
            view=encoded.view,
        )

    def _lsh_scored(
        self, encoded: _EncodedSources
    ) -> list[tuple[float, tuple[str, str]]]:
        config = self.config
        started = time.perf_counter()
        left_signatures = minhash_signatures(
            encoded.left_rows, config.n_hashes, config.seed
        )
        right_signatures = minhash_signatures(
            encoded.right_rows, config.n_hashes, config.seed
        )
        obs.observe(
            "blocking.ann.signature_seconds", time.perf_counter() - started
        )
        left_idx, right_idx, shared, examined, skipped = (
            _lsh_candidate_indexes(
                band_keys(left_signatures, config.bands),
                band_keys(right_signatures, config.bands),
                _nonempty_mask(encoded.left_rows),
                _nonempty_mask(encoded.right_rows),
                config.min_shared_bands,
                config.max_bucket,
            )
        )
        obs.inc("blocking.ann.pairs_examined", float(examined))
        obs.inc("blocking.ann.buckets_skipped", float(skipped))
        return [
            (
                count / config.bands,
                (
                    encoded.left_records[i].record_id,
                    encoded.right_records[j].record_id,
                ),
            )
            for i, j, count in zip(
                left_idx.tolist(), right_idx.tolist(), shared.tolist()
            )
        ]

    def _graph_scored(
        self, encoded: _EncodedSources
    ) -> list[tuple[float, tuple[str, str]]]:
        config = self.config
        index = GraphIndex(
            encoded.right_records,
            encoded.right_rows,
            config,
            store=encoded.store,
            view=encoded.view,
        )
        evals_before = index.graph.sim_evals
        scored: list[tuple[float, tuple[str, str]]] = []
        for record, row in zip(encoded.left_records, encoded.left_rows):
            for sim, position in index.search_row(row, config.k):
                scored.append(
                    (
                        sim,
                        (
                            record.record_id,
                            encoded.right_records[position].record_id,
                        ),
                    )
                )
        obs.inc(
            "blocking.ann.pairs_examined",
            float(index.graph.sim_evals - evals_before),
        )
        return scored

    @observed_candidates
    def candidate_result(self, sources: SourcePair) -> Candidates:
        """All candidate pairs of the configured backend, typed and scored.

        Scores are the shared-band fraction (LSH) or the cosine
        similarity (graph); results are ordered best first with ties
        broken by the pair key, so the ordering — like the set — is
        bit-deterministic for a fixed config.
        """
        encoded = _EncodedSources(sources, self.config.q)
        if self.config.backend == "lsh":
            scored = self._lsh_scored(encoded)
        else:
            scored = self._graph_scored(encoded)
        scored.sort(key=lambda item: (-item[0], item[1]))
        return Candidates(
            ids=tuple(pair for __, pair in scored),
            scores=tuple(score for score, __ in scored),
            provenance=self.config.describe(),
        )

    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """Blocker-protocol shim: the untyped pair set of
        :meth:`candidate_result`."""
        return self.candidate_result(sources).to_set()


# -- tuning -------------------------------------------------------------------

#: Signature widths probed by :func:`tune_ann`.
DEFAULT_SIGNATURE_GRID: tuple[int, ...] = (64, 128)

#: Band counts probed per signature width (non-divisors are skipped).
DEFAULT_BAND_GRID: tuple[int, ...] = (8, 16, 32)

#: ``min_shared_bands`` values probed per banding.
DEFAULT_MIN_SHARED_GRID: tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class TunedAnnBlocking:
    """The winning ANN configuration and its blocking result."""

    config: AnnConfig
    result: BlockingResult

    @property
    def pair_completeness(self) -> float:
        return self.result.pair_completeness

    @property
    def pairs_quality(self) -> float:
        return self.result.pairs_quality


def tune_ann(
    sources: SourcePair,
    recall_target: float = 0.9,
    signature_grid: tuple[int, ...] = DEFAULT_SIGNATURE_GRID,
    band_grid: tuple[int, ...] = DEFAULT_BAND_GRID,
    min_shared_grid: tuple[int, ...] = DEFAULT_MIN_SHARED_GRID,
    q: int = 3,
    max_bucket: int | None = 200,
    seed: int = 0,
) -> TunedAnnBlocking:
    """Find the candidate-minimal LSH configuration meeting the target.

    Mirrors :func:`repro.blocking.tuning.tune_deepblocker`: every
    (signature size, bands, min-shared-bands) combination is evaluated
    with :func:`evaluate_blocking`; among those meeting *recall_target*
    the lowest-cost (fewest candidates, PC breaking ties) wins via
    :func:`meeting_preferred`, and when none meets it the
    :func:`fallback_preferred` comparator picks the highest-recall,
    then fewest-candidates configuration. Sources are encoded once and
    signatures once per signature width; every evaluated configuration
    reproduces exactly what ``AnnBlocker(config)`` would generate.
    """
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(
            f"recall_target must be in (0, 1], got {recall_target}"
        )
    if not signature_grid or not band_grid or not min_shared_grid:
        raise ValueError("tuning grids must be non-empty")

    encoded = _EncodedSources(sources, q)
    left_nonempty = _nonempty_mask(encoded.left_rows)
    right_nonempty = _nonempty_mask(encoded.right_rows)

    best_meeting: TunedAnnBlocking | None = None
    best_fallback: TunedAnnBlocking | None = None
    for n_hashes in sorted(set(signature_grid)):
        left_signatures = minhash_signatures(
            encoded.left_rows, n_hashes, seed
        )
        right_signatures = minhash_signatures(
            encoded.right_rows, n_hashes, seed
        )
        for bands in sorted(set(band_grid)):
            if bands > n_hashes or n_hashes % bands:
                continue
            left_keys = band_keys(left_signatures, bands)
            right_keys = band_keys(right_signatures, bands)
            for min_shared in sorted(set(min_shared_grid)):
                if min_shared > bands:
                    continue
                config = AnnConfig(
                    backend="lsh",
                    q=q,
                    n_hashes=n_hashes,
                    bands=bands,
                    min_shared_bands=min_shared,
                    max_bucket=max_bucket,
                    seed=seed,
                )
                left_idx, right_idx, __, __, __ = _lsh_candidate_indexes(
                    left_keys,
                    right_keys,
                    left_nonempty,
                    right_nonempty,
                    min_shared,
                    max_bucket,
                )
                result = evaluate_blocking(
                    (
                        (
                            encoded.left_records[i].record_id,
                            encoded.right_records[j].record_id,
                        )
                        for i, j in zip(left_idx.tolist(), right_idx.tolist())
                    ),
                    sources,
                )
                tuned = TunedAnnBlocking(config=config, result=result)
                if fallback_preferred(
                    result,
                    None if best_fallback is None else best_fallback.result,
                ):
                    best_fallback = tuned
                if result.pair_completeness >= recall_target and (
                    meeting_preferred(
                        result,
                        None if best_meeting is None else best_meeting.result,
                    )
                ):
                    best_meeting = tuned
    if best_meeting is not None:
        return best_meeting
    assert best_fallback is not None
    return best_fallback


# -- the provenance sweep -----------------------------------------------------


@dataclass(frozen=True)
class BackendProvenance:
    """One backend's blocking outcome on one source pair."""

    backend: str
    config: str
    result: BlockingResult
    cssr: float
    seconds: float

    @property
    def pair_completeness(self) -> float:
        return self.result.pair_completeness


def provenance_sweep(
    sources: SourcePair,
    recall_target: float = 0.9,
    seed: int = 0,
    q: int = 3,
    backends: tuple[str, ...] = ("exhaustive", "lsh", "graph"),
) -> dict[str, BackendProvenance]:
    """Recall/CSSR of each blocking backend on one source pair.

    CSSR is the candidate set size ratio ``|C| / (|D1| * |D2|)`` — the
    fraction of the cross product a backend examines downstream (Steorts
    et al.'s blocking-evaluation axis next to recall). ``exhaustive`` is
    the classic per-left-record :class:`~repro.blocking.qgram
    .QGramBlocker`; ``lsh`` is the :func:`tune_ann` winner (timing
    includes the tuning grid); ``graph`` is the default small-world
    configuration.
    """
    # Function-local import: the factory imports this module.
    from repro.blocking.factory import make_blocker

    cross = len(sources.left) * len(sources.right)
    outcome: dict[str, BackendProvenance] = {}

    def record(
        backend: str, config: str, result: BlockingResult, seconds: float
    ) -> None:
        outcome[backend] = BackendProvenance(
            backend=backend,
            config=config,
            result=result,
            cssr=result.n_candidates / cross if cross else 0.0,
            seconds=seconds,
        )

    if "exhaustive" in backends:
        blocker = make_blocker("exhaustive", q=q)
        started = time.perf_counter()
        result = evaluate_blocking(blocker.candidates(sources), sources)
        record(
            "exhaustive",
            f"qgram q={q} minc={blocker.min_common} "
            f"maxb={blocker.max_block_size}",
            result,
            time.perf_counter() - started,
        )
    if "lsh" in backends:
        started = time.perf_counter()
        tuned = tune_ann(
            sources, recall_target=recall_target, q=q, seed=seed
        )
        record(
            "lsh",
            tuned.config.describe(),
            tuned.result,
            time.perf_counter() - started,
        )
    if "graph" in backends:
        blocker = make_blocker("graph", q=q, seed=seed)
        started = time.perf_counter()
        result = evaluate_blocking(blocker.candidates(sources), sources)
        record(
            "graph",
            blocker.config.describe(),
            result,
            time.perf_counter() - started,
        )
    return outcome
