"""Approximate-nearest-neighbour blocking over packed q-gram codes.

Every classic blocker of this package generates candidates effectively
exhaustively per left record, which is the scalability wall of the
ROADMAP's million-record north star. This module provides the ANN
substrate (the *BlockingPy* direction, arXiv 2504.04266) on top of the
incidence structures :mod:`repro.text.kernels` already produces, with
two pure-numpy backends:

* **LSH banding** — minhash signatures over the int64 q-gram codes
  (:func:`repro.text.kernels.minhash_signatures`), folded into banded
  bucket keys; two records become a candidate pair when they share at
  least ``min_shared_bands`` buckets. The per-band bucket join is fully
  vectorized (argsort + searchsorted range joins), so candidate
  generation never walks the cross product.
* **small-world graph** — a navigable-small-world index
  (:class:`SmallWorldGraph`, HNSW-style greedy beam search over the
  masked cosine kernel) giving the ``query(record, k)`` access shape the
  future ``repro.serve`` item needs; :class:`GraphIndex` wraps it with
  the record encoding so external records can be queried directly.

Both backends are **bit-deterministic for a fixed seed**: the hash
family is derived from the seed alone, every join is sort-based (no
Python dict/set iteration order anywhere near candidate selection), and
the graph breaks all similarity ties by node id.

:class:`AnnBlocker` implements the ``candidates(sources)`` blocker
protocol under ``@observed_candidates`` and emits the ``blocking.ann.*``
metrics; :func:`tune_ann` grid-searches (signature size x bands x
min-shared-bands) for the candidate-minimal configuration meeting a
recall target, reusing :func:`repro.blocking.base.evaluate_blocking` and
the comparator pair shared with :func:`repro.blocking.tuning
.tune_deepblocker`; :func:`provenance_sweep` regenerates the Table V
blocking-provenance analysis under each backend (the recall/CSSR
trade-off of Steorts et al., arXiv 1407.3191).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.blocking.base import (
    BlockingResult,
    evaluate_blocking,
    observed_candidates,
)
from repro.blocking.tuning import fallback_preferred, meeting_preferred
from repro.datasets.generator import SourcePair
from repro.text.feature_store import FeatureStore
from repro.text.kernels import band_keys, minhash_signatures

#: The two ANN backends (plus the implicit "exhaustive" baseline of the
#: provenance sweep).
ANN_BACKENDS: tuple[str, ...] = ("lsh", "graph")

_EMPTY_INDEX = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class AnnConfig:
    """One configuration of the ANN blocking substrate.

    LSH knobs: ``n_hashes`` (signature width), ``bands`` (must divide the
    width; ``rows = n_hashes // bands`` minhash values per band),
    ``min_shared_bands`` (buckets two records must share) and
    ``max_bucket`` (degenerate buckets larger than this are skipped, the
    ``max_block_size`` analogue; ``0`` skips every bucket, ``None``
    disables the guard). Graph knobs: ``k`` neighbours retrieved per
    query, ``max_degree`` graph connectivity, ``beam_width`` search beam.
    ``q`` selects the q-gram plane and ``seed`` fixes the hash family —
    the whole pipeline is deterministic in ``(config, sources)``.
    """

    backend: str = "lsh"
    q: int = 3
    n_hashes: int = 128
    bands: int = 32
    min_shared_bands: int = 1
    max_bucket: int | None = 200
    k: int = 10
    max_degree: int = 16
    beam_width: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ANN_BACKENDS:
            raise ValueError(
                f"backend must be one of {ANN_BACKENDS}, got {self.backend!r}"
            )
        if self.q < 1:
            raise ValueError(f"q must be >= 1, got {self.q}")
        if self.n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {self.n_hashes}")
        if self.bands < 1 or self.n_hashes % self.bands:
            raise ValueError(
                f"bands must divide n_hashes ({self.n_hashes}), "
                f"got {self.bands}"
            )
        if not 1 <= self.min_shared_bands <= self.bands:
            raise ValueError(
                f"min_shared_bands must be in [1, {self.bands}], "
                f"got {self.min_shared_bands}"
            )
        if self.max_bucket is not None and self.max_bucket < 0:
            raise ValueError(
                f"max_bucket must be >= 0, got {self.max_bucket}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.max_degree < 1:
            raise ValueError(
                f"max_degree must be >= 1, got {self.max_degree}"
            )
        if self.beam_width < 1:
            raise ValueError(
                f"beam_width must be >= 1, got {self.beam_width}"
            )

    def describe(self) -> str:
        """Compact rendering for the provenance tables."""
        if self.backend == "lsh":
            rows = self.n_hashes // self.bands
            return (
                f"lsh q={self.q} sig={self.n_hashes} bands={self.bands} "
                f"rows={rows} shared>={self.min_shared_bands}"
            )
        return (
            f"graph q={self.q} K={self.k} deg={self.max_degree} "
            f"beam={self.beam_width}"
        )


class _EncodedSources:
    """Q-gram code rows of both sources through one shared feature store.

    Encoding order (left, then right) is part of the determinism
    contract: :class:`~repro.text.kernels.CharTable` ids are assigned on
    first sight, so every consumer (blocker runs, the tuner's grid) must
    encode in the same order to see identical codes.
    """

    __slots__ = (
        "store", "view", "left_records", "right_records",
        "left_rows", "right_rows",
    )

    def __init__(self, sources: SourcePair, q: int) -> None:
        self.store = FeatureStore()
        self.view = ("qgrams", None, q)
        self.left_records = list(sources.left)
        self.right_records = list(sources.right)
        self.left_rows = self.store.rows(self.left_records, self.view)
        self.right_rows = self.store.rows(self.right_records, self.view)


def _nonempty_mask(rows: Sequence[np.ndarray]) -> np.ndarray:
    return np.fromiter(
        (len(row) > 0 for row in rows), dtype=bool, count=len(rows)
    )


def _lsh_candidate_indexes(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_nonempty: np.ndarray,
    right_nonempty: np.ndarray,
    min_shared_bands: int,
    max_bucket: int | None,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """``(left_idx, right_idx, pairs_examined, buckets_skipped)``.

    One vectorized range join per band: right keys are sorted once, left
    keys locate their bucket with two binary searches, and the matched
    ranges expand with the same arange-minus-offsets trick the kernels
    use. Pair multiplicity across bands is recovered by sorting the
    folded ``left * n_right + right`` keys and counting runs — a pair
    matches a band at most once, so the run length *is* the number of
    shared bands. Empty-signature rows (records with no features) are
    excluded up front: their identical sentinel signatures would
    otherwise all collide.
    """
    n_right = len(right_keys)
    left_live = np.flatnonzero(left_nonempty)
    right_live = np.flatnonzero(right_nonempty)
    if len(left_live) == 0 or len(right_live) == 0:
        return _EMPTY_INDEX, _EMPTY_INDEX, 0, 0

    examined = 0
    skipped = 0
    folded_parts: list[np.ndarray] = []
    for band in range(left_keys.shape[1]):
        right_band = right_keys[right_live, band]
        order = np.argsort(right_band, kind="stable")
        sorted_right = right_band[order]
        left_band = left_keys[left_live, band]
        lo = np.searchsorted(sorted_right, left_band, side="left")
        hi = np.searchsorted(sorted_right, left_band, side="right")
        sizes = hi - lo
        if max_bucket is not None:
            oversized = sizes > max_bucket
            skipped += int(np.count_nonzero(oversized))
            sizes = np.where(oversized, 0, sizes)
        hit = np.flatnonzero(sizes > 0)
        if len(hit) == 0:
            continue
        hit_sizes = sizes[hit]
        total = int(hit_sizes.sum())
        examined += total
        offsets = np.zeros(len(hit) + 1, dtype=np.int64)
        np.cumsum(hit_sizes, out=offsets[1:])
        take = np.repeat(lo[hit], hit_sizes) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], hit_sizes)
        )
        left_idx = left_live[np.repeat(hit, hit_sizes)]
        right_idx = right_live[order[take]]
        folded_parts.append(left_idx * n_right + right_idx)

    if not folded_parts:
        return _EMPTY_INDEX, _EMPTY_INDEX, examined, skipped
    folded = np.concatenate(folded_parts)
    folded.sort()
    starts = np.ones(len(folded), dtype=bool)
    np.not_equal(folded[1:], folded[:-1], out=starts[1:])
    run_starts = np.flatnonzero(starts)
    run_lengths = np.diff(np.append(run_starts, len(folded)))
    kept = folded[run_starts[run_lengths >= min_shared_bands]]
    return kept // n_right, kept % n_right, examined, skipped


class SmallWorldGraph:
    """A navigable-small-world index over dense sorted id rows.

    Single-layer NSW: nodes are inserted in order, each connected to its
    ``max_degree`` (approximately) most cosine-similar predecessors found
    by a greedy beam search from the entry point; degrees are pruned back
    to ``max_degree`` keeping the most similar neighbours. Search and
    insertion break every similarity tie by node id, so the structure —
    and therefore every query — is deterministic. Empty rows are
    unreachable islands (they can never score above zero).
    """

    def __init__(
        self,
        rows: Sequence[np.ndarray],
        max_degree: int = 8,
        beam_width: int = 12,
    ) -> None:
        self.max_degree = max_degree
        self.beam_width = beam_width
        self._rows = list(rows)
        self._sizes = np.fromiter(
            (len(row) for row in self._rows),
            dtype=np.int64,
            count=len(self._rows),
        )
        self._neighbors: list[list[int]] = [[] for _ in self._rows]
        self._entry: int | None = None
        self.sim_evals = 0
        for node in range(len(self._rows)):
            self._insert(node)

    def __len__(self) -> int:
        return len(self._rows)

    def _sims_to(
        self, query: np.ndarray, query_size: int, nodes: list[int]
    ) -> np.ndarray:
        """Cosine of *query* against each node, in one batched pass."""
        out = np.zeros(len(nodes), dtype=np.float64)
        if not nodes or query_size == 0 or len(query) == 0:
            return out
        self.sim_evals += len(nodes)
        sizes = self._sizes[nodes]
        flat = (
            np.concatenate([self._rows[node] for node in nodes])
            if int(sizes.sum())
            else _EMPTY_INDEX
        )
        if len(flat) == 0:
            return out
        positions = np.searchsorted(query, flat)
        positions[positions == len(query)] = 0
        matched = query[positions] == flat
        row_of = np.repeat(np.arange(len(nodes), dtype=np.int64), sizes)
        inter = np.bincount(row_of[matched], minlength=len(nodes))
        mask = sizes > 0
        out[mask] = inter[mask] / np.sqrt(float(query_size) * sizes[mask])
        return out

    def _search(
        self, query: np.ndarray, query_size: int, beam: int
    ) -> list[tuple[float, int]]:
        """Greedy beam search: ``[(similarity, node), ...]`` best first."""
        if self._entry is None:
            return []
        entry = self._entry
        entry_sim = float(self._sims_to(query, query_size, [entry])[0])
        visited = {entry}
        # Max-heap of frontier nodes by (-sim, node); min-heap of the
        # best `beam` results by (sim, -node) — both orders break ties
        # by node id, deterministically.
        frontier = [(-entry_sim, entry)]
        results = [(entry_sim, -entry)]
        while frontier:
            negative_sim, node = heapq.heappop(frontier)
            if len(results) >= beam and -negative_sim < results[0][0]:
                break
            fresh = [
                neighbor
                for neighbor in self._neighbors[node]
                if neighbor not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            sims = self._sims_to(query, query_size, fresh)
            for neighbor, sim in zip(fresh, sims.tolist()):
                if len(results) < beam or sim > results[0][0]:
                    heapq.heappush(frontier, (-sim, neighbor))
                    heapq.heappush(results, (sim, -neighbor))
                    if len(results) > beam:
                        heapq.heappop(results)
        found = [(sim, -negative_node) for sim, negative_node in results]
        found.sort(key=lambda item: (-item[0], item[1]))
        return found

    def _insert(self, node: int) -> None:
        row = self._rows[node]
        if len(row) == 0:
            return
        if self._entry is None:
            self._entry = node
            return
        beam = max(self.beam_width, self.max_degree)
        for __, other in self._search(row, len(row), beam)[: self.max_degree]:
            self._connect(node, other)

    def _connect(self, node: int, other: int) -> None:
        for source, target in ((node, other), (other, node)):
            neighbors = self._neighbors[source]
            if target in neighbors:
                continue
            neighbors.append(target)
            if len(neighbors) > self.max_degree:
                row = self._rows[source]
                sims = self._sims_to(row, len(row), neighbors)
                order = sorted(
                    range(len(neighbors)),
                    key=lambda i: (-sims[i], neighbors[i]),
                )
                self._neighbors[source] = [
                    neighbors[i] for i in order[: self.max_degree]
                ]

    def query(
        self, query: np.ndarray, query_size: int, k: int
    ) -> list[int]:
        """The ``<= k`` most similar nodes of a dense sorted query row.

        Nodes with zero similarity are never returned — an unreachable
        record should not become a candidate just because the beam
        visited it.
        """
        found = self._search(query, query_size, max(self.beam_width, k))
        return [node for sim, node in found[:k] if sim > 0.0]


class GraphIndex:
    """``query(record, k)`` ANN access over one indexed record list.

    Wraps a :class:`SmallWorldGraph` with the code-to-dense-rank mapping,
    so external records (e.g. streaming queries, the future
    ``repro.serve`` session) can be encoded through the same feature
    store and queried directly. Query codes outside the indexed
    vocabulary cannot intersect anything and are dropped from the probe,
    but still count toward the query's cosine magnitude.
    """

    def __init__(
        self,
        records: Sequence,
        rows: Sequence[np.ndarray],
        config: AnnConfig,
        store: FeatureStore,
        view: tuple,
    ) -> None:
        self.records = list(records)
        self._store = store
        self._view = view
        self.config = config
        live = [row for row in rows if len(row)]
        self._vocab = (
            np.unique(np.concatenate(live)) if live else _EMPTY_INDEX
        )
        dense = [
            np.unique(np.searchsorted(self._vocab, row))
            if len(row)
            else _EMPTY_INDEX
            for row in rows
        ]
        started = time.perf_counter()
        self.graph = SmallWorldGraph(
            dense,
            max_degree=config.max_degree,
            beam_width=config.beam_width,
        )
        obs.observe(
            "blocking.ann.graph_build_seconds", time.perf_counter() - started
        )

    def map_row(self, raw_row: np.ndarray) -> tuple[np.ndarray, int]:
        """``(dense sorted probe ids, distinct query size)`` of raw codes."""
        distinct = np.unique(raw_row)
        if len(distinct) == 0 or len(self._vocab) == 0:
            return _EMPTY_INDEX, len(distinct)
        positions = np.searchsorted(self._vocab, distinct)
        positions[positions == len(self._vocab)] = 0
        present = self._vocab[positions] == distinct
        return positions[present], len(distinct)

    def query_row(self, raw_row: np.ndarray, k: int) -> list[int]:
        """Positions (into ``records``) of the ``<= k`` nearest records."""
        probe, query_size = self.map_row(raw_row)
        return self.graph.query(probe, query_size, k)

    def query(self, record, k: int) -> list:
        """The ``<= k`` indexed records most similar to *record*."""
        raw_row = self._store.rows([record], self._view)[0]
        return [self.records[i] for i in self.query_row(raw_row, k)]


class AnnBlocker:
    """Approximate-nearest-neighbour blocking under the blocker protocol.

    ``backend="lsh"`` generates candidates from banded minhash buckets;
    ``backend="graph"`` indexes the right source in a
    :class:`SmallWorldGraph` and retrieves ``k`` neighbours per left
    record. Results are bit-deterministic for a fixed
    :class:`AnnConfig`.
    """

    def __init__(self, config: AnnConfig | None = None) -> None:
        self.config = config if config is not None else AnnConfig()

    def build_index(self, sources: SourcePair) -> GraphIndex:
        """A reusable ``query(record, k)`` index over the right source."""
        encoded = _EncodedSources(sources, self.config.q)
        return GraphIndex(
            encoded.right_records,
            encoded.right_rows,
            self.config,
            store=encoded.store,
            view=encoded.view,
        )

    def _lsh_candidates(
        self, encoded: _EncodedSources
    ) -> set[tuple[str, str]]:
        config = self.config
        started = time.perf_counter()
        left_signatures = minhash_signatures(
            encoded.left_rows, config.n_hashes, config.seed
        )
        right_signatures = minhash_signatures(
            encoded.right_rows, config.n_hashes, config.seed
        )
        obs.observe(
            "blocking.ann.signature_seconds", time.perf_counter() - started
        )
        left_idx, right_idx, examined, skipped = _lsh_candidate_indexes(
            band_keys(left_signatures, config.bands),
            band_keys(right_signatures, config.bands),
            _nonempty_mask(encoded.left_rows),
            _nonempty_mask(encoded.right_rows),
            config.min_shared_bands,
            config.max_bucket,
        )
        obs.inc("blocking.ann.pairs_examined", float(examined))
        obs.inc("blocking.ann.buckets_skipped", float(skipped))
        return {
            (
                encoded.left_records[i].record_id,
                encoded.right_records[j].record_id,
            )
            for i, j in zip(left_idx.tolist(), right_idx.tolist())
        }

    def _graph_candidates(
        self, encoded: _EncodedSources
    ) -> set[tuple[str, str]]:
        config = self.config
        index = GraphIndex(
            encoded.right_records,
            encoded.right_rows,
            config,
            store=encoded.store,
            view=encoded.view,
        )
        evals_before = index.graph.sim_evals
        results: set[tuple[str, str]] = set()
        for record, row in zip(encoded.left_records, encoded.left_rows):
            for position in index.query_row(row, config.k):
                results.add(
                    (record.record_id, encoded.right_records[position].record_id)
                )
        obs.inc(
            "blocking.ann.pairs_examined",
            float(index.graph.sim_evals - evals_before),
        )
        return results

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """All candidate (left_id, right_id) pairs of the configured backend."""
        encoded = _EncodedSources(sources, self.config.q)
        if self.config.backend == "lsh":
            return self._lsh_candidates(encoded)
        return self._graph_candidates(encoded)


# -- tuning -------------------------------------------------------------------

#: Signature widths probed by :func:`tune_ann`.
DEFAULT_SIGNATURE_GRID: tuple[int, ...] = (64, 128)

#: Band counts probed per signature width (non-divisors are skipped).
DEFAULT_BAND_GRID: tuple[int, ...] = (8, 16, 32)

#: ``min_shared_bands`` values probed per banding.
DEFAULT_MIN_SHARED_GRID: tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class TunedAnnBlocking:
    """The winning ANN configuration and its blocking result."""

    config: AnnConfig
    result: BlockingResult

    @property
    def pair_completeness(self) -> float:
        return self.result.pair_completeness

    @property
    def pairs_quality(self) -> float:
        return self.result.pairs_quality


def tune_ann(
    sources: SourcePair,
    recall_target: float = 0.9,
    signature_grid: tuple[int, ...] = DEFAULT_SIGNATURE_GRID,
    band_grid: tuple[int, ...] = DEFAULT_BAND_GRID,
    min_shared_grid: tuple[int, ...] = DEFAULT_MIN_SHARED_GRID,
    q: int = 3,
    max_bucket: int | None = 200,
    seed: int = 0,
) -> TunedAnnBlocking:
    """Find the candidate-minimal LSH configuration meeting the target.

    Mirrors :func:`repro.blocking.tuning.tune_deepblocker`: every
    (signature size, bands, min-shared-bands) combination is evaluated
    with :func:`evaluate_blocking`; among those meeting *recall_target*
    the lowest-cost (fewest candidates, PC breaking ties) wins via
    :func:`meeting_preferred`, and when none meets it the
    :func:`fallback_preferred` comparator picks the highest-recall,
    then fewest-candidates configuration. Sources are encoded once and
    signatures once per signature width; every evaluated configuration
    reproduces exactly what ``AnnBlocker(config)`` would generate.
    """
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(
            f"recall_target must be in (0, 1], got {recall_target}"
        )
    if not signature_grid or not band_grid or not min_shared_grid:
        raise ValueError("tuning grids must be non-empty")

    encoded = _EncodedSources(sources, q)
    left_nonempty = _nonempty_mask(encoded.left_rows)
    right_nonempty = _nonempty_mask(encoded.right_rows)

    best_meeting: TunedAnnBlocking | None = None
    best_fallback: TunedAnnBlocking | None = None
    for n_hashes in sorted(set(signature_grid)):
        left_signatures = minhash_signatures(
            encoded.left_rows, n_hashes, seed
        )
        right_signatures = minhash_signatures(
            encoded.right_rows, n_hashes, seed
        )
        for bands in sorted(set(band_grid)):
            if bands > n_hashes or n_hashes % bands:
                continue
            left_keys = band_keys(left_signatures, bands)
            right_keys = band_keys(right_signatures, bands)
            for min_shared in sorted(set(min_shared_grid)):
                if min_shared > bands:
                    continue
                config = AnnConfig(
                    backend="lsh",
                    q=q,
                    n_hashes=n_hashes,
                    bands=bands,
                    min_shared_bands=min_shared,
                    max_bucket=max_bucket,
                    seed=seed,
                )
                left_idx, right_idx, __, __ = _lsh_candidate_indexes(
                    left_keys,
                    right_keys,
                    left_nonempty,
                    right_nonempty,
                    min_shared,
                    max_bucket,
                )
                result = evaluate_blocking(
                    (
                        (
                            encoded.left_records[i].record_id,
                            encoded.right_records[j].record_id,
                        )
                        for i, j in zip(left_idx.tolist(), right_idx.tolist())
                    ),
                    sources,
                )
                tuned = TunedAnnBlocking(config=config, result=result)
                if fallback_preferred(
                    result,
                    None if best_fallback is None else best_fallback.result,
                ):
                    best_fallback = tuned
                if result.pair_completeness >= recall_target and (
                    meeting_preferred(
                        result,
                        None if best_meeting is None else best_meeting.result,
                    )
                ):
                    best_meeting = tuned
    if best_meeting is not None:
        return best_meeting
    assert best_fallback is not None
    return best_fallback


# -- the provenance sweep -----------------------------------------------------


@dataclass(frozen=True)
class BackendProvenance:
    """One backend's blocking outcome on one source pair."""

    backend: str
    config: str
    result: BlockingResult
    cssr: float
    seconds: float

    @property
    def pair_completeness(self) -> float:
        return self.result.pair_completeness


def provenance_sweep(
    sources: SourcePair,
    recall_target: float = 0.9,
    seed: int = 0,
    q: int = 3,
    backends: tuple[str, ...] = ("exhaustive", "lsh", "graph"),
) -> dict[str, BackendProvenance]:
    """Recall/CSSR of each blocking backend on one source pair.

    CSSR is the candidate set size ratio ``|C| / (|D1| * |D2|)`` — the
    fraction of the cross product a backend examines downstream (Steorts
    et al.'s blocking-evaluation axis next to recall). ``exhaustive`` is
    the classic per-left-record :class:`~repro.blocking.qgram
    .QGramBlocker`; ``lsh`` is the :func:`tune_ann` winner (timing
    includes the tuning grid); ``graph`` is the default small-world
    configuration.
    """
    from repro.blocking.qgram import QGramBlocker

    cross = len(sources.left) * len(sources.right)
    outcome: dict[str, BackendProvenance] = {}

    def record(
        backend: str, config: str, result: BlockingResult, seconds: float
    ) -> None:
        outcome[backend] = BackendProvenance(
            backend=backend,
            config=config,
            result=result,
            cssr=result.n_candidates / cross if cross else 0.0,
            seconds=seconds,
        )

    if "exhaustive" in backends:
        blocker = QGramBlocker(q=q)
        started = time.perf_counter()
        result = evaluate_blocking(blocker.candidates(sources), sources)
        record(
            "exhaustive",
            f"qgram q={q} minc={blocker.min_common} "
            f"maxb={blocker.max_block_size}",
            result,
            time.perf_counter() - started,
        )
    if "lsh" in backends:
        started = time.perf_counter()
        tuned = tune_ann(
            sources, recall_target=recall_target, q=q, seed=seed
        )
        record(
            "lsh",
            tuned.config.describe(),
            tuned.result,
            time.perf_counter() - started,
        )
    if "graph" in backends:
        config = AnnConfig(backend="graph", q=q, seed=seed)
        started = time.perf_counter()
        result = evaluate_blocking(
            AnnBlocker(config).candidates(sources), sources
        )
        record(
            "graph", config.describe(), result, time.perf_counter() - started
        )
    return outcome
