"""DeepBlocker equivalent: embedding top-K nearest-neighbour blocking.

Thirumuruganathan et al.'s DeepBlocker embeds each record with fastText,
refines the vectors with a self-supervised autoencoder, indexes one source
and retrieves the K nearest neighbours of every record of the other source.
This implementation mirrors that retrieval exactly, on the synthetic static
embedder, with the same hyperparameters the paper tunes (Table V):

* ``attribute`` — block on one attribute or the schema-agnostic
  concatenation of all values (``None``);
* ``clean`` — remove stop-words and stem before embedding;
* ``k`` — candidates retrieved per query record;
* ``index_left`` — which source is indexed (queries come from the other).

:class:`DeepBlockerIndex` factors out everything independent of (k,
index_left) — embeddings, the autoencoder, the similarity matrix — so the
grid-search tuner pays the expensive work once per (attribute, clean)
combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocking.autoencoder import LinearAutoencoder
from repro.blocking.base import observed_candidates
from repro.data.records import Record, RecordStore
from repro.datasets.generator import SourcePair
from repro.datasets.vocabulary import ConceptVocabulary
from repro.embeddings.lm import SyntheticLanguageModel
from repro.embeddings.static import StaticEmbedder
from repro.text.tokenize import clean_tokens, tokenize


@dataclass(frozen=True)
class DeepBlockerConfig:
    """One hyperparameter combination of the Table V grid."""

    k: int
    attribute: str | None = None
    clean: bool = False
    index_left: bool = False
    use_autoencoder: bool = True
    encoding_dim: int = 32

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def describe(self) -> str:
        """Compact rendering for Table V's config columns."""
        attribute = self.attribute if self.attribute is not None else "all"
        cleaning = "yes" if self.clean else "no"
        index = "D1" if self.index_left else "D2"
        return f"attr={attribute} cl={cleaning} K={self.k} ind={index}"


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class DeepBlockerIndex:
    """Embeddings + similarity matrix for one (attribute, clean) setting.

    Built once, then :meth:`candidates` answers any (k, index_left)
    combination from the precomputed left-by-right cosine matrix.
    """

    def __init__(
        self,
        sources: SourcePair,
        attribute: str | None = None,
        clean: bool = False,
        use_autoencoder: bool = True,
        encoding_dim: int = 32,
        seed: int = 0,
        language_model: SyntheticLanguageModel | None = None,
    ) -> None:
        self.sources = sources
        self.attribute = attribute
        self.clean = clean
        if language_model is None:
            vocabulary = sources.vocabulary
            if vocabulary is None:
                vocabulary = ConceptVocabulary(name=f"{sources.name}-oov")
            # DeepBlocker runs on fastText — a static model whose semantic
            # knowledge of niche product/movie vocabulary is weak (the paper
            # notes its embeddings "may add to this noise"). The blocking LM
            # is therefore subword-dominant: synonym clusters contribute only
            # faintly, so synonym-divergent duplicates need a large K.
            language_model = SyntheticLanguageModel(
                vocabulary, dimension=64, subword_weight=0.8, seed=seed
            )
        embedder = StaticEmbedder(language_model)

        left_vectors = self._embed_store(sources.left, embedder)
        right_vectors = self._embed_store(sources.right, embedder)
        if use_autoencoder:
            autoencoder = LinearAutoencoder(encoding_dim=encoding_dim, seed=seed)
            autoencoder.fit(np.vstack((left_vectors, right_vectors)))
            left_vectors = autoencoder.encode(left_vectors)
            right_vectors = autoencoder.encode(right_vectors)

        self._left_ids = sources.left.ids()
        self._right_ids = sources.right.ids()
        #: cosine similarity, rows = left records, columns = right records
        self.similarities = _normalize_rows(left_vectors) @ _normalize_rows(
            right_vectors
        ).T

    def _record_text(self, record: Record) -> str:
        if self.attribute is None:
            text = record.full_text()
        else:
            text = record.value(self.attribute)
        if not self.clean:
            return text
        return " ".join(clean_tokens(tokenize(text)))

    def _embed_store(
        self, store: RecordStore, embedder: StaticEmbedder
    ) -> np.ndarray:
        return np.stack(
            [embedder.embed_text(self._record_text(record)) for record in store]
        )

    def candidates(self, k: int, index_left: bool) -> set[tuple[str, str]]:
        """Top-K retrieval: queries from one source against the other.

        ``index_left=True`` indexes the left source (queries come from the
        right); candidates are always (left_id, right_id).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if index_left:
            similarities = self.similarities.T  # rows: right queries
            query_ids, index_ids = self._right_ids, self._left_ids
        else:
            similarities = self.similarities  # rows: left queries
            query_ids, index_ids = self._left_ids, self._right_ids
        effective_k = min(k, len(index_ids))
        top_k = np.argpartition(-similarities, kth=effective_k - 1, axis=1)[
            :, :effective_k
        ]
        results: set[tuple[str, str]] = set()
        for query_position, neighbors in enumerate(top_k):
            query_id = query_ids[query_position]
            for neighbor in neighbors:
                index_id = index_ids[int(neighbor)]
                if index_left:
                    results.add((index_id, query_id))
                else:
                    results.add((query_id, index_id))
        return results


class DeepBlocker:
    """Single-configuration facade over :class:`DeepBlockerIndex`."""

    def __init__(self, config: DeepBlockerConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    @observed_candidates
    def candidates(self, sources: SourcePair) -> set[tuple[str, str]]:
        """The candidate (left_id, right_id) pairs of this configuration."""
        index = DeepBlockerIndex(
            sources,
            attribute=self.config.attribute,
            clean=self.config.clean,
            use_autoencoder=self.config.use_autoencoder,
            encoding_dim=self.config.encoding_dim,
            seed=self.seed,
        )
        return index.candidates(self.config.k, self.config.index_left)
