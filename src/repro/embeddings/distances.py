"""Vector similarity measures used by the SAS/SBS-ESDE matchers.

Section IV-C defines three similarities over sentence-embedding vectors:
cosine, Euclidean similarity ``1 / (1 + ED)`` and Wasserstein similarity
(same transform applied to the 1-d Wasserstein / Earth mover's distance
between the two vectors viewed as samples).
"""

from __future__ import annotations

import numpy as np


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    left = np.asarray(a, dtype=np.float64).ravel()
    right = np.asarray(b, dtype=np.float64).ravel()
    if left.shape != right.shape:
        raise ValueError(f"vector shapes differ: {left.shape} vs {right.shape}")
    return left, right


def cosine_vector_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity mapped into [0, 1] (0 for a zero vector)."""
    left, right = _check_pair(a, b)
    norms = np.linalg.norm(left) * np.linalg.norm(right)
    if norms == 0:
        return 0.0
    cosine = float(left @ right) / norms
    return float(np.clip((cosine + 1.0) / 2.0, 0.0, 1.0))


def euclidean_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """``ES = 1 / (1 + ED)`` with ED the Euclidean distance (§IV-C)."""
    left, right = _check_pair(a, b)
    return 1.0 / (1.0 + float(np.linalg.norm(left - right)))


def wasserstein_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """``WS = 1 / (1 + W1)`` with W1 the 1-d Wasserstein distance.

    Treats the two vectors as empirical samples of equal size, for which W1
    is the mean absolute difference of the sorted values.
    """
    left, right = _check_pair(a, b)
    w1 = float(np.mean(np.abs(np.sort(left) - np.sort(right))))
    return 1.0 / (1.0 + w1)
