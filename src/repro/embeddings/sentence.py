"""Sentence embedder (S-GTR-T5 stand-in) for the SAS/SBS-ESDE matchers.

Embeds the concatenation of all attribute values as a single vector using
TF-IDF-weighted pooling of the language model's token vectors: frequent
filler tokens contribute little, rare discriminative tokens dominate — the
property of real sentence encoders the ESDE variants rely on.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.data.records import Record
from repro.embeddings.lm import SyntheticLanguageModel
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfIdfVectorizer


class SentenceEmbedder:
    """TF-IDF-pooled record embeddings.

    Must be fitted on a corpus of records (typically both sources of a
    task) before use, mirroring how sentence encoders are applied after
    tokenizer/vocabulary preparation.
    """

    def __init__(self, model: SyntheticLanguageModel) -> None:
        self.model = model
        self._vectorizer = TfIdfVectorizer()
        self._fitted = False

    @property
    def dimension(self) -> int:
        return self.model.dimension

    def fit(self, records: Iterable[Record]) -> "SentenceEmbedder":
        """Learn IDF weights from the record corpus."""
        corpus = [tokenize(record.full_text()) for record in records]
        corpus = [tokens for tokens in corpus if tokens]
        if not corpus:
            raise ValueError("cannot fit a SentenceEmbedder on empty records")
        self._vectorizer.fit(corpus)
        self._fitted = True
        return self

    def embed_text(self, text: str) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("SentenceEmbedder is not fitted; call fit() first")
        tokens = tokenize(text)
        if not tokens:
            return np.zeros(self.dimension)
        weights = self._vectorizer.weights(tokens)
        total = np.zeros(self.dimension)
        for token, weight in weights.items():
            total += weight * self.model.token_vector(token)
        norm = np.linalg.norm(total)
        return total / norm if norm > 0 else total

    def embed_record(self, record: Record) -> np.ndarray:
        """Schema-agnostic sentence vector of the whole record."""
        return self.embed_text(record.full_text())

    def embed_attribute(self, record: Record, attribute: str) -> np.ndarray:
        return self.embed_text(record.value(attribute))
