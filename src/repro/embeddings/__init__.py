"""Synthetic pre-trained language model substrate.

Real deep matchers lean on fastText / BERT / S-GTR-T5 for semantic knowledge
that lexical similarity lacks. None of those are available offline, so this
package provides a *synthetic* pre-trained LM whose semantic knowledge is,
by construction, the synonym-cluster structure of the generated vocabularies
(see DESIGN.md, Substitutions):

* :class:`StaticEmbedder` — fastText stand-in: one vector per token, built
  from the token's concept-cluster centroid plus a subword (character
  n-gram) component, so synonyms land close together and typos land close
  to their originals. Homograph tokens get the *average* of their cluster
  centroids — static models cannot disambiguate.
* :class:`ContextualEmbedder` — BERT/RoBERTa stand-in: the same vectors but
  homographs are disambiguated from the surrounding tokens' clusters; the
  ``variant`` seed models different pre-trained checkpoints ("B" vs "R").
* :class:`SentenceEmbedder` — S-GTR-T5 stand-in: TF-IDF-weighted pooling of
  token vectors into a single record vector.
"""

from repro.embeddings.lm import SyntheticLanguageModel
from repro.embeddings.static import StaticEmbedder
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.sentence import SentenceEmbedder
from repro.embeddings.distances import (
    cosine_vector_similarity,
    euclidean_similarity,
    wasserstein_similarity,
)

__all__ = [
    "ContextualEmbedder",
    "SentenceEmbedder",
    "StaticEmbedder",
    "SyntheticLanguageModel",
    "cosine_vector_similarity",
    "euclidean_similarity",
    "wasserstein_similarity",
]
