"""Contextual token embedder (BERT/RoBERTa stand-in).

Two mechanisms distinguish it from the static embedder:

* **polysemy** — homograph tokens are disambiguated against the concept
  centroids of the surrounding tokens (the paper's "bank" example);
* **checkpoint variants** — the ``variant`` name ("B" for BERT-like, "R"
  for RoBERTa-like) perturbs the underlying geometry slightly, modelling the
  fact that different pre-trained checkpoints give correlated but not
  identical representations (EMTransformer-B vs -R in Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Record
from repro.embeddings.lm import SyntheticLanguageModel
from repro.text.tokenize import tokenize

_VARIANT_SEEDS = {"B": 0, "R": 1}


class ContextualEmbedder:
    """Context-aware token and sequence embeddings."""

    def __init__(
        self, model: SyntheticLanguageModel, variant: str = "B"
    ) -> None:
        if variant not in _VARIANT_SEEDS:
            raise ValueError(
                f"unknown variant {variant!r}; known: {sorted(_VARIANT_SEEDS)}"
            )
        self.model = model
        self.variant = variant
        rng = np.random.default_rng(
            model.seed * 31 + 1009 * _VARIANT_SEEDS[variant]
        )
        # A mild random rotation-ish mixing matrix per checkpoint variant:
        # orthonormal basis from a QR decomposition keeps norms intact.
        random_matrix = rng.normal(size=(model.dimension, model.dimension))
        q, __ = np.linalg.qr(random_matrix)
        blend = 0.15 if variant == "R" else 0.0
        self._mix = (1.0 - blend) * np.eye(model.dimension) + blend * q

    @property
    def dimension(self) -> int:
        return self.model.dimension

    def _context_concepts(self, tokens: list[str]) -> list[int]:
        """Unambiguous concept ids present in the token sequence."""
        concepts: list[int] = []
        for token in tokens:
            ids = self.model.token_concepts(token)
            if len(ids) == 1:
                concepts.append(ids[0])
        return concepts

    def embed_sequence(self, tokens: list[str]) -> np.ndarray:
        """Sequence vector: disambiguated token vectors, mean-pooled.

        This emulates the [CLS]-style sequence encoding the transformer
        matchers use: concatenate all attribute values into one sequence and
        encode it as a whole.
        """
        if not tokens:
            return np.zeros(self.dimension)
        context = self._context_concepts(tokens)
        total = np.zeros(self.dimension)
        for token in tokens:
            total += self.model.disambiguated_vector(token, context)
        vector = (total / len(tokens)) @ self._mix
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def embed_text(self, text: str) -> np.ndarray:
        return self.embed_sequence(tokenize(text))

    def embed_record(self, record: Record) -> np.ndarray:
        """Heterogeneous encoding: all attribute values as one sequence."""
        return self.embed_text(record.full_text())

    def embed_attribute(self, record: Record, attribute: str) -> np.ndarray:
        """Attribute encoding, still disambiguated by the whole record."""
        tokens = tokenize(record.value(attribute))
        if not tokens:
            return np.zeros(self.dimension)
        context = self._context_concepts(tokenize(record.full_text()))
        total = np.zeros(self.dimension)
        for token in tokens:
            total += self.model.disambiguated_vector(token, context)
        vector = (total / len(tokens)) @ self._mix
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector
