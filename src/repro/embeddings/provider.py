"""Convenience construction of embedders for a matching task.

The synthetic language model's "pre-training corpus" is the concept
vocabulary the task's sources were generated from, carried in
``task.metadata["vocabulary"]``. Tasks loaded from external files have no
vocabulary; the model then degrades gracefully to pure subword vectors —
the analogue of applying a pre-trained model to a domain it never saw.
"""

from __future__ import annotations

from repro.data.task import MatchingTask
from repro.datasets.vocabulary import ConceptVocabulary
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.lm import SyntheticLanguageModel
from repro.embeddings.sentence import SentenceEmbedder
from repro.embeddings.static import StaticEmbedder

#: One language model per (vocabulary identity, dimension); token vectors
#: are expensive enough to be worth sharing across matchers.
_model_cache: dict[tuple[int, int], SyntheticLanguageModel] = {}


def language_model_for_task(
    task: MatchingTask, dimension: int = 64
) -> SyntheticLanguageModel:
    """The shared synthetic LM for a task (cached per vocabulary)."""
    vocabulary = task.metadata.get("vocabulary")
    if not isinstance(vocabulary, ConceptVocabulary):
        vocabulary = ConceptVocabulary(name=f"{task.name}-oov")
    key = (id(vocabulary), dimension)
    if key not in _model_cache:
        _model_cache[key] = SyntheticLanguageModel(
            vocabulary, dimension=dimension, seed=0
        )
    return _model_cache[key]


def static_embedder_for_task(
    task: MatchingTask, dimension: int = 64
) -> StaticEmbedder:
    """fastText-equivalent embedder for *task*."""
    return StaticEmbedder(language_model_for_task(task, dimension))


def contextual_embedder_for_task(
    task: MatchingTask, variant: str = "B", dimension: int = 64
) -> ContextualEmbedder:
    """BERT/RoBERTa-equivalent embedder for *task*."""
    return ContextualEmbedder(
        language_model_for_task(task, dimension), variant=variant
    )


def sentence_embedder_for_task(
    task: MatchingTask, dimension: int = 64
) -> SentenceEmbedder:
    """S-GTR-T5-equivalent embedder, fitted on both sources of *task*."""
    embedder = SentenceEmbedder(language_model_for_task(task, dimension))
    embedder.fit(list(task.left) + list(task.right))
    return embedder


def clear_model_cache() -> None:
    """Drop cached language models (used by tests)."""
    _model_cache.clear()
