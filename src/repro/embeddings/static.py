"""Static token embedder (fastText stand-in)."""

from __future__ import annotations

import numpy as np

from repro.data.records import Record
from repro.embeddings.lm import SyntheticLanguageModel
from repro.text.tokenize import tokenize


class StaticEmbedder:
    """Context-free token and record embeddings.

    Every token always maps to the same vector regardless of context
    (homographs stay ambiguous). Record/attribute embeddings are mean-pooled
    token vectors — the standard aggregation for static models.
    """

    def __init__(self, model: SyntheticLanguageModel) -> None:
        self.model = model

    @property
    def dimension(self) -> int:
        return self.model.dimension

    def embed_token(self, token: str) -> np.ndarray:
        return self.model.token_vector(token)

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        """Mean-pooled vector of a token sequence (zeros when empty)."""
        if not tokens:
            return np.zeros(self.dimension)
        total = np.zeros(self.dimension)
        for token in tokens:
            total += self.embed_token(token)
        vector = total / len(tokens)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def embed_text(self, text: str) -> np.ndarray:
        return self.embed_tokens(tokenize(text))

    def embed_attribute(self, record: Record, attribute: str) -> np.ndarray:
        return self.embed_text(record.value(attribute))

    def embed_record(self, record: Record) -> np.ndarray:
        """Schema-agnostic record vector over all attribute values."""
        return self.embed_text(record.full_text())
