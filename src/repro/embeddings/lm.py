"""The synthetic pre-trained language model.

The model assigns every *concept* (synonym cluster) a fixed random centroid
on the unit sphere and every surface form an offset around the centroid(s)
of the concept(s) it belongs to. Tokens outside any vocabulary — typos,
model codes, numbers — fall back to a purely subword (hashed character
n-gram) vector, mirroring how fastText composes vectors for
out-of-vocabulary words.

Determinism: centroids and hashes derive from a seed plus stable string
hashes, so the same vocabulary and seed always produce identical vectors.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.datasets.vocabulary import ConceptVocabulary
from repro.text.tokenize import qgrams


def _stable_hash(text: str, salt: str) -> int:
    digest = hashlib.blake2b(
        f"{salt}:{text}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm == 0:
        return vector
    return vector / norm


class SyntheticLanguageModel:
    """Concept-aware token vectors for one vocabulary.

    Parameters
    ----------
    vocabulary:
        The concept vocabulary whose synonym clusters define semantics.
    dimension:
        Embedding width (64 is plenty for the synthetic vocabularies; the
        ratio static:contextual widths of the real models is irrelevant to
        the mechanisms under study).
    subword_weight:
        Mixing weight of the hashed character-trigram component; > 0 makes
        typo'd tokens land near their originals.
    seed:
        Global seed; combined with stable string hashes per concept/gram.
    """

    def __init__(
        self,
        vocabulary: ConceptVocabulary,
        dimension: int = 64,
        subword_weight: float = 0.35,
        seed: int = 0,
    ) -> None:
        if dimension < 4:
            raise ValueError(f"dimension must be >= 4, got {dimension}")
        if not 0.0 <= subword_weight <= 1.0:
            raise ValueError(
                f"subword_weight must be in [0, 1], got {subword_weight}"
            )
        self.vocabulary = vocabulary
        self.dimension = dimension
        self.subword_weight = subword_weight
        self.seed = seed
        self._centroids: dict[int, np.ndarray] = {}
        self._gram_cache: dict[str, np.ndarray] = {}
        self._token_cache: dict[str, np.ndarray] = {}

    # -- building blocks ---------------------------------------------------

    def concept_centroid(self, concept_id: int) -> np.ndarray:
        """The unit-norm centroid of one synonym cluster."""
        cached = self._centroids.get(concept_id)
        if cached is None:
            rng = np.random.default_rng(
                (self.seed * 1_000_003 + concept_id) & 0x7FFFFFFF
            )
            cached = _unit(rng.normal(size=self.dimension))
            self._centroids[concept_id] = cached
        return cached

    def _gram_vector(self, gram: str) -> np.ndarray:
        cached = self._gram_cache.get(gram)
        if cached is None:
            rng = np.random.default_rng(
                (_stable_hash(gram, f"gram{self.seed}")) & 0x7FFFFFFF
            )
            cached = _unit(rng.normal(size=self.dimension))
            self._gram_cache[gram] = cached
        return cached

    def subword_vector(self, token: str) -> np.ndarray:
        """Mean hashed character-trigram vector (fastText-style subwords)."""
        grams = qgrams(f"<{token}>", 3)
        if not grams:
            return np.zeros(self.dimension)
        total = np.zeros(self.dimension)
        for gram in sorted(grams):
            total += self._gram_vector(gram)
        return _unit(total / len(grams))

    # -- public API ---------------------------------------------------------

    def token_concepts(self, token: str) -> list[int]:
        """Concept ids this surface form belongs to ([] when OOV)."""
        return [
            concept.concept_id
            for concept in self.vocabulary.concepts_for_surface(token)
        ]

    def token_vector(self, token: str) -> np.ndarray:
        """Static (context-free) vector of a token.

        In-vocabulary tokens mix the mean of their concept centroids with
        the subword component; OOV tokens are pure subword vectors.
        Homographs therefore sit between their meanings — the static
        ambiguity the contextual embedder resolves.
        """
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        concept_ids = self.token_concepts(token)
        subword = self.subword_vector(token)
        if not concept_ids:
            vector = subword
        else:
            centroid = np.mean(
                [self.concept_centroid(cid) for cid in concept_ids], axis=0
            )
            vector = _unit(
                (1.0 - self.subword_weight) * centroid
                + self.subword_weight * subword
            )
        self._token_cache[token] = vector
        return vector

    def disambiguated_vector(
        self, token: str, context_concepts: list[int]
    ) -> np.ndarray:
        """Context-aware vector: homographs pick the centroid closest to
        the context centroid (mean of the context concepts' centroids).

        Non-homograph and OOV tokens reduce to the static vector.
        """
        concept_ids = self.token_concepts(token)
        if len(concept_ids) < 2 or not context_concepts:
            return self.token_vector(token)
        context = np.mean(
            [self.concept_centroid(cid) for cid in context_concepts], axis=0
        )
        best = max(
            concept_ids,
            key=lambda cid: float(self.concept_centroid(cid) @ context),
        )
        subword = self.subword_vector(token)
        return _unit(
            (1.0 - self.subword_weight) * self.concept_centroid(best)
            + self.subword_weight * subword
        )
