"""String and set similarity measures.

The set-based measures (cosine, Jaccard, Dice, overlap) operate on token or
q-gram sets and are the backbone of the paper's degree-of-linearity measure
(Section III-A) and of the ESDE linear matchers (Section IV-C). The
edit-based measures (Levenshtein, Jaro, Jaro-Winkler, Monge-Elkan) mirror the
similarity functions Magellan extracts features with (Section IV-B).

All similarities return values in [0, 1], higher meaning more similar, and
are symmetric in their two arguments.
"""

from __future__ import annotations

import math
from collections.abc import Sequence, Set


def cosine_similarity(a: Set[str], b: Set[str]) -> float:
    """Set cosine: ``|a & b| / sqrt(|a| * |b|)``.

    This is the ``CS`` measure of Section III-A, treating each set as a
    binary occurrence vector.
    """
    if not a or not b:
        return 0.0
    return len(a & b) / math.sqrt(len(a) * len(b))


def jaccard_similarity(a: Set[str], b: Set[str]) -> float:
    """Set Jaccard: ``|a & b| / |a | b|`` (the ``JS`` measure of §III-A)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


def dice_similarity(a: Set[str], b: Set[str]) -> float:
    """Set Dice coefficient: ``2 |a & b| / (|a| + |b|)``."""
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap_coefficient(a: Set[str], b: Set[str]) -> float:
    """Overlap coefficient: ``|a & b| / min(|a|, |b|)``."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance (insertions, deletions, substitutions) between strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for memory locality.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity: ``1 - distance / max(len)``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        low = max(0, i - window)
        high = min(len(b), i + window + 1)
        for j in range(low, high):
            if not b_flags[j] and b[j] == char_a:
                a_flags[i] = True
                b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix length."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def monge_elkan_similarity(
    tokens_a: Sequence[str], tokens_b: Sequence[str]
) -> float:
    """Monge-Elkan: mean best Jaro-Winkler match of each token of *a* in *b*.

    Note this variant is asymmetric in general; we symmetrize by averaging
    both directions, which keeps the measure a proper [0, 1] similarity.
    """
    if not tokens_a or not tokens_b:
        return 0.0

    def directed(source: Sequence[str], target: Sequence[str]) -> float:
        total = 0.0
        for token in source:
            total += max(jaro_winkler_similarity(token, other) for other in target)
        return total / len(source)

    return (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a)) / 2.0


def numeric_similarity(a: float, b: float) -> float:
    """Similarity of two numbers: ``1 - |a-b| / max(|a|, |b|)``, clamped to 0.

    Used by Magellan-style feature extraction on numeric attributes (prices,
    years). Two zeros are identical (similarity 1).
    """
    if a == b:
        return 1.0
    denominator = max(abs(a), abs(b))
    if denominator == 0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / denominator)
