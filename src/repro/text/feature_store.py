"""Per-task feature store + content-addressed feature-matrix cache.

One :class:`FeatureStore` per :class:`~repro.data.task.MatchingTask`
(via :func:`store_for_task`) tokenizes and q-grams every record exactly
once: each requested *view* — schema-agnostic or per-attribute tokens,
or q-grams of one length — encodes a record's feature set as a sorted
int64 id array (see :mod:`repro.text.kernels`) the first time the record
is seen, and every extractor (:class:`~repro.matchers.features
.EsdeFeatureExtractor`, :class:`~repro.matchers.features
.MagellanFeatureExtractor`, the linearity sweeps) batches its similarity
columns through the same rows.

On top sits an optional **content-addressed disk cache**
(:class:`FeatureMatrixCache`) reusing the PR-1 atomic checksummed cache
envelopes: the key digests the extractor spec, :data:`~repro.text.kernels
.KERNEL_VERSION`, the feature names and the full content of every record
of every pair (in pair order), so repeated sweeps — and the fork workers
of a ``--workers N`` run, which inherit the active cache — skip
extraction entirely, and any change to a record, the pair order, the
schema or the kernel semantics misses cleanly. Floats round-trip through
JSON via ``repr`` exactly, so a cache hit reproduces the matrix **byte
for byte**. Cache failures are strictly best-effort: corrupt envelopes
are quarantined and recomputed, failed writes are dropped — only
``features.cache_*`` metrics record them, never a ``FailureRecord``.

Every matrix request (memoized or not) increments ``features.requests``
/ ``features.pairs``, feeds the ``features.extract_seconds`` timer and
fires an ``obs.phase(..., "extract", dt)`` probe boundary, so profiling
sees the extraction phase next to fit/predict/block.
"""

from __future__ import annotations

import hashlib
import time
import weakref
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro import obs
from repro.runtime.cache import (
    CacheError,
    quarantine,
    read_envelope,
    write_envelope,
)
from repro.text.kernels import (
    KERNEL_VERSION,
    SET_MEASURES,
    CharTable,
    IncrementalIncidence,
    QGramAlphabetOverflow,
    QGramCodec,
    RecordIncidence,
    TokenInterner,
    densify_csr,
    pack_rows,
    set_similarity_matrix_indexed,
)

#: A view names one way of reducing a record to a feature set:
#: ``("tokens", attribute_or_None)`` or ``("qgrams", attribute_or_None, q)``.
View = tuple


@dataclass(frozen=True)
class FeatureMatrixCache:
    """Content-addressed feature matrices in checksummed envelopes.

    One JSON envelope per (spec, pair-content) digest under *directory*;
    safe for concurrent writers (atomic replace; identical content maps
    to identical files).
    """

    directory: Path

    def path_for(self, digest: str) -> Path:
        return Path(self.directory) / f"features_{digest}.json"

    def load(self, digest: str, names: Sequence[str]) -> np.ndarray | None:
        """The cached matrix for *digest*, or ``None`` on any miss."""
        path = self.path_for(digest)
        if not path.exists():
            obs.inc("features.cache_miss")
            return None
        try:
            payload = read_envelope(path)
        except CacheError:
            quarantine(path)
            obs.inc("features.cache_quarantined")
            return None
        except Exception:
            # e.g. an injected cache:read error fault — a plain miss.
            obs.inc("features.cache_miss")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kernel_version") != KERNEL_VERSION
            or payload.get("names") != list(names)
        ):
            obs.inc("features.cache_miss")
            return None
        matrix = np.asarray(payload["matrix"], dtype=np.float64)
        matrix = matrix.reshape(tuple(payload["shape"]))
        obs.inc("features.cache_hit")
        return matrix

    def store(
        self,
        digest: str,
        spec: str,
        names: Sequence[str],
        matrix: np.ndarray,
    ) -> None:
        """Best-effort envelope write; failures only count a metric."""
        payload = {
            "spec": spec,
            "kernel_version": KERNEL_VERSION,
            "names": list(names),
            "shape": list(matrix.shape),
            "matrix": matrix.tolist(),
        }
        try:
            write_envelope(self.path_for(digest), payload)
        except Exception:
            obs.inc("features.cache_write_failed")
            return
        obs.inc("features.cache_write")


_active_cache: FeatureMatrixCache | None = None

# Set by the resource guard's degradation ladder: under disk pressure the
# cache's envelope writes are the one knob worth turning off, and under
# memory pressure its in-process reads stop pinning decoded matrices.
_cache_disabled = False


def set_cache_disabled(disabled: bool) -> None:
    """Force :func:`active_feature_cache` to ``None`` without uninstalling."""
    global _cache_disabled
    _cache_disabled = bool(disabled)


def cache_disabled() -> bool:
    return _cache_disabled


def active_feature_cache() -> FeatureMatrixCache | None:
    """The process-wide cache extractors consult (``None`` = disabled)."""
    if _cache_disabled:
        return None
    return _active_cache


def set_feature_cache(
    cache: FeatureMatrixCache | None,
) -> FeatureMatrixCache | None:
    """Install *cache* as the active one; returns the previous."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


@contextmanager
def feature_cache_scope(
    cache: FeatureMatrixCache | None,
) -> Iterator[FeatureMatrixCache | None]:
    """Activate *cache* for a ``with`` block, then restore the previous.

    The runner wraps each unit of work in a scope, so a forked worker
    inherits the active cache while unrelated code (and later tests in
    the same process) never see a stale one.
    """
    previous = set_feature_cache(cache)
    try:
        yield cache
    finally:
        set_feature_cache(previous)


class FeatureStore:
    """Tokenize-once substrate shared by every extractor of one task."""

    def __init__(self) -> None:
        self._interners: dict[View, TokenInterner] = {}
        self._rows: dict[View, dict[tuple[str, str], np.ndarray]] = {}
        self._record_digests: dict[tuple[str, str], bytes] = {}
        # Character-id rows per text plane (attribute, or None for the
        # schema-agnostic full text), shared by every q-gram length of
        # that plane: each record's text is normalized and mapped to
        # dense character ids exactly once.
        self._char_tables: dict[str | None, CharTable] = {}
        self._char_rows: dict[
            str | None, dict[tuple[str, str], np.ndarray]
        ] = {}
        self._codecs: dict[View, QGramCodec] = {}
        # Q-gram views whose alphabet outgrew their codec's bit budget;
        # they use per-gram dict interning instead (always correct, just
        # slower).
        self._fallback_views: set[View] = set()
        # Per-view record incidence over *all* encoded records, rebuilt
        # only when the view gained records (keyed by the row count at
        # build time): (n_rows, key -> row position, incidence).
        self._incidence_cache: dict[
            View, tuple[int, dict[tuple[str, str], int], RecordIncidence]
        ] = {}
        # Views opted into append-only incidence (repro.serve): rows of
        # new records extend the structure in place, never rebuilding.
        self._incremental_views: set[View] = set()
        self._incremental_all = False
        self._incremental: dict[
            View, tuple[dict[tuple[str, str], int], IncrementalIncidence]
        ] = {}
        # Last matrix per (spec, names): (n_pairs, chain digest at
        # n_pairs, matrix). A request whose pair-list prefix chains to
        # the same digest reuses those rows and computes only the
        # suffix — the append-friendly tier under the exact disk cache.
        self._matrix_memo: dict[
            tuple[str, tuple[str, ...]], tuple[int, bytes, np.ndarray]
        ] = {}

    # -- record views ------------------------------------------------------

    @staticmethod
    def _extract(record, view: View) -> set:
        kind, attribute = view[0], view[1]
        if kind == "tokens":
            return (
                record.tokens()
                if attribute is None
                else record.attribute_tokens(attribute)
            )
        if kind == "qgrams":
            q = view[2]
            return (
                record.qgrams(q)
                if attribute is None
                else record.attribute_qgrams(attribute, q)
            )
        raise KeyError(f"unknown view kind {kind!r}")

    def _char_id_rows(
        self, records: Sequence, attribute: str | None
    ) -> list[np.ndarray]:
        """Each record's text plane as dense character ids, built once.

        Texts are normalized exactly like :func:`~repro.text.tokenize
        .qgrams` does (lower-cased, whitespace collapsed); all uncached
        records of the batch are concatenated and mapped through the
        plane's shared :class:`~repro.text.kernels.CharTable` in a
        single call — per-record numpy dispatch would otherwise dominate
        the encoding of a fresh store.
        """
        plane = self._char_rows.setdefault(attribute, {})
        rows: list[np.ndarray | None] = [None] * len(records)
        texts: list[str] = []
        targets: list[tuple[int, tuple[str, str]]] = []
        for index, record in enumerate(records):
            key = (record.source, record.record_id)
            ids = plane.get(key)
            if ids is not None:
                rows[index] = ids
                continue
            raw = (
                record.full_text()
                if attribute is None
                else record.value(attribute)
            )
            texts.append(" ".join(raw.lower().split()))
            targets.append((index, key))
        if texts:
            table = self._char_tables.setdefault(attribute, CharTable())
            bounds = np.zeros(len(texts) + 1, dtype=np.int64)
            np.cumsum(
                np.fromiter(
                    (len(text) for text in texts),
                    dtype=np.int64,
                    count=len(texts),
                ),
                out=bounds[1:],
            )
            mapped = table.map(
                np.frombuffer(
                    "".join(texts).encode("utf-32-le"), dtype=np.uint32
                )
            )
            for position, (index, key) in enumerate(targets):
                ids = mapped[bounds[position] : bounds[position + 1]]
                plane[key] = ids
                rows[index] = ids
        return rows

    def rows(self, records: Iterable, view: View) -> list[np.ndarray]:
        """Sorted id arrays for *records* under *view*, built once each.

        Q-gram views encode missing records in one vectorized batch of
        content-derived codes (the hot path — nine q lengths per ESDE
        variant); token views, and q-gram views whose alphabet overflowed
        their codec, intern per record.
        """
        interner = self._interners.get(view)
        if interner is None:
            interner = self._interners[view] = TokenInterner()
            self._rows[view] = {}
        row_map = self._rows[view]
        record_list = list(records)
        use_codec = view[0] == "qgrams" and view not in self._fallback_views
        if use_codec:
            missing: dict[tuple[str, str], object] = {}
            for record in record_list:
                key = (record.source, record.record_id)
                if key not in row_map and key not in missing:
                    missing[key] = record
            if missing:
                attribute, q = view[1], view[2]
                codec = self._codecs.get(view)
                if codec is None:
                    table = self._char_tables.setdefault(
                        attribute, CharTable()
                    )
                    codec = self._codecs[view] = QGramCodec(q, table)
                try:
                    encoded = codec.encode(
                        self._char_id_rows(list(missing.values()), attribute)
                    )
                except QGramAlphabetOverflow:
                    # Codes of different alphabet epochs must never mix:
                    # drop every codec row and re-intern below. Any
                    # incremental incidence holds epoch-stale ids too —
                    # it rebuilds once from the re-interned rows.
                    self._fallback_views.add(view)
                    self._incidence_cache.pop(view, None)
                    self._incremental.pop(view, None)
                    row_map.clear()
                    use_codec = False
                else:
                    for key, row in zip(missing, encoded):
                        row_map[key] = row
        if not use_codec:
            for record in record_list:
                key = (record.source, record.record_id)
                if key not in row_map:
                    row_map[key] = interner.encode_set(
                        self._extract(record, view)
                    )
        return [
            row_map[(record.source, record.record_id)]
            for record in record_list
        ]

    def enable_incremental(self, view: View) -> None:
        """Switch *view* to append-only incidence (the serving mode).

        An incremental view's :class:`~repro.text.kernels
        .IncrementalIncidence` extends in place as records arrive —
        ``features.incidence_appends`` counts extensions and
        ``features.incidence_rebuilds`` provably stays flat — at the
        cost of the merge backend's slightly slower intersections. Set
        intersections are id-scheme-invariant, so similarities are
        bit-identical to the rebuilt structure.
        """
        self._incremental_views.add(view)

    def enable_incremental_all(self) -> None:
        """Every view — current and future — goes append-only (serving)."""
        self._incremental_all = True

    def _incidence(
        self, view: View
    ) -> tuple[dict[tuple[str, str], int], RecordIncidence]:
        """The record incidence of every encoded record, memoized.

        Rebuilt only when the view gained records — unless the view is
        :meth:`enable_incremental`, in which case new rows append to a
        live structure and nothing is ever rebuilt. Codec views first
        map their wide content-derived codes to dense ranks; the rank
        vocabulary is content-defined, so a rebuild never changes
        existing similarity results, only extends the id space. Token
        and fallback views already hold dense interner ids.
        """
        row_map = self._rows[view]
        if self._incremental_all or view in self._incremental_views:
            state = self._incremental.get(view)
            if state is None:
                state = self._incremental[view] = ({}, IncrementalIncidence())
            positions, incidence = state
            if len(positions) < len(row_map):
                fresh = list(row_map)[len(positions) :]
                incidence.append_rows([row_map[key] for key in fresh])
                for key in fresh:
                    positions[key] = len(positions)
                obs.inc("features.incidence_appends")
            return positions, incidence
        cached = self._incidence_cache.get(view)
        if cached is not None and cached[0] == len(row_map):
            return cached[1], cached[2]
        keys = list(row_map)
        rows = [row_map[key] for key in keys]
        if view[0] == "qgrams" and view not in self._fallback_views:
            indptr, ids, vocab_size = densify_csr(rows)
        else:
            packed = pack_rows(rows)
            indptr, ids = packed.indptr, packed.ids
            vocab_size = len(self._interners[view])
        incidence = RecordIncidence(indptr, ids, vocab_size)
        positions = {key: index for index, key in enumerate(keys)}
        self._incidence_cache[view] = (len(row_map), positions, incidence)
        obs.inc("features.incidence_rebuilds")
        return positions, incidence

    @staticmethod
    def pair_index(
        pairs: Sequence,
    ) -> tuple[list, np.ndarray, np.ndarray]:
        """Deduplicate the records of *pairs* into an indexed form.

        Returns ``(records, left_index, right_index)``: the distinct
        records in first-seen order, plus int64 position arrays mapping
        each pair side into that list. Extractors build the index once
        per matrix request and reuse it across every view's
        :meth:`set_similarities_indexed` call.
        """
        index_of: dict[tuple[str, str], int] = {}
        records: list = []
        left_index = np.empty(len(pairs), dtype=np.int64)
        right_index = np.empty(len(pairs), dtype=np.int64)
        for position, pair in enumerate(pairs):
            for record, out in (
                (pair.left, left_index),
                (pair.right, right_index),
            ):
                key = (record.source, record.record_id)
                index = index_of.get(key)
                if index is None:
                    index = index_of[key] = len(records)
                    records.append(record)
                out[position] = index
        return records, left_index, right_index

    def set_similarities_indexed(
        self,
        records: Sequence,
        left_index: np.ndarray,
        right_index: np.ndarray,
        view: View,
        measures: Iterable[str] = SET_MEASURES,
    ) -> np.ndarray:
        """Set similarities for pairs given in :meth:`pair_index` form.

        Each distinct record is encoded once; a batch then reduces to
        two row-index gathers into the view's memoized
        :class:`~repro.text.kernels.RecordIncidence`, so thousands of
        pairs over a few hundred records cost no per-pair Python at all.
        """
        self.rows(records, view)
        positions, incidence = self._incidence(view)
        record_positions = np.fromiter(
            (
                positions[(record.source, record.record_id)]
                for record in records
            ),
            dtype=np.int64,
            count=len(records),
        )
        return set_similarity_matrix_indexed(
            incidence,
            record_positions[left_index],
            record_positions[right_index],
            measures,
        )

    def set_similarities(
        self,
        pairs: Sequence,
        view: View,
        measures: Iterable[str] = SET_MEASURES,
    ) -> np.ndarray:
        """``(len(pairs), n_measures)`` set similarities for one view."""
        pair_list = list(pairs)
        records, left_index, right_index = self.pair_index(pair_list)
        return self.set_similarities_indexed(
            records, left_index, right_index, view, measures
        )

    # -- content addressing ------------------------------------------------

    def record_digest(self, record) -> bytes:
        """Digest of one record's identity and full attribute content."""
        key = (record.source, record.record_id)
        digest = self._record_digests.get(key)
        if digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(record.source.encode())
            hasher.update(b"\x00")
            hasher.update(record.record_id.encode())
            for attribute, value in sorted(record.values.items()):
                hasher.update(b"\x00")
                hasher.update(attribute.encode())
                hasher.update(b"\x1f")
                hasher.update(value.encode())
            digest = hasher.digest()
            self._record_digests[key] = digest
        return digest

    def _digest_chain(
        self, spec: str, names: Sequence[str], pairs: Sequence, checkpoint: int
    ) -> tuple[bytes, bytes]:
        """``(chain after checkpoint pairs, final chain)`` for a request.

        The matrix digest folds pair content as a hash *chain* — each
        pair's record digests are absorbed into the running 16-byte
        state — so the chain value after ``n`` pairs is itself the full
        digest of the length-``n`` prefix. That is what makes appends
        cache-friendly: an extended pair list reproduces its prefix's
        chain value exactly, and :meth:`matrix` can prove an in-memory
        matrix still covers ``pairs[:n]`` without comparing records.
        """
        header = "\x1f".join((f"kernel{KERNEL_VERSION}", spec, *names))
        chain = hashlib.blake2b(header.encode(), digest_size=16).digest()
        at_checkpoint = chain if checkpoint == 0 else b""
        for index, pair in enumerate(pairs):
            hasher = hashlib.blake2b(chain, digest_size=16)
            hasher.update(self.record_digest(pair.left))
            hasher.update(self.record_digest(pair.right))
            chain = hasher.digest()
            if index + 1 == checkpoint:
                at_checkpoint = chain
        return at_checkpoint, chain

    def matrix_digest(
        self, spec: str, names: Sequence[str], pairs: Sequence
    ) -> str:
        """The content-addressed cache key for one matrix request."""
        __, chain = self._digest_chain(spec, names, pairs, 0)
        return chain.hex()

    # -- the extraction boundary -------------------------------------------

    def matrix(
        self,
        spec: str,
        pairs: Sequence,
        names: Sequence[str],
        compute: Callable[[], np.ndarray],
        cacheable: bool = True,
        compute_pairs: Callable[[Sequence], np.ndarray] | None = None,
    ) -> np.ndarray:
        """One feature-matrix request: disk cache, prefix memo, *compute*.

        With *compute_pairs* (a partial extractor able to compute any
        pair subset) the store also keeps the last matrix per
        ``(spec, names)`` in memory keyed by its digest chain: when a
        new request's pair list *starts with* the memoized pairs — the
        ``add_records``-then-query shape of ``repro.serve`` — only the
        suffix rows are computed (``features.prefix_hits`` /
        ``features.prefix_reused_pairs``). The exact disk cache sits in
        front and still serves byte-identical full hits.

        Emits the request-level ``features.*`` metrics and the
        ``extract`` phase probe regardless of where the matrix came
        from, so counters are identical for any worker count.
        """
        started = time.perf_counter()
        obs.inc("features.requests")
        obs.inc("features.pairs", float(len(pairs)))

        cache = active_feature_cache() if cacheable else None
        memo_key = (spec, tuple(names))
        memo = self._matrix_memo.get(memo_key) if compute_pairs else None
        matrix = None
        digest = None
        chain = b""
        if cache is not None or compute_pairs is not None:
            checkpoint = 0
            if memo is not None and memo[0] <= len(pairs):
                checkpoint = memo[0]
            prefix_chain, chain = self._digest_chain(
                spec, names, pairs, checkpoint
            )
            digest = chain.hex()
            if cache is not None:
                matrix = cache.load(digest, names)
            if (
                matrix is None
                and memo is not None
                and memo[0] <= len(pairs)
                and memo[1] == prefix_chain
            ):
                n_reused, __, reused = memo
                obs.inc("features.prefix_hits")
                obs.inc("features.prefix_reused_pairs", float(n_reused))
                suffix = list(pairs[n_reused:])
                matrix = (
                    np.concatenate(
                        [reused, compute_pairs(suffix)], axis=0
                    )
                    if suffix
                    else reused
                )
                if cache is not None:
                    cache.store(digest, spec, names, matrix)
        if matrix is None:
            matrix = compute()
            if cache is not None and digest is not None:
                cache.store(digest, spec, names, matrix)
        if compute_pairs is not None:
            self._matrix_memo[memo_key] = (len(pairs), chain, matrix)

        elapsed = time.perf_counter() - started
        obs.observe("features.extract_seconds", elapsed)
        obs.phase(f"features:{spec}", "extract", elapsed)
        return matrix


_STORES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def store_for_task(task) -> FeatureStore:
    """The shared :class:`FeatureStore` of *task* (created on first use).

    Keyed weakly, so a task's store — interners, encoded rows, digests —
    dies with the task instead of pinning every record ever seen.
    """
    store = _STORES.get(task)
    if store is None:
        store = FeatureStore()
        _STORES[task] = store
    return store
