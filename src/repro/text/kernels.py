"""Vectorized set-similarity kernels over interned token/q-gram sets.

The paper's difficulty measures and linear matchers all reduce to the
same primitive: set cosine / Dice / Jaccard / overlap between the token
(or character q-gram) sets of the two records of a candidate pair.
Computing them one pair at a time in Python is the dominant cost of a
sweep. This module batches the primitive:

* a :class:`TokenInterner` maps feature strings (tokens) to dense
  integer ids, so each record's set becomes a **sorted int64 id array**
  built exactly once;
* q-grams never touch Python dicts: a per-plane :class:`CharTable`
  assigns dense character ids and a :class:`QGramCodec` packs each
  window's q ids into one content-derived int64 code, so whole record
  batches are encoded with a handful of array ops
  (:class:`QGramAlphabetOverflow` falls a view back to dict interning);
  :func:`densify_csr` then compresses the wide codes to dense ranks;
* :func:`pack_rows` / :func:`gather_csr` stack per-record arrays into a
  CSR-style incidence structure (``indptr`` + flat ``ids``), one row per
  pair side;
* :func:`batch_intersection_counts` computes every pair's intersection
  size in one pass — each (row, id) incidence is folded into a single
  integer key ``row * vocab_size + id``; both key arrays are already
  globally sorted, so a binary-search membership plus a bincount of the
  matched rows recovers per-pair counts without any re-sort;
* the measure kernels reproduce the scalar formulas of
  :mod:`repro.text.similarity` **bit for bit** (same operand order, same
  empty-set conventions), so the vectorized path is provably
  interchangeable with the per-pair oracle — enforced by the parity
  tests in ``tests/matchers/test_feature_parity.py``.

Every batch increments the ``kernel.*`` metrics (``kernel.batches``,
``kernel.pairs``, the ``kernel.seconds`` timer); callers that memoize
results must therefore memoize *above* this module so the counters track
physical work identically for any worker count.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass

import numpy as np

try:  # scipy is a declared dependency, but stay importable without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via the fallback path
    _sparse = None

from repro import obs

#: Version of the kernel semantics; folded into every content-addressed
#: feature-cache key so changing a formula invalidates cached matrices.
KERNEL_VERSION = 1

#: Canonical order of the set-measure trio used by the ESDE extractors
#: ("cs", "ds", "js") and, with overlap appended, by Magellan.
SET_MEASURES: tuple[str, ...] = ("cosine", "dice", "jaccard")


class TokenInterner:
    """Dense integer ids for feature keys, assigned on first sight.

    Keys are any hashables: token views intern the token strings
    themselves, and q-gram views that overflowed their
    :class:`QGramCodec` intern gram strings as the always-correct
    fallback.
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[object, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, feature) -> int:
        """The id of *feature*, allocating the next dense id if new."""
        ids = self._ids
        index = ids.get(feature)
        if index is None:
            index = len(ids)
            ids[feature] = index
        return index

    def encode_set(self, features: Set) -> np.ndarray:
        """One record's feature set as a sorted int64 id array."""
        row = np.fromiter(
            (self.intern(feature) for feature in features),
            dtype=np.int64,
            count=len(features),
        )
        row.sort()
        return row


@dataclass(frozen=True)
class PackedRows:
    """CSR-style incidence: row ``i`` is ``ids[indptr[i]:indptr[i+1]]``.

    Rows hold sorted, duplicate-free feature ids (one row per record of
    one side of a pair batch).
    """

    indptr: np.ndarray  # (n_rows + 1,) int64
    ids: np.ndarray  # (nnz,) int64

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1

    def sizes(self) -> np.ndarray:
        """Set cardinality per row, as int64."""
        return np.diff(self.indptr)

    def row(self, index: int) -> np.ndarray:
        return self.ids[self.indptr[index] : self.indptr[index + 1]]

    def pair_keys(self, vocab_size: int) -> np.ndarray:
        """Each (row, id) incidence folded into ``row * vocab_size + id``.

        Within one batch the keys are unique (rows are sets), so two
        sides can be intersected with ``assume_unique=True``.
        """
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64) * vocab_size, self.sizes()
        )
        return rows + self.ids


def pack_rows(rows: Sequence[np.ndarray]) -> PackedRows:
    """Stack per-record sorted id arrays into one :class:`PackedRows`."""
    sizes = np.fromiter(
        (len(row) for row in rows), dtype=np.int64, count=len(rows)
    )
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    ids = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    return PackedRows(indptr=indptr, ids=ids)


_EMPTY_ROW = np.empty(0, dtype=np.int64)


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values via sort + neighbor mask.

    ``np.unique`` without ``return_inverse`` takes a hash-based path that
    is several times slower than a plain sort for the int64 arrays of
    this module; this helper stays on the sort path.
    """
    if len(values) == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


class QGramAlphabetOverflow(RuntimeError):
    """A text plane's alphabet outgrew a codec's per-character bit budget."""


class CharTable:
    """Dense integer ids (from 1) for Unicode code points, grown on sight.

    One table per text plane (one attribute, or the schema-agnostic full
    text), shared by every q-gram length over that plane, so a record's
    characters are mapped exactly once. Ids start at 1: id 0 is the
    implicit zero-padding of short-string codes in :class:`QGramCodec`,
    which keeps them distinct from every full-width q-gram code.
    """

    __slots__ = ("_chars", "_ids")

    def __init__(self) -> None:
        self._chars = np.empty(0, dtype=np.uint32)  # sorted code points
        self._ids = np.empty(0, dtype=np.int64)  # dense id per sorted char

    def __len__(self) -> int:
        return len(self._chars)

    def map(self, codepoints: np.ndarray) -> np.ndarray:
        """Dense int64 id per code point, interning unseen characters."""
        if len(codepoints) == 0:
            return _EMPTY_ROW
        table = self._chars
        if len(table):
            positions = np.searchsorted(table, codepoints)
            positions[positions == len(table)] = 0
            missing = table[positions] != codepoints
        else:
            missing = np.ones(len(codepoints), dtype=bool)
        if missing.any():
            new_chars = _sorted_unique(codepoints[missing])
            new_ids = np.arange(
                len(self._chars) + 1,
                len(self._chars) + 1 + len(new_chars),
                dtype=np.int64,
            )
            merged_chars = np.concatenate([self._chars, new_chars])
            merged_ids = np.concatenate([self._ids, new_ids])
            order = np.argsort(merged_chars, kind="stable")
            self._chars = merged_chars[order]
            self._ids = merged_ids[order]
            positions = np.searchsorted(self._chars, codepoints)
        return self._ids[positions]


class QGramCodec:
    """Stable, injective int64 codes for the q-grams of one text plane.

    A q-gram's code packs its q character ids (from a shared
    :class:`CharTable`) at ``bits = 63 // q`` bits each, so the code is
    *content-derived*: the same gram always yields the same code, across
    batches and record orders, without a per-gram vocabulary — the
    Python-level interning that otherwise costs O(total windows) for
    large q, where nearly every window is unique. Short strings (the
    ``qgrams()`` whole-string convention) pack their ``< q`` ids the same
    way; their zero-padded high positions cannot collide with full grams
    because character ids start at 1.

    The packing is injective while the plane's alphabet fits the bit
    budget; :meth:`encode` raises :class:`QGramAlphabetOverflow` once it
    does not (e.g. ideographic text under large q), and the caller falls
    back to dict interning for that view.
    """

    __slots__ = ("q", "bits", "chars")

    def __init__(self, q: int, chars: CharTable) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.bits = max(63 // q, 1)
        self.chars = chars

    @property
    def capacity(self) -> int:
        """Distinct characters the bit budget can hold (id 0 is reserved)."""
        return (1 << self.bits) - 1

    def encode(self, char_rows: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Raw window codes per row of character ids, in window order.

        Codes for all rows are built by q shifted gathers over the
        concatenated batch. Rows are **not** deduplicated or sorted here
        — codes are content-derived, so :func:`densify_csr` dedups every
        row in the same pass that maps codes to dense ranks, saving a
        full sort per batch.
        """
        if len(self.chars) > self.capacity:
            raise QGramAlphabetOverflow(
                f"{len(self.chars)} distinct characters exceed the "
                f"{self.capacity}-character budget of q={self.q}"
            )
        q, bits = self.q, self.bits
        n = len(char_rows)
        rows: list[np.ndarray] = [_EMPTY_ROW] * n
        if n == 0:
            return rows
        lengths = np.fromiter(
            (len(row) for row in char_rows), dtype=np.int64, count=n
        )
        if not lengths.any():
            return rows
        flat = np.concatenate(char_rows)
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])

        # Short rows (< q chars): one zero-padded code each, built by L
        # shifted gathers per distinct length L — a handful of rows.
        short_index = np.flatnonzero((lengths > 0) & (lengths < q))
        if len(short_index):
            for length in np.unique(lengths[short_index]).tolist():
                group = short_index[lengths[short_index] == length]
                codes = np.zeros(len(group), dtype=np.int64)
                for position in range(length):
                    codes = (codes << bits) | flat[offsets[group] + position]
                for where, index in enumerate(group.tolist()):
                    rows[index] = codes[where : where + 1]

        long_index = np.flatnonzero(lengths >= q)
        if not len(long_index):
            return rows
        window_counts = lengths[long_index] - q + 1  # all >= 1
        # Valid window starts stay inside their own row, so no separator
        # padding is needed: start = row offset + local window position.
        first = np.zeros(len(long_index) + 1, dtype=np.int64)
        np.cumsum(window_counts, out=first[1:])
        total = int(first[-1])
        local = np.arange(total, dtype=np.int64) - np.repeat(
            first[:-1], window_counts
        )
        starts = np.repeat(offsets[long_index], window_counts) + local
        codes = np.zeros(total, dtype=np.int64)
        for position in range(q):
            codes = (codes << bits) | flat[starts + position]

        bounds = first.tolist()
        for where, index in enumerate(long_index.tolist()):
            rows[index] = codes[bounds[where] : bounds[where + 1]]
        return rows


def densify_csr(
    rows: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, int]:
    """Dense-rank, per-row-deduplicated CSR from raw code rows.

    The codes of a :class:`QGramCodec` span the full int64 range, too
    wide for a ``row * vocab_size + id`` fold; one ``np.unique`` over
    all rows maps them to dense ranks. Input rows may repeat codes in
    any order (:meth:`QGramCodec.encode` emits raw windows); each output
    row is sorted and duplicate-free, deduplicated in the same pass via
    a ``row * vocab + rank`` key sort. Returns
    ``(indptr, ids, vocab_size)``.
    """
    empty_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    if not rows:
        return empty_indptr, _EMPTY_ROW, 0
    concatenated = np.concatenate(rows)
    if len(concatenated) == 0:
        return empty_indptr, concatenated, 0
    unique_codes, inverse = np.unique(concatenated, return_inverse=True)
    vocab_size = len(unique_codes)
    lengths = np.fromiter(
        (len(row) for row in rows), dtype=np.int64, count=len(rows)
    )
    row_of = np.repeat(np.arange(len(rows), dtype=np.int64), lengths)
    keys = _sorted_unique(row_of * vocab_size + inverse)
    key_rows = keys // vocab_size
    ids = keys - key_rows * vocab_size
    indptr = empty_indptr
    np.cumsum(np.bincount(key_rows, minlength=len(rows)), out=indptr[1:])
    return indptr, ids, vocab_size


def gather_csr(
    indptr: np.ndarray, ids: np.ndarray, rows: np.ndarray
) -> PackedRows:
    """Select *rows* of a CSR structure into :class:`PackedRows`.

    The pure-numpy CSR row gather: no per-row Python, so assembling the
    pair sides of a batch from per-record rows costs two array gathers
    even when thousands of pairs repeat the same records.
    """
    sizes = indptr[rows + 1] - indptr[rows]
    out_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(sizes, out=out_indptr[1:])
    total = int(out_indptr[-1])
    if total == 0:
        return PackedRows(indptr=out_indptr, ids=_EMPTY_ROW)
    take = np.repeat(indptr[rows], sizes) + (
        np.arange(total, dtype=np.int64) - np.repeat(out_indptr[:-1], sizes)
    )
    return PackedRows(indptr=out_indptr, ids=ids[take])


def batch_intersection_counts(
    left: PackedRows, right: PackedRows, vocab_size: int
) -> np.ndarray:
    """``|left[i] & right[i]|`` for every row pair, as int64.

    ``vocab_size`` must exceed every id in either side (the interner's
    ``len`` after encoding both sides). Both key arrays are globally
    sorted by construction (sorted rows, row-major fold), so membership
    is a binary search of the left keys in the right keys — no re-sort.
    """
    if left.n_rows != right.n_rows:
        raise ValueError(
            f"row count mismatch: {left.n_rows} vs {right.n_rows}"
        )
    n_pairs = left.n_rows
    if n_pairs == 0 or len(left.ids) == 0 or len(right.ids) == 0:
        return np.zeros(n_pairs, dtype=np.int64)
    left_keys = left.pair_keys(vocab_size)
    right_keys = right.pair_keys(vocab_size)
    positions = np.searchsorted(right_keys, left_keys)
    # Clamped probes cannot false-match: a left key beyond the right
    # maximum is strictly greater than right_keys[0].
    positions[positions == len(right_keys)] = 0
    matched = right_keys[positions] == left_keys
    row_of = np.repeat(np.arange(n_pairs, dtype=np.int64), left.sizes())
    return np.bincount(row_of[matched], minlength=n_pairs)


#: Signature value of an empty feature set: no hash can reach the uint64
#: maximum through the odd-multiplier family below, so empty rows never
#: spuriously collide with real minima.
EMPTY_SIGNATURE = np.uint64(0xFFFFFFFFFFFFFFFF)


def minhash_params(
    n_hashes: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(a, b)`` multiply-shift hash family for *n_hashes* functions.

    Deterministic in ``(n_hashes, seed)``; ``a`` is odd so every
    ``h_j(x) = (a_j * x + b_j) mod 2**64`` is a bijection on uint64.
    """
    if n_hashes < 1:
        raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 63, size=n_hashes, dtype=np.uint64) * np.uint64(
        2
    ) + np.uint64(1)
    b = rng.integers(0, 1 << 63, size=n_hashes, dtype=np.uint64)
    return a, b


def minhash_signatures(
    rows: Sequence[np.ndarray], n_hashes: int, seed: int = 0
) -> np.ndarray:
    """``(n_rows, n_hashes)`` uint64 minhash signatures over code rows.

    *rows* are int64 feature-code arrays — raw :class:`QGramCodec` window
    codes (duplicates and order are irrelevant to a minimum) or interned
    token ids. Two rows agree on one signature column with probability
    equal to their Jaccard similarity, which is what LSH banding
    (:mod:`repro.blocking.ann`) exploits. Empty rows get
    :data:`EMPTY_SIGNATURE` in every column, so they never become
    candidates. The whole batch is ``n_hashes`` vectorized passes over
    the concatenated codes — no per-row Python.
    """
    a, b = minhash_params(n_hashes, seed)
    n_rows = len(rows)
    signatures = np.full((n_rows, n_hashes), EMPTY_SIGNATURE, dtype=np.uint64)
    if n_rows == 0:
        return signatures
    sizes = np.fromiter(
        (len(row) for row in rows), dtype=np.int64, count=n_rows
    )
    if not sizes.any():
        return signatures
    flat = np.concatenate(rows).astype(np.uint64)
    offsets = np.zeros(n_rows, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    nonempty = np.flatnonzero(sizes > 0)
    # Segments of consecutive non-empty rows tile the flat array exactly
    # (empty rows contribute nothing), so one reduceat per hash yields
    # every row's minimum.
    starts = offsets[nonempty]
    with np.errstate(over="ignore"):
        for column in range(n_hashes):
            hashed = a[column] * flat + b[column]
            signatures[nonempty, column] = np.minimum.reduceat(hashed, starts)
    return signatures


def band_keys(signatures: np.ndarray, bands: int) -> np.ndarray:
    """``(n_rows, bands)`` uint64 bucket keys by FNV-folding band slices.

    The signature width must divide evenly into *bands* (``rows = width
    // bands`` minhash values per band). Two records land in the same
    bucket of band ``j`` exactly when their signatures agree on all of
    that band's rows (modulo the negligible 64-bit fold collision rate).
    """
    n_hashes = signatures.shape[1]
    if bands < 1 or n_hashes % bands:
        raise ValueError(
            f"bands must divide the signature width ({n_hashes}), got {bands}"
        )
    rows_per_band = n_hashes // bands
    folded = np.full(
        (len(signatures), bands), np.uint64(0xCBF29CE484222325), dtype=np.uint64
    )
    prime = np.uint64(0x100000001B3)
    with np.errstate(over="ignore"):
        for position in range(rows_per_band):
            folded = (
                folded ^ signatures[:, position::rows_per_band]
            ) * prime
    return folded


#: Vocabulary size up to which :class:`RecordIncidence` uses the dense
#: uint64 bitset (popcount) backend; above it, a sparse row merge wins.
BITSET_MAX_VOCAB = 4096

# -- resource-guard degradation hooks ---------------------------------------
#
# The guard's ladder (repro.runtime.guard) trades speed for memory under
# RSS pressure: capping the per-call pair batch bounds the temporaries of
# a kernel pass, and forcing the merge backend skips the O(rows x vocab)
# bitset/CSR incidence build. All backends are exact (bit-identical
# outputs), so degradation never changes results.

_BATCH_LIMIT: int | None = None
_BACKEND_PREFERENCE = "auto"


def set_batch_limit(limit: int | None) -> None:
    """Cap pairs per internal kernel pass (``None`` = unlimited)."""
    global _BATCH_LIMIT
    if limit is not None and limit < 1:
        raise ValueError(f"batch limit must be >= 1, got {limit}")
    _BATCH_LIMIT = limit


def batch_limit() -> int | None:
    return _BATCH_LIMIT


def set_backend_preference(preference: str) -> None:
    """``"auto"`` (fastest available) or ``"merge"`` (lowest memory)."""
    global _BACKEND_PREFERENCE
    if preference not in ("auto", "merge"):
        raise ValueError(
            f"backend preference must be 'auto' or 'merge', got {preference!r}"
        )
    _BACKEND_PREFERENCE = preference


def backend_preference() -> str:
    return _BACKEND_PREFERENCE


class RecordIncidence:
    """Record-by-vocabulary incidence for batched pair intersections.

    Built once per (view, record population) from a dense-id CSR; a
    batch of pairs is then just two row-index arrays, so intersection
    sizes come straight from the record rows without re-packing per
    pair. Three backends, fastest first:

    * a dense uint64 **bitset** with :func:`numpy.bitwise_count` for
      small vocabularies (``<=`` :data:`BITSET_MAX_VOCAB`);
    * a scipy CSR **elementwise multiply** (C-speed per-row merge) for
      large ones;
    * the :func:`batch_intersection_counts` binary-search merge when
      scipy is unavailable.

    All three produce exact int64 counts, so measure values are
    bit-identical regardless of backend.
    """

    __slots__ = ("indptr", "ids", "vocab_size", "row_sizes", "_bits", "_matrix")

    def __init__(
        self, indptr: np.ndarray, ids: np.ndarray, vocab_size: int
    ) -> None:
        self.indptr = indptr
        self.ids = ids
        self.vocab_size = vocab_size
        self.row_sizes = np.diff(indptr)
        self._bits: np.ndarray | None = None
        self._matrix = None
        n_rows = len(indptr) - 1
        if _BACKEND_PREFERENCE == "merge":
            # Degraded mode: skip the bitset/CSR builds (their dense
            # incidence is exactly the allocation memory pressure wants
            # gone); intersections() falls through to the exact merge.
            return
        if 0 < vocab_size <= BITSET_MAX_VOCAB:
            words = (vocab_size + 63) // 64
            bits = np.zeros((n_rows, words), dtype=np.uint64)
            if len(ids):
                rows_of = np.repeat(
                    np.arange(n_rows, dtype=np.int64), self.row_sizes
                )
                flat_index = rows_of * words + ids // 64
                masks = np.uint64(1) << (ids % 64).astype(np.uint64)
                # Rows are sorted, so flat_index is non-decreasing; OR
                # together the ids landing in the same (row, word) cell
                # (a plain fancy-index |= would drop duplicates).
                starts = np.ones(len(flat_index), dtype=bool)
                np.not_equal(flat_index[1:], flat_index[:-1], out=starts[1:])
                positions = np.flatnonzero(starts)
                bits.ravel()[flat_index[positions]] = np.bitwise_or.reduceat(
                    masks, positions
                )
            self._bits = bits
        elif _sparse is not None:
            self._matrix = _sparse.csr_matrix(
                (np.ones(len(ids), dtype=np.int64), ids, indptr),
                shape=(n_rows, max(vocab_size, 1)),
            )

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1

    def intersections(
        self, left_index: np.ndarray, right_index: np.ndarray
    ) -> np.ndarray:
        """``|row[left_index[i]] & row[right_index[i]]|`` per pair."""
        if len(left_index) == 0 or len(self.ids) == 0:
            return np.zeros(len(left_index), dtype=np.int64)
        if self._bits is not None:
            return np.bitwise_count(
                self._bits[left_index] & self._bits[right_index]
            ).sum(axis=1, dtype=np.int64)
        if self._matrix is not None:
            product = self._matrix[left_index].multiply(
                self._matrix[right_index]
            )
            return np.asarray(product.sum(axis=1)).ravel().astype(np.int64)
        left = gather_csr(self.indptr, self.ids, left_index)
        right = gather_csr(self.indptr, self.ids, right_index)
        return batch_intersection_counts(
            left, right, max(self.vocab_size, 1)
        )


# -- measure kernels ---------------------------------------------------------
#
# Each kernel mirrors its scalar twin in repro.text.similarity exactly:
# intersection and cardinalities are exact int64 (< 2**53, so their
# float64 conversions are exact), np.sqrt and math.sqrt are both
# correctly rounded, and the operand order of every expression matches
# the scalar source. Pairs failing the scalar guard clauses get 0.0
# through the mask, like the early returns.


def _cosine(inter: np.ndarray, size_a: np.ndarray, size_b: np.ndarray) -> np.ndarray:
    out = np.zeros(len(inter), dtype=np.float64)
    mask = (size_a > 0) & (size_b > 0)
    out[mask] = inter[mask] / np.sqrt(size_a[mask] * size_b[mask])
    return out


def _dice(inter: np.ndarray, size_a: np.ndarray, size_b: np.ndarray) -> np.ndarray:
    out = np.zeros(len(inter), dtype=np.float64)
    mask = (size_a > 0) & (size_b > 0)
    out[mask] = 2.0 * inter[mask] / (size_a[mask] + size_b[mask])
    return out


def _jaccard(inter: np.ndarray, size_a: np.ndarray, size_b: np.ndarray) -> np.ndarray:
    out = np.zeros(len(inter), dtype=np.float64)
    union = size_a + size_b - inter
    mask = union > 0
    out[mask] = inter[mask] / union[mask]
    return out


def _overlap(inter: np.ndarray, size_a: np.ndarray, size_b: np.ndarray) -> np.ndarray:
    out = np.zeros(len(inter), dtype=np.float64)
    mask = (size_a > 0) & (size_b > 0)
    out[mask] = inter[mask] / np.minimum(size_a[mask], size_b[mask])
    return out


_MEASURE_KERNELS = {
    "cosine": _cosine,
    "dice": _dice,
    "jaccard": _jaccard,
    "overlap": _overlap,
}


def _resolve_kernels(measures: Iterable[str]) -> list:
    kernels = []
    for name in measures:
        kernel = _MEASURE_KERNELS.get(name)
        if kernel is None:
            raise KeyError(
                f"unknown set measure {name!r}; known: "
                f"{sorted(_MEASURE_KERNELS)}"
            )
        kernels.append(kernel)
    return kernels


def set_similarity_matrix_packed(
    left: PackedRows,
    right: PackedRows,
    vocab_size: int,
    measures: Iterable[str] = SET_MEASURES,
) -> np.ndarray:
    """``(n_pairs, n_measures)`` similarity matrix from packed pair sides.

    The core of :func:`set_similarity_matrix`, taking pre-assembled
    :class:`PackedRows` (row ``i`` of each side is one pair); *measures*
    name columns from ``{"cosine", "dice", "jaccard", "overlap"}`` in
    output order. Emits the ``kernel.*`` metrics for exactly one batch.
    """
    kernels = _resolve_kernels(measures)

    started = time.perf_counter()
    inter = batch_intersection_counts(left, right, max(vocab_size, 1))
    size_left = left.sizes()
    size_right = right.sizes()
    matrix = np.empty((left.n_rows, len(kernels)), dtype=np.float64)
    for column, kernel in enumerate(kernels):
        matrix[:, column] = kernel(inter, size_left, size_right)
    elapsed = time.perf_counter() - started

    obs.inc("kernel.batches")
    obs.inc("kernel.pairs", float(left.n_rows))
    obs.observe("kernel.seconds", elapsed)
    return matrix


def set_similarity_matrix(
    left_rows: Sequence[np.ndarray],
    right_rows: Sequence[np.ndarray],
    vocab_size: int,
    measures: Iterable[str] = SET_MEASURES,
) -> np.ndarray:
    """``(n_pairs, n_measures)`` similarity matrix in one vectorized pass.

    *left_rows* / *right_rows* are per-pair sorted id arrays from one
    :class:`TokenInterner` of size *vocab_size*; *measures* name columns
    from ``{"cosine", "dice", "jaccard", "overlap"}`` in output order.
    """
    return set_similarity_matrix_packed(
        pack_rows(left_rows), pack_rows(right_rows), vocab_size, measures
    )


def set_similarity_matrix_indexed(
    incidence: RecordIncidence,
    left_index: np.ndarray,
    right_index: np.ndarray,
    measures: Iterable[str] = SET_MEASURES,
) -> np.ndarray:
    """Similarity matrix for pairs given as record-row index arrays.

    The hot entry point of the feature store: the per-record incidence
    is built once, and each batch costs only index gathers plus the
    backend's intersection pass. Emits the ``kernel.*`` metrics for
    exactly one batch, like :func:`set_similarity_matrix_packed`.
    """
    kernels = _resolve_kernels(measures)

    started = time.perf_counter()
    n_pairs = len(left_index)
    matrix = np.empty((n_pairs, len(kernels)), dtype=np.float64)
    # Under a guard-imposed batch limit the pass is chunked to bound the
    # intersection temporaries; rows are independent, so the output is
    # identical and the call still counts as one kernel batch.
    step = n_pairs if _BATCH_LIMIT is None else max(1, _BATCH_LIMIT)
    for begin in range(0, n_pairs, step) if n_pairs else ():
        end = min(begin + step, n_pairs)
        chunk_left = left_index[begin:end]
        chunk_right = right_index[begin:end]
        inter = incidence.intersections(chunk_left, chunk_right)
        size_left = incidence.row_sizes[chunk_left]
        size_right = incidence.row_sizes[chunk_right]
        for column, kernel in enumerate(kernels):
            matrix[begin:end, column] = kernel(inter, size_left, size_right)
    elapsed = time.perf_counter() - started

    obs.inc("kernel.batches")
    obs.inc("kernel.pairs", float(n_pairs))
    obs.observe("kernel.seconds", elapsed)
    return matrix


# -- append paths (repro.serve) ----------------------------------------------
#
# The batch structures above are built once per record population and
# rebuilt when it grows — the right trade for offline sweeps, the wrong
# one for a resident session that keeps absorbing records. The two
# classes below are their append-only counterparts: a growable code
# interner and an incidence that extends per record batch, both feeding
# the exact merge kernels so results stay bit-identical to a rebuild.


class CodeTable:
    """Dense integer ids (from 0) for arbitrary int64 codes, grown on sight.

    The :class:`CharTable` idiom generalized to the full code space of a
    :class:`QGramCodec` (or any interner's ids): codes map to dense ids
    in first-sight order, and interning more codes never changes an id
    already assigned — the append invariant every incremental index
    builds on. Set intersections are id-scheme-invariant, so similarity
    results are bit-identical to a sorted-rank (``np.unique``) mapping.
    """

    __slots__ = ("_codes", "_ids")

    def __init__(self) -> None:
        self._codes = np.empty(0, dtype=np.int64)  # sorted known codes
        self._ids = np.empty(0, dtype=np.int64)  # dense id per sorted code

    def __len__(self) -> int:
        return len(self._codes)

    def intern(self, codes: np.ndarray) -> np.ndarray:
        """Dense int64 id per code, interning unseen codes in sorted order."""
        if len(codes) == 0:
            return _EMPTY_ROW
        codes = np.asarray(codes, dtype=np.int64)
        table = self._codes
        if len(table):
            positions = np.searchsorted(table, codes)
            positions[positions == len(table)] = 0
            missing = table[positions] != codes
        else:
            missing = np.ones(len(codes), dtype=bool)
        if missing.any():
            new_codes = _sorted_unique(codes[missing])
            new_ids = np.arange(
                len(self._codes),
                len(self._codes) + len(new_codes),
                dtype=np.int64,
            )
            merged_codes = np.concatenate([self._codes, new_codes])
            merged_ids = np.concatenate([self._ids, new_ids])
            order = np.argsort(merged_codes, kind="stable")
            self._codes = merged_codes[order]
            self._ids = merged_ids[order]
            positions = np.searchsorted(self._codes, codes)
        return self._ids[positions]

    def lookup(self, codes: np.ndarray) -> np.ndarray:
        """Ids of the codes already interned (unseen codes are dropped)."""
        if len(codes) == 0 or len(self._codes) == 0:
            return _EMPTY_ROW
        codes = np.asarray(codes, dtype=np.int64)
        positions = np.searchsorted(self._codes, codes)
        positions[positions == len(self._codes)] = 0
        present = self._codes[positions] == codes
        return self._ids[positions[present]]


class IncrementalIncidence:
    """Append-only record incidence: grows per batch, never rebuilds.

    The serving-path counterpart of :class:`RecordIncidence`: raw code
    rows append through a :class:`CodeTable` (deduplicated, sorted) into
    CSR arrays with amortized-doubling growth, and intersections always
    run the exact binary-search merge — the one backend whose buffers
    extend in place (bitset words and CSR shapes would change with the
    vocabulary). All backends are exact int64, so measure values are
    bit-identical to a :class:`RecordIncidence` over the same rows.

    Duck-type compatible with :func:`set_similarity_matrix_indexed`
    (``intersections`` + ``row_sizes``).
    """

    __slots__ = ("_table", "_indptr", "_ids", "_n_rows", "appends")

    def __init__(self) -> None:
        self._table = CodeTable()
        self._indptr = np.zeros(1, dtype=np.int64)
        self._ids = np.empty(64, dtype=np.int64)
        self._n_rows = 0
        #: Row-append count (observability: a rebuild would reset it).
        self.appends = 0

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def vocab_size(self) -> int:
        return len(self._table)

    @property
    def row_sizes(self) -> np.ndarray:
        return np.diff(self._indptr[: self._n_rows + 1])

    def _reserve(self, extra_rows: int, extra_ids: int) -> None:
        needed = self._n_rows + 1 + extra_rows
        if needed > len(self._indptr):
            grown = np.empty(max(needed, 2 * len(self._indptr)), dtype=np.int64)
            grown[: self._n_rows + 1] = self._indptr[: self._n_rows + 1]
            self._indptr = grown
        fill = int(self._indptr[self._n_rows])
        if fill + extra_ids > len(self._ids):
            grown = np.empty(
                max(fill + extra_ids, 2 * len(self._ids)), dtype=np.int64
            )
            grown[:fill] = self._ids[:fill]
            self._ids = grown

    def append_rows(self, raw_rows: Sequence[np.ndarray]) -> None:
        """Append one batch of raw code rows (duplicates allowed, any order)."""
        rows = [
            np.unique(self._table.intern(np.unique(raw))) for raw in raw_rows
        ]
        self._reserve(len(rows), int(sum(len(row) for row in rows)))
        for row in rows:
            fill = int(self._indptr[self._n_rows])
            self._ids[fill : fill + len(row)] = row
            self._n_rows += 1
            self._indptr[self._n_rows] = fill + len(row)
            self.appends += 1

    def intersections(
        self, left_index: np.ndarray, right_index: np.ndarray
    ) -> np.ndarray:
        """``|row[left_index[i]] & row[right_index[i]]|`` per pair."""
        if len(left_index) == 0 or self._indptr[self._n_rows] == 0:
            return np.zeros(len(left_index), dtype=np.int64)
        indptr = self._indptr[: self._n_rows + 1]
        ids = self._ids[: int(indptr[-1])]
        left = gather_csr(indptr, ids, np.asarray(left_index, dtype=np.int64))
        right = gather_csr(indptr, ids, np.asarray(right_index, dtype=np.int64))
        return batch_intersection_counts(
            left, right, max(len(self._table), 1)
        )
