"""Lexical substrate: tokenization, string similarities and TF-IDF weighting.

This package provides the schema-agnostic text machinery that the paper's
difficulty measures (Section III) and linear matchers (Section IV-C) are built
on: whitespace tokenization, character q-grams, optional cleaning (stop-word
removal plus stemming, as used by the DeepBlocker tuner in Section VI), token
set similarities (cosine, Jaccard, Dice, overlap) and the classic edit-based
measures used by Magellan-style feature extraction (Levenshtein, Jaro,
Jaro-Winkler, Monge-Elkan).
"""

from repro.text.feature_store import (
    FeatureMatrixCache,
    FeatureStore,
    active_feature_cache,
    feature_cache_scope,
    set_feature_cache,
    store_for_task,
)
from repro.text.kernels import (
    BITSET_MAX_VOCAB,
    KERNEL_VERSION,
    SET_MEASURES,
    CharTable,
    PackedRows,
    QGramAlphabetOverflow,
    QGramCodec,
    RecordIncidence,
    EMPTY_SIGNATURE,
    TokenInterner,
    band_keys,
    batch_intersection_counts,
    densify_csr,
    gather_csr,
    minhash_params,
    minhash_signatures,
    pack_rows,
    set_similarity_matrix,
    set_similarity_matrix_indexed,
    set_similarity_matrix_packed,
)
from repro.text.tokenize import (
    STOPWORDS,
    clean_tokens,
    ngrams,
    qgrams,
    stem,
    tokenize,
)
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)
from repro.text.vectorize import TfIdfVectorizer, Vocabulary

__all__ = [
    "BITSET_MAX_VOCAB",
    "KERNEL_VERSION",
    "SET_MEASURES",
    "STOPWORDS",
    "CharTable",
    "EMPTY_SIGNATURE",
    "FeatureMatrixCache",
    "FeatureStore",
    "PackedRows",
    "QGramAlphabetOverflow",
    "QGramCodec",
    "RecordIncidence",
    "TfIdfVectorizer",
    "TokenInterner",
    "Vocabulary",
    "active_feature_cache",
    "band_keys",
    "batch_intersection_counts",
    "clean_tokens",
    "densify_csr",
    "feature_cache_scope",
    "gather_csr",
    "minhash_params",
    "minhash_signatures",
    "pack_rows",
    "set_feature_cache",
    "set_similarity_matrix",
    "set_similarity_matrix_indexed",
    "set_similarity_matrix_packed",
    "store_for_task",
    "cosine_similarity",
    "dice_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "ngrams",
    "numeric_similarity",
    "overlap_coefficient",
    "qgrams",
    "stem",
    "tokenize",
]
