"""Tokenization utilities used throughout the library.

Everything here is deterministic and pure: the same input string always yields
the same token sequence. Tokens are lower-cased, matching Algorithm 1 of the
paper, which "converts all tokens to lower-case" before computing similarity.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A compact English stop-word list. DeepBlocker's optional "cleaning" step
#: (Section VI) removes stop-words and stems the remainder; this list covers
#: the function words that occur in the synthetic vocabularies.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an and are as at be but by for from has have in into is it its of on or
    that the their then there these they this to was were will with
    """.split()
)

_SUFFIXES = (
    "ational", "iveness", "fulness", "ization",
    "ations", "ingly", "ments",
    "ation", "ings", "ment", "ness", "edly",
    "ies", "ing", "ed", "es", "ly", "s",
)


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-cased alphanumeric tokens.

    Punctuation acts as a separator; empty strings yield an empty list.

    >>> tokenize("Sony Cyber-shot DSC-W120")
    ['sony', 'cyber', 'shot', 'dsc', 'w120']
    """
    return _TOKEN_RE.findall(text.lower())


def stem(token: str) -> str:
    """Apply a light suffix-stripping stemmer to a single token.

    This is intentionally simpler than a full Porter stemmer: the synthetic
    vocabularies only inflect with common English suffixes, and the only
    requirement (from the DeepBlocker cleaning step) is that inflected
    variants of the same word map to the same stem.
    """
    if len(token) <= 3:
        return token
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    return token


def clean_tokens(tokens: Iterable[str]) -> list[str]:
    """Remove stop-words and stem the remaining tokens.

    Mirrors DeepBlocker's optional cleaning hyperparameter: "stop-words are
    removed and stemming is applied to all words".
    """
    return [stem(token) for token in tokens if token not in STOPWORDS]


def qgrams(text: str, q: int) -> set[str]:
    """Return the set of character *q*-grams of *text* (lower-cased).

    Whitespace is collapsed to single spaces so that formatting differences do
    not create spurious grams. Strings shorter than *q* yield the whole
    string as a single gram (when non-empty), so that very short values still
    have a non-empty representation.

    >>> sorted(qgrams("abcd", 3))
    ['abc', 'bcd']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    normalized = " ".join(text.lower().split())
    if not normalized:
        return set()
    if len(normalized) < q:
        return {normalized}
    return {normalized[i : i + q] for i in range(len(normalized) - q + 1)}


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of token *n*-grams of a token sequence.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
