"""Vocabulary indexing and TF-IDF weighting.

DITTO's heterogeneous summarization step keeps "only the tokens that do not
correspond to stop-words and have a high TF-IDF weight" (Section IV-A); the
sentence embedder pools token vectors with TF-IDF weights. Both are served by
:class:`TfIdfVectorizer`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np


class Vocabulary:
    """A bidirectional token <-> integer-id mapping built from a corpus."""

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._tokens: list[str] = []

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def add(self, token: str) -> int:
        """Add *token* if new; return its id."""
        token_id = self._token_to_id.get(token)
        if token_id is None:
            token_id = len(self._tokens)
            self._token_to_id[token] = token_id
            self._tokens.append(token)
        return token_id

    def id_of(self, token: str) -> int | None:
        """Return the id of *token*, or ``None`` if out of vocabulary."""
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> str:
        """Return the token with the given id (raises ``IndexError`` if bad)."""
        return self._tokens[token_id]

    def tokens(self) -> list[str]:
        """Return all tokens in id order (a copy)."""
        return list(self._tokens)


class TfIdfVectorizer:
    """TF-IDF weighting over tokenized documents.

    The vectorizer is fitted on an iterable of token sequences (documents) and
    afterwards provides per-token IDF weights, per-document TF-IDF weight
    maps, and a summarization helper that keeps the highest-weighted tokens —
    the mechanism DITTO uses to fit long records into a transformer window.
    """

    def __init__(self, smooth: bool = True) -> None:
        self.smooth = smooth
        self._idf: dict[str, float] = {}
        self._document_count = 0

    @property
    def fitted(self) -> bool:
        return self._document_count > 0

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfIdfVectorizer":
        """Compute IDF weights from *documents* (token sequences)."""
        document_frequency: dict[str, int] = {}
        count = 0
        for tokens in documents:
            count += 1
            for token in set(tokens):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        if count == 0:
            raise ValueError("cannot fit a TfIdfVectorizer on an empty corpus")
        self._document_count = count
        offset = 1 if self.smooth else 0
        self._idf = {
            token: math.log((count + offset) / (frequency + offset)) + 1.0
            for token, frequency in document_frequency.items()
        }
        return self

    def idf(self, token: str) -> float:
        """IDF of *token*; unseen tokens get the maximal (rarest) weight."""
        self._require_fitted()
        offset = 1 if self.smooth else 0
        default = math.log((self._document_count + offset) / offset) + 1.0 \
            if offset else math.log(self._document_count) + 1.0
        return self._idf.get(token, default)

    def weights(self, tokens: Sequence[str]) -> dict[str, float]:
        """Return the L2-normalized TF-IDF weight of each distinct token."""
        self._require_fitted()
        if not tokens:
            return {}
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        raw = {
            token: (count / len(tokens)) * self.idf(token)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(weight * weight for weight in raw.values()))
        if norm == 0:
            return dict.fromkeys(raw, 0.0)
        return {token: weight / norm for token, weight in raw.items()}

    def summarize(self, tokens: Sequence[str], max_tokens: int) -> list[str]:
        """Keep the *max_tokens* highest-TF-IDF tokens, preserving order.

        Ties are broken by original position so the result is deterministic.
        """
        self._require_fitted()
        if max_tokens < 0:
            raise ValueError(f"max_tokens must be >= 0, got {max_tokens}")
        if len(tokens) <= max_tokens:
            return list(tokens)
        weights = self.weights(tokens)
        ranked = sorted(
            range(len(tokens)),
            key=lambda index: (-weights[tokens[index]], index),
        )
        keep = sorted(ranked[:max_tokens])
        return [tokens[index] for index in keep]

    def cosine(self, tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
        """TF-IDF-weighted cosine similarity between two token sequences."""
        weights_a = self.weights(tokens_a)
        weights_b = self.weights(tokens_b)
        if not weights_a or not weights_b:
            return 0.0
        if len(weights_b) < len(weights_a):
            weights_a, weights_b = weights_b, weights_a
        return float(
            np.clip(
                sum(
                    weight * weights_b.get(token, 0.0)
                    for token, weight in weights_a.items()
                ),
                0.0,
                1.0,
            )
        )

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("TfIdfVectorizer is not fitted; call fit() first")
