"""Process-pool scheduling: fan experiment units across workers.

A full regeneration is ~23 matchers x 21 datasets of independent,
CPU-bound units; this module fans them across ``workers`` processes while
keeping the results indistinguishable from a sequential run:

* **deterministic merge** — outcomes come back in submission order, never
  completion order, so downstream dict construction is order-stable;
* **same seeds** — a unit's behaviour depends only on its own
  ``(seed, unit_id)``-derived randomness, never on worker identity;
* **same fault-tolerance** — every unit runs under an
  :class:`~repro.runtime.policy.ExecutionPolicy` *inside the worker*
  (retries, backoff, deadlines), and failures come back as picklable
  :class:`~repro.runtime.policy.FailureRecord` data, exactly like the
  sequential path;
* **crash containment** — each unit runs in its own supervised child
  process; a worker that dies mid-unit (SIGKILL, OOM, segfault) becomes a
  ``WorkerCrash`` :class:`FailureRecord` for exactly that unit and the
  scheduler keeps draining the queue instead of hanging (the failure mode
  of ``multiprocessing.Pool``, whose ``imap`` never returns when a child
  is killed);
* **exact back-compat** — ``workers=1`` (the default everywhere) executes
  inline in the calling process: no pool, no pickling, no fork.

Children are started with the ``fork`` method so armed faults
(:mod:`repro.runtime.faults`) and memoized datasets are inherited. Where
``fork`` is unavailable (non-POSIX platforms) the scheduler silently
degrades to the sequential path rather than changing semantics.
Work-unit functions must be top-level (picklable) callables with
picklable arguments; closures cannot cross the process boundary.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Sequence

from repro import obs
from repro.runtime import faults, guard as guard_module
from repro.runtime.guard import HEARTBEAT_INTERVAL, Watchdog
from repro.runtime.policy import ExecutionOutcome, ExecutionPolicy, FailureRecord

logger = logging.getLogger("repro.runtime.parallel")

#: Start method used for worker processes; ``fork`` keeps armed faults and
#: in-process dataset memos visible to the children.
DEFAULT_START_METHOD = "fork"

#: Seconds the parent blocks on the result queue per supervision tick.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit: a picklable callable plus its identity.

    ``fn`` must be a module-level function (closures and bound methods do
    not survive pickling); ``unit_id``/``phase`` feed the
    :class:`FailureRecord` when the unit exhausts its policy.
    """

    unit_id: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    phase: str = "unit"


@dataclass(frozen=True)
class UnitReport:
    """Where and for how long one unit actually ran."""

    unit_id: str
    worker_pid: int
    elapsed_seconds: float
    ok: bool


@dataclass(frozen=True)
class WorkerReport:
    """Aggregate utilisation of one worker process across a schedule."""

    worker_pid: int
    units: int
    busy_seconds: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one :meth:`ParallelScheduler.run` call.

    ``outcomes`` is aligned with the submitted units (submission order,
    regardless of completion order), so ``zip(units, outcomes)`` is the
    canonical way to merge.
    """

    outcomes: tuple[ExecutionOutcome, ...]
    unit_reports: tuple[UnitReport, ...]
    elapsed_seconds: float
    workers: int

    def failures(self) -> list[FailureRecord]:
        """The failed units' records, in submission order."""
        return [
            outcome.failure
            for outcome in self.outcomes
            if outcome.failure is not None
        ]


def _execute_unit(
    payload: tuple[int, WorkUnit, ExecutionPolicy],
) -> tuple[int, ExecutionOutcome, int, float]:
    """Run one unit under its policy (inline path and worker children).

    The returned tuple (index, outcome, pid, elapsed) is what crosses
    back to the parent.
    """
    index, unit, policy = payload
    start = time.perf_counter()
    outcome = policy.execute(
        partial(unit.fn, *unit.args, **unit.kwargs),
        unit_id=unit.unit_id,
        phase=unit.phase,
    )
    return index, outcome, os.getpid(), time.perf_counter() - start


def _heartbeat_loop(fd: int, interval: float) -> None:
    """Worker-side heartbeat: one byte per interval until the pipe dies."""
    while True:
        try:
            os.write(fd, b"\x01")
        except OSError:
            return
        time.sleep(interval)


def _worker_main(
    result_queue: Any,
    payload: tuple[int, WorkUnit, ExecutionPolicy],
    heartbeat_fds: tuple[int, int] | None = None,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
    hang_seconds: float | None = None,
) -> None:
    """Child-process entry point: run one unit with observability capture.

    Resets the child's inherited span buffer and metrics so the export
    carries exactly this unit's spans and metric deltas, which the parent
    folds back into its own collector — the trace of a parallel run
    re-assembles into the same tree a sequential run would have produced.
    An exception outside the policy's ``retry_on`` allow-list is shipped
    back and re-raised in the parent, matching the sequential contract.

    ``hang_seconds`` simulates a worker wedged in native code (the
    ``guard:hang`` chaos site, consumed parent-side): the child stalls
    *before* its heartbeat thread starts, so both the deadline and the
    heartbeat-staleness detectors can see it.
    """
    if hang_seconds is not None:
        time.sleep(hang_seconds)
    if heartbeat_fds is not None:
        read_fd, write_fd = heartbeat_fds
        try:
            os.close(read_fd)  # the parent's end
        except OSError:
            pass
        threading.Thread(
            target=_heartbeat_loop,
            args=(write_fd, heartbeat_interval),
            daemon=True,
        ).start()
    handle = obs.active()
    handle.begin_worker_capture()
    try:
        index, outcome, pid, elapsed = _execute_unit(payload)
    except BaseException as exc:  # re-raised in the parent
        try:
            result_queue.put(("raise", payload[0], exc, os.getpid()))
        except Exception:
            result_queue.put(
                ("raise", payload[0], RuntimeError(repr(exc)), os.getpid())
            )
        return
    result_queue.put(
        ("ok", index, outcome, pid, elapsed, handle.export_worker_capture())
    )


class ParallelScheduler:
    """Fan work units across supervised processes with deterministic merging.

    ``workers=1`` (default) runs inline — bit-for-bit the sequential
    path. ``workers=N`` forks one supervised child per unit, at most N
    alive at a time, so a slow unit never holds a batch hostage and a
    *dead* one (SIGKILL, OOM) costs exactly its own unit. Per-unit and
    per-worker timing is accumulated across runs (see
    :meth:`worker_reports`) for the CLI's utilisation report.
    """

    def __init__(
        self,
        workers: int = 1,
        policy: ExecutionPolicy | None = None,
        start_method: str = DEFAULT_START_METHOD,
        watchdog: Watchdog | None = None,
        auto_degrade: bool = False,
        cpu_count: int | None = None,
    ) -> None:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise TypeError(
                f"workers must be an integer, got {type(workers).__name__}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy or ExecutionPolicy(
            max_attempts=1, backoff_base=0.0
        )
        self.start_method = start_method
        #: Optional hang/RSS supervision for pool workers (see
        #: :class:`repro.runtime.guard.Watchdog`).
        self.watchdog = watchdog
        #: When True, fall back to the sequential loop on boxes where
        #: forking cannot pay (single core, pathological fork overhead).
        self.auto_degrade = auto_degrade
        self._cpu_count = cpu_count
        self._unit_reports: list[UnitReport] = []

    # -- introspection -----------------------------------------------------

    @property
    def unit_reports(self) -> tuple[UnitReport, ...]:
        """Every unit executed through this scheduler so far."""
        return tuple(self._unit_reports)

    def worker_reports(self) -> list[WorkerReport]:
        """Per-worker utilisation aggregated over all runs so far."""
        by_pid: dict[int, list[UnitReport]] = {}
        for report in self._unit_reports:
            by_pid.setdefault(report.worker_pid, []).append(report)
        return [
            WorkerReport(
                worker_pid=pid,
                units=len(reports),
                busy_seconds=sum(r.elapsed_seconds for r in reports),
            )
            for pid, reports in sorted(by_pid.items())
        ]

    def reset_reports(self) -> None:
        """Drop accumulated timing (start a fresh measurement window)."""
        self._unit_reports.clear()

    # -- execution ---------------------------------------------------------

    def _effective_workers(self, n_units: int) -> int:
        if self.workers <= 1 or n_units <= 1:
            return 1
        if self.start_method not in multiprocessing.get_all_start_methods():
            logger.warning(
                "start method %r unavailable; running sequentially",
                self.start_method,
            )
            return 1
        if self.auto_degrade:
            reason = guard_module.degrade_reason(
                self.start_method, cpu_count=self._cpu_count
            )
            if reason is not None:
                logger.warning(
                    "degrading workers=%d to the sequential loop: %s",
                    self.workers, reason,
                )
                obs.inc("guard.workers_degraded")
                return 1
        return min(self.workers, n_units)

    def run(
        self,
        units: Sequence[WorkUnit],
        policy: ExecutionPolicy | None = None,
        on_result: Callable[[int, ExecutionOutcome], None] | None = None,
    ) -> ScheduleResult:
        """Execute *units* and return outcomes in submission order.

        *policy* overrides the scheduler's default for this run; it (and
        every unit) must be picklable when ``workers > 1``. Failures
        never raise — they come back inside the outcomes — but an
        exception outside the policy's ``retry_on`` allow-list propagates,
        matching the sequential contract of ``ExecutionPolicy.execute``. A
        worker that dies without reporting (killed, crashed interpreter)
        yields a ``WorkerCrash`` failure for its unit; the rest of the
        queue still drains.

        *on_result* is invoked in the parent as ``(index, outcome)`` the
        moment each unit's result arrives — completion order, not
        submission order — so callers can checkpoint finished work while
        the batch is still running (a kill then loses only in-flight
        units). The merged ``outcomes`` stay submission-ordered.
        """
        active_policy = policy if policy is not None else self.policy
        start = time.perf_counter()
        n_workers = self._effective_workers(len(units))
        payloads = [
            (index, unit, active_policy) for index, unit in enumerate(units)
        ]
        if n_workers == 1:
            # Inline path: spans/metrics are recorded directly into the
            # live collector, no capture round-trip needed.
            raw = []
            for payload in payloads:
                item = _execute_unit(payload)
                if on_result is not None:
                    on_result(item[0], item[1])
                raw.append(item)
        else:
            raw = self._run_supervised(
                units, payloads, n_workers, on_result
            )
        raw.sort(key=lambda item: item[0])
        outcomes = tuple(item[1] for item in raw)
        unit_reports = tuple(
            UnitReport(
                unit_id=units[index].unit_id,
                worker_pid=pid,
                elapsed_seconds=elapsed,
                ok=outcome.ok,
            )
            for index, outcome, pid, elapsed in raw
        )
        self._unit_reports.extend(unit_reports)
        return ScheduleResult(
            outcomes=outcomes,
            unit_reports=unit_reports,
            elapsed_seconds=time.perf_counter() - start,
            workers=n_workers,
        )

    def _run_supervised(
        self,
        units: Sequence[WorkUnit],
        payloads: list[tuple[int, WorkUnit, ExecutionPolicy]],
        n_workers: int,
        on_result: Callable[[int, ExecutionOutcome], None] | None,
    ) -> list[tuple[int, ExecutionOutcome, int, float]]:
        """Supervision loop: at most ``n_workers`` children, crash/hang-safe."""
        context = multiprocessing.get_context(self.start_method)
        result_queue = context.Queue()
        watchdog = self.watchdog
        pending = list(reversed(payloads))
        # pid -> (process, payload index, start time, heartbeat read fd).
        alive: dict[int, tuple[Any, int, float, int | None]] = {}
        received: set[int] = set()
        raw: list[tuple[int, ExecutionOutcome, int, float]] = []

        def deliver(
            index: int, outcome: ExecutionOutcome, pid: int, elapsed: float
        ) -> None:
            if index in received:
                # A condemned worker can post its real result in the same
                # tick the watchdog kills it; first delivery wins.
                return
            received.add(index)
            entry = alive.pop(pid, None)
            if entry is not None:
                entry[0].join()
                if entry[3] is not None:
                    try:
                        os.close(entry[3])
                    except OSError:
                        pass
            if watchdog is not None:
                watchdog.detach(pid)
                if outcome.ok:
                    watchdog.observe(units[index].phase, elapsed)
            if on_result is not None:
                on_result(index, outcome)
            raw.append((index, outcome, pid, elapsed))

        def teardown() -> None:
            for process, _, _, hb_fd in alive.values():
                process.terminate()
            for process, _, _, hb_fd in alive.values():
                process.join()
                if hb_fd is not None:
                    try:
                        os.close(hb_fd)
                    except OSError:
                        pass

        def drain(block: bool) -> bool:
            """Consume one queue item; returns True if one was handled."""
            try:
                item = result_queue.get(
                    timeout=_POLL_SECONDS if block else 0.0
                )
            except queue_module.Empty:
                return False
            if item[0] == "raise":
                _, index, exc, pid = item
                # Sequential contract: a non-retryable exception
                # propagates. Tear the remaining children down first.
                teardown()
                alive.clear()
                raise exc
            _, index, outcome, pid, elapsed, capture = item
            obs.active().ingest_worker_capture(capture)
            deliver(index, outcome, pid, elapsed)
            return True

        def pump_heartbeats() -> None:
            for pid, (_, _, _, hb_fd) in list(alive.items()):
                if hb_fd is None:
                    continue
                try:
                    while os.read(hb_fd, 4096):
                        watchdog.beat(pid)
                except BlockingIOError:
                    pass
                except OSError:
                    pass

        def enforce_watchdog() -> None:
            """Kill and report workers the watchdog has condemned."""
            for verdict in watchdog.verdicts():
                entry = alive.get(verdict.pid)
                if entry is None:
                    continue
                process, index, started, _ = entry
                process.kill()
                unit = units[index]
                if verdict.kind == "rss":
                    exception_type = "BudgetExceeded"
                    obs.inc("guard.worker_budget_kill")
                else:
                    exception_type = "WorkerHang"
                    obs.inc("guard.worker_hang")
                logger.warning(
                    "watchdog killed worker %d running %s: %s",
                    verdict.pid, unit.unit_id, verdict.detail,
                )
                outcome = ExecutionOutcome(
                    failure=FailureRecord(
                        unit_id=unit.unit_id,
                        phase=unit.phase,
                        attempts=1,
                        exception_type=exception_type,
                        message=(
                            f"worker process {verdict.pid} terminated by "
                            f"watchdog: {verdict.detail}"
                        ),
                        elapsed_seconds=verdict.elapsed,
                    )
                )
                deliver(index, outcome, verdict.pid, verdict.elapsed)

        try:
            while pending or alive:
                while pending and len(alive) < n_workers:
                    payload = pending.pop()
                    # Consumed parent-side so an armed ``times=N`` hang
                    # wedges exactly N workers (children inherit fault
                    # counters by value — see ``faults.pending``).
                    hang = faults.pending("guard:hang")
                    heartbeat_fds: tuple[int, int] | None = None
                    if watchdog is not None:
                        heartbeat_fds = os.pipe()
                        os.set_blocking(heartbeat_fds[0], False)
                    process = context.Process(
                        target=_worker_main,
                        args=(
                            result_queue,
                            payload,
                            heartbeat_fds,
                            HEARTBEAT_INTERVAL,
                            hang.hang_seconds if hang is not None else None,
                        ),
                        daemon=True,
                    )
                    process.start()
                    assert process.pid is not None
                    hb_read: int | None = None
                    if heartbeat_fds is not None:
                        hb_read = heartbeat_fds[0]
                        os.close(heartbeat_fds[1])  # the child's end
                    alive[process.pid] = (
                        process, payload[0], time.perf_counter(), hb_read,
                    )
                    if watchdog is not None:
                        unit = units[payload[0]]
                        watchdog.attach(process.pid, unit.unit_id, unit.phase)
                if watchdog is not None:
                    pump_heartbeats()
                    enforce_watchdog()
                if drain(block=True):
                    continue
                # Nothing arrived this tick: look for children that died
                # without reporting. Drain once more first — a child may
                # have posted its result in the instant before exiting.
                dead = [
                    pid
                    for pid, (process, _, _, _) in alive.items()
                    if not process.is_alive()
                ]
                if not dead:
                    continue
                while drain(block=False):
                    pass
                for pid in dead:
                    entry = alive.get(pid)
                    if entry is None:  # its result arrived in the drain
                        continue
                    process, index, started, _ = entry
                    process.join()
                    elapsed = time.perf_counter() - started
                    unit = units[index]
                    obs.inc("parallel.worker_crash")
                    logger.warning(
                        "worker %d died (exit code %s) while running %s",
                        pid, process.exitcode, unit.unit_id,
                    )
                    outcome = ExecutionOutcome(
                        failure=FailureRecord(
                            unit_id=unit.unit_id,
                            phase=unit.phase,
                            attempts=1,
                            exception_type="WorkerCrash",
                            message=(
                                f"worker process {pid} exited with code "
                                f"{process.exitcode} before returning a "
                                f"result"
                            ),
                            elapsed_seconds=elapsed,
                        )
                    )
                    deliver(index, outcome, pid, elapsed)
        finally:
            teardown()
            if watchdog is not None:
                for pid in list(alive):
                    watchdog.detach(pid)
            result_queue.close()
        return raw

    def __repr__(self) -> str:
        return (
            f"ParallelScheduler(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )
