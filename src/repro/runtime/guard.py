"""Resource-aware supervision: watchdogs, budgets, and run leases.

The retry/breaker/chaos layers (PR-1, PR-4) handle failures that *raise*.
Long sweeps die differently: a worker wedges in native code, the resident
set creeps past physical memory, the cache volume fills mid-envelope, or
a second run starts against the same cache directory. This module gives
the runner and scheduler the primitives to survive all four:

* :class:`AdaptiveDeadlineModel` — per-phase deadlines learned from prior
  unit durations (p99 × margin, clamped to a floor/ceiling), replacing a
  single fixed ``--timeout``. Deterministic: the deadline for a phase is
  a pure function of the observed-duration history.
* :class:`Watchdog` — parent-side bookkeeping for pool workers. Each
  worker streams heartbeat bytes over a pipe; the parent notices workers
  that stop beating or outlive their adaptive deadline (``WorkerHang``)
  or blow a per-worker RSS budget (``BudgetExceeded``), so the scheduler
  can kill and replace them instead of stalling forever.
* :class:`ResourceGuard` — in-process RSS + disk-space monitoring with a
  graceful-degradation ladder: shrink the kernel batch size, force the
  merge backend over the bitset, disable the feature cache, and only
  then shed the unit as :class:`BudgetExceeded`. Every step emits a
  ``guard.*`` metric and annotates the active trace span.
* :class:`RunLease` — an owner-pid/heartbeat lock file on the cache
  directory so two concurrent runs cannot interleave journal or cache
  writes. Stale leases (dead pid, silent heartbeat) are taken over;
  the doctor repairs orphaned ones.

Everything here is stdlib-only at import time; the degradation ladder
lazy-imports the text layer inside its actions, keeping
:mod:`repro.runtime` importable without numpy.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import socket
import time
import uuid
from dataclasses import dataclass, field
from math import ceil
from pathlib import Path
from typing import Callable, Iterable

from repro import obs
from repro.runtime import faults

#: Lock-file name inside a cache directory.
LEASE_NAME = "run.lease"

#: Heartbeats older than this (seconds) mark a lease or worker as stale.
DEFAULT_STALE_AFTER = 30.0

#: Default interval between worker heartbeat bytes (seconds).
HEARTBEAT_INTERVAL = 0.5


class BudgetExceeded(RuntimeError):
    """A resource budget (memory, disk) was exhausted after degradation.

    A :class:`RuntimeError` subclass so the runner's default
    ``MATCHER_ERRORS`` retry/record machinery treats it as unit data, not
    a crash.
    """


class DiskFull(RuntimeError):
    """An atomic write hit ``ENOSPC``/``EDQUOT``; the partial tmp is gone."""


class LeaseHeld(RuntimeError):
    """Another live run holds the cache-directory lease."""


def pid_alive(pid: int) -> bool:
    """Is ``pid`` a live process? (signal-0 probe; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def read_rss_mb(pid: int | None = None) -> float | None:
    """Resident-set size of ``pid`` (default: this process) in MiB.

    Reads ``/proc/<pid>/statm`` — Linux only; returns ``None`` elsewhere
    or for a vanished process, and callers must treat that as "unknown",
    never as zero.
    """
    target = os.getpid() if pid is None else pid
    try:
        fields = Path(f"/proc/{target}/statm").read_text().split()
        pages = int(fields[1])
    except (OSError, ValueError, IndexError):
        return None
    return pages * os.sysconf("SC_PAGESIZE") / (1024 * 1024)


def disk_free_mb(path: Path | str) -> float | None:
    """Free space on the filesystem holding ``path``, in MiB."""
    try:
        usage = shutil.disk_usage(str(path))
    except OSError:
        return None
    return usage.free / (1024 * 1024)


# ---------------------------------------------------------------------------
# Adaptive deadlines
# ---------------------------------------------------------------------------


class AdaptiveDeadlineModel:
    """Per-key deadlines learned from observed durations.

    ``deadline_for(key)`` is p99(history) × ``margin``, clamped to
    ``[floor_seconds, ceiling_seconds]``. With fewer than ``min_samples``
    observations it falls back to ``fallback_seconds`` (``None`` = no
    deadline). The estimate is a pure function of the history — two runs
    observing the same durations in the same order compute identical
    deadlines, which keeps chaos replays deterministic.
    """

    def __init__(
        self,
        *,
        margin: float = 4.0,
        floor_seconds: float = 5.0,
        ceiling_seconds: float = 600.0,
        min_samples: int = 3,
        fallback_seconds: float | None = None,
        max_history: int = 256,
    ) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if floor_seconds < 0 or ceiling_seconds < floor_seconds:
            raise ValueError(
                f"need 0 <= floor <= ceiling, got {floor_seconds}/{ceiling_seconds}"
            )
        self.margin = margin
        self.floor_seconds = floor_seconds
        self.ceiling_seconds = ceiling_seconds
        self.min_samples = min_samples
        self.fallback_seconds = fallback_seconds
        self.max_history = max_history
        self._history: dict[str, list[float]] = {}

    def observe(self, key: str, seconds: float) -> None:
        """Record one healthy duration for ``key``."""
        if seconds < 0:
            return
        history = self._history.setdefault(key, [])
        history.append(seconds)
        if len(history) > self.max_history:
            del history[: len(history) - self.max_history]

    def samples(self, key: str) -> int:
        return len(self._history.get(key, ()))

    def deadline_for(self, key: str) -> float | None:
        """The current deadline for ``key`` (``None`` = unbounded)."""
        history = self._history.get(key)
        if not history or len(history) < self.min_samples:
            return self.fallback_seconds
        ordered = sorted(history)
        index = min(len(ordered) - 1, ceil(0.99 * len(ordered)) - 1)
        estimate = ordered[index] * self.margin
        return min(self.ceiling_seconds, max(self.floor_seconds, estimate))

    def learned_deadline_for(self, key: str) -> float | None:
        """Like :meth:`deadline_for` but never the fallback.

        For callers that must not punish healthy units before the model
        has seen real durations — e.g. the sequential matcher loop, where
        the watchdog's fallback hang deadline would be far too tight.
        """
        if self.samples(key) < self.min_samples:
            return None
        return self.deadline_for(key)

    def snapshot(self) -> dict[str, dict[str, float | int | None]]:
        """Per-key sample counts and current deadlines (diagnostics)."""
        return {
            key: {
                "samples": len(history),
                "deadline_seconds": self.deadline_for(key),
            }
            for key, history in sorted(self._history.items())
        }


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------


@dataclass
class _WatchedWorker:
    pid: int
    unit_id: str
    phase: str
    started: float
    last_beat: float
    deadline_seconds: float | None


@dataclass(frozen=True)
class WatchdogVerdict:
    """One supervision decision: this worker must be killed and replaced."""

    pid: int
    unit_id: str
    kind: str  # "deadline" | "heartbeat" | "rss"
    detail: str
    elapsed: float


class Watchdog:
    """Parent-side hang/RSS detection for pool workers.

    The scheduler ``attach``es each spawned worker, feeds heartbeat bytes
    through ``beat``, and asks for ``verdicts`` every poll tick. A worker
    earns a verdict when it outlives its adaptive deadline, goes silent
    past ``stale_after_seconds`` (wedged in native code — it cannot even
    run its heartbeat thread), or exceeds ``rss_budget_mb``. Healthy
    completions are fed back via ``observe`` so the deadline model
    tightens as the run progresses.
    """

    def __init__(
        self,
        *,
        deadlines: AdaptiveDeadlineModel | None = None,
        fallback_deadline_seconds: float | None = None,
        stale_after_seconds: float = DEFAULT_STALE_AFTER,
        rss_budget_mb: float | None = None,
        rss_fn: Callable[[int], float | None] = read_rss_mb,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadlines = deadlines or AdaptiveDeadlineModel(
            fallback_seconds=fallback_deadline_seconds
        )
        if fallback_deadline_seconds is not None:
            self.deadlines.fallback_seconds = fallback_deadline_seconds
        self.stale_after_seconds = stale_after_seconds
        self.rss_budget_mb = rss_budget_mb
        self._rss_fn = rss_fn
        self._clock = clock
        self._workers: dict[int, _WatchedWorker] = {}

    def attach(self, pid: int, unit_id: str, phase: str) -> None:
        now = self._clock()
        self._workers[pid] = _WatchedWorker(
            pid=pid,
            unit_id=unit_id,
            phase=phase,
            started=now,
            last_beat=now,
            deadline_seconds=self.deadlines.deadline_for(phase),
        )

    def detach(self, pid: int) -> None:
        self._workers.pop(pid, None)

    def beat(self, pid: int) -> None:
        worker = self._workers.get(pid)
        if worker is not None:
            worker.last_beat = self._clock()

    def observe(self, phase: str, seconds: float) -> None:
        """Feed one healthy unit duration into the deadline model."""
        self.deadlines.observe(phase, seconds)

    def watched(self) -> list[int]:
        return sorted(self._workers)

    def verdicts(self) -> list[WatchdogVerdict]:
        """Workers that must be terminated now, with the reason why."""
        now = self._clock()
        out: list[WatchdogVerdict] = []
        for worker in list(self._workers.values()):
            elapsed = now - worker.started
            deadline = worker.deadline_seconds
            if deadline is not None and elapsed > deadline:
                out.append(
                    WatchdogVerdict(
                        pid=worker.pid,
                        unit_id=worker.unit_id,
                        kind="deadline",
                        detail=(
                            f"exceeded adaptive deadline "
                            f"{deadline:.1f}s (elapsed {elapsed:.1f}s)"
                        ),
                        elapsed=elapsed,
                    )
                )
                continue
            if now - worker.last_beat > self.stale_after_seconds:
                out.append(
                    WatchdogVerdict(
                        pid=worker.pid,
                        unit_id=worker.unit_id,
                        kind="heartbeat",
                        detail=(
                            f"no heartbeat for {now - worker.last_beat:.1f}s "
                            f"(stale after {self.stale_after_seconds:.1f}s)"
                        ),
                        elapsed=elapsed,
                    )
                )
                continue
            if self.rss_budget_mb is not None:
                rss = self._rss_fn(worker.pid)
                if rss is not None and rss > self.rss_budget_mb:
                    out.append(
                        WatchdogVerdict(
                            pid=worker.pid,
                            unit_id=worker.unit_id,
                            kind="rss",
                            detail=(
                                f"worker RSS {rss:.0f} MiB over budget "
                                f"{self.rss_budget_mb:.0f} MiB"
                            ),
                            elapsed=elapsed,
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# Degradation ladder + resource guard
# ---------------------------------------------------------------------------


def _degrade_shrink_batch() -> None:
    from repro.text import kernels

    current = kernels.batch_limit()
    kernels.set_batch_limit(256 if current is None else max(32, current // 4))


def _degrade_force_merge_backend() -> None:
    from repro.text import kernels

    kernels.set_backend_preference("merge")


def _degrade_disable_feature_cache() -> None:
    from repro.text import feature_store

    feature_store.set_cache_disabled(True)


#: The graceful-degradation ladder, cheapest relief first. Each entry is
#: (name, action); actions mutate text-layer globals and are undone by
#: :func:`reset_global_degradations`.
_LADDER: tuple[tuple[str, Callable[[], None]], ...] = (
    ("shrink-kernel-batch", _degrade_shrink_batch),
    ("force-merge-backend", _degrade_force_merge_backend),
    ("disable-feature-cache", _degrade_disable_feature_cache),
)

#: Ladder index of the disk-relevant step (smaller batches / backend
#: choice do nothing for a full volume; only the cache writes do).
_DISK_STEP = 2


def reset_global_degradations() -> None:
    """Undo every ladder action (test/chaos hygiene).

    Imports lazily and tolerates an absent text layer so the runtime
    package stays usable standalone.
    """
    try:
        from repro.text import feature_store, kernels
    except Exception:  # pragma: no cover - text layer unavailable
        return
    kernels.set_batch_limit(None)
    kernels.set_backend_preference("auto")
    feature_store.set_cache_disabled(False)


class ResourceGuard:
    """In-process memory/disk budget enforcement with graceful degradation.

    The runner calls :meth:`checkpoint` between units (and matchers). When
    RSS exceeds ``memory_budget_mb`` the guard applies ONE ladder step per
    checkpoint — giving the allocator a unit's worth of time to benefit —
    and, once the ladder is exhausted, sheds the unit by raising
    :class:`BudgetExceeded`. Disk pressure skips straight to the only step
    that helps (disabling cache writes) before shedding. Real resource
    reads are rate-limited to ``min_check_interval`` seconds; the chaos
    sites ``guard:oom`` and ``io:enospc`` are probed on every call so
    injected pressure is deterministic.
    """

    def __init__(
        self,
        *,
        memory_budget_mb: float | None = None,
        disk_reserve_mb: float | None = None,
        cache_dir: Path | str | None = None,
        min_check_interval: float = 1.0,
        rss_fn: Callable[[], float | None] | None = None,
        disk_free_fn: Callable[[Path], float | None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.memory_budget_mb = memory_budget_mb
        self.disk_reserve_mb = disk_reserve_mb
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.min_check_interval = min_check_interval
        self._rss_fn = rss_fn or read_rss_mb
        self._disk_free_fn = disk_free_fn or disk_free_mb
        self._clock = clock
        self._last_check = float("-inf")
        self._level = 0
        self._applied: list[str] = []

    @property
    def enabled(self) -> bool:
        return self.memory_budget_mb is not None or (
            self.disk_reserve_mb is not None and self.cache_dir is not None
        )

    @property
    def degradation_level(self) -> int:
        return self._level

    @property
    def degradations(self) -> tuple[str, ...]:
        return tuple(self._applied)

    def preflight(self) -> list[str]:
        """Check budgets before any work; returns human-readable warnings."""
        warnings: list[str] = []
        if self.disk_reserve_mb is not None and self.cache_dir is not None:
            free = self._disk_free_fn(self.cache_dir)
            if free is not None:
                obs.gauge("guard.disk_free_mb", free)
                if free < self.disk_reserve_mb:
                    warnings.append(
                        f"cache volume has {free:.0f} MiB free, below the "
                        f"{self.disk_reserve_mb:.0f} MiB reserve; disabling "
                        f"the feature cache"
                    )
                    self._apply_step(_DISK_STEP, reason="disk-preflight")
        if self.memory_budget_mb is not None:
            rss = self._rss_fn()
            if rss is not None:
                obs.gauge("guard.rss_mb", rss)
                if rss > self.memory_budget_mb:
                    warnings.append(
                        f"RSS {rss:.0f} MiB already over the "
                        f"{self.memory_budget_mb:.0f} MiB budget at startup"
                    )
        return warnings

    def _apply_step(self, index: int, *, reason: str) -> str:
        """Apply ladder step ``index`` (and everything below it) once."""
        target = min(index + 1, len(_LADDER))
        applied = "none"
        while self._level < target:
            name, action = _LADDER[self._level]
            action()
            self._level += 1
            self._applied.append(name)
            applied = name
            obs.inc("guard.degradations")
            obs.gauge("guard.degrade_level", float(self._level))
            obs.annotate(guard_degraded=name, guard_reason=reason)
        return applied

    def _disk_pressure(self) -> tuple[bool, str]:
        if self.disk_reserve_mb is None or self.cache_dir is None:
            return False, ""
        free = self._disk_free_fn(self.cache_dir)
        if free is None:
            return False, ""
        obs.gauge("guard.disk_free_mb", free)
        if free < self.disk_reserve_mb:
            return True, (
                f"{free:.0f} MiB free below reserve {self.disk_reserve_mb:.0f} MiB"
            )
        return False, ""

    def checkpoint(self, unit_id: str = "") -> None:
        """Enforce budgets between units; raise ``BudgetExceeded`` to shed.

        One ladder step per pressured checkpoint. The injected chaos sites
        are probed every call; real ``/proc`` and ``statvfs`` reads only
        every ``min_check_interval`` seconds.
        """
        injected = faults.triggered("guard:oom")
        now = self._clock()
        due = now - self._last_check >= self.min_check_interval
        if not injected and not due:
            return
        memory_hit, memory_reason = False, ""
        disk_hit, disk_reason = False, ""
        if injected:
            memory_hit, memory_reason = True, "injected guard:oom"
        if due:
            self._last_check = now
            if not memory_hit and self.memory_budget_mb is not None:
                rss = self._rss_fn()
                if rss is not None:
                    obs.gauge("guard.rss_mb", rss)
                    if rss > self.memory_budget_mb:
                        memory_hit = True
                        memory_reason = (
                            f"RSS {rss:.0f} MiB over budget "
                            f"{self.memory_budget_mb:.0f} MiB"
                        )
            disk_hit, disk_reason = self._disk_pressure()
        if disk_hit:
            if self._level >= len(_LADDER):
                obs.inc("guard.units_shed")
                raise BudgetExceeded(
                    f"disk budget exhausted for {unit_id or 'unit'}: {disk_reason}"
                )
            step = self._apply_step(_DISK_STEP, reason=disk_reason)
            obs.annotate(guard_unit=unit_id)
            if step == "none" and self._level >= len(_LADDER):
                obs.inc("guard.units_shed")
                raise BudgetExceeded(
                    f"disk budget exhausted for {unit_id or 'unit'}: {disk_reason}"
                )
            return
        if memory_hit:
            if self._level >= len(_LADDER):
                obs.inc("guard.units_shed")
                raise BudgetExceeded(
                    f"memory budget exhausted for {unit_id or 'unit'}: "
                    f"{memory_reason}"
                )
            self._apply_step(self._level, reason=memory_reason)
            obs.annotate(guard_unit=unit_id)


# ---------------------------------------------------------------------------
# Run lease
# ---------------------------------------------------------------------------


class RunLease:
    """An owner-pid/heartbeat lock file guarding one cache directory.

    ``acquire`` creates ``run.lease`` with ``O_CREAT | O_EXCL``; a second
    runner polls until the holder releases, the lease goes stale (owner
    pid dead, or heartbeat silent past ``stale_after_seconds``), or its
    timeout expires (:class:`LeaseHeld`). Ownership is a random token per
    instance — not the pid — so two runners in one process contend
    correctly. Re-entrant within an instance (depth counter), because the
    runner leases both whole batches (``sweep_all``) and single units.
    """

    def __init__(
        self,
        cache_dir: Path | str,
        *,
        stale_after_seconds: float = DEFAULT_STALE_AFTER,
        poll_seconds: float = 0.05,
        heartbeat_interval: float = 2.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(cache_dir) / LEASE_NAME
        self.stale_after_seconds = stale_after_seconds
        self.poll_seconds = poll_seconds
        self.heartbeat_interval = heartbeat_interval
        self._clock = clock
        self.token = uuid.uuid4().hex
        self._depth = 0
        self._last_heartbeat = float("-inf")

    # -- payload helpers ---------------------------------------------------

    def _payload(self) -> dict[str, object]:
        now = self._clock()
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "token": self.token,
            "acquired_at": now,
            "heartbeat_at": now,
        }

    def read(self) -> dict[str, object] | None:
        """The current lease contents, or ``None`` if absent/unparseable."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return payload if isinstance(payload, dict) else None

    def _is_stale(self, payload: dict[str, object] | None) -> bool:
        """A lease nobody live is heartbeating (or garbage) is stale."""
        if payload is None:
            return True
        try:
            pid = int(payload["pid"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return True
        if not pid_alive(pid):
            return True
        try:
            beat = float(payload["heartbeat_at"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return True
        return self._clock() - beat > self.stale_after_seconds

    def _write(self) -> None:
        """Overwrite the lease with our payload (atomic tmp + replace)."""
        tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self._payload()), encoding="utf-8")
        os.replace(tmp, self.path)
        self._last_heartbeat = self._clock()

    def owned(self) -> bool:
        payload = self.read()
        return payload is not None and payload.get("token") == self.token

    # -- lifecycle ---------------------------------------------------------

    def acquire(self, timeout_seconds: float = 60.0) -> float:
        """Take the lease; returns seconds spent waiting (0.0 = uncontended).

        Waiting > 0 tells the caller another run may have produced the
        results meanwhile — re-check the cache before recomputing.
        """
        if self._depth > 0:
            self._depth += 1
            return 0.0
        start = self._clock()
        deadline = start + max(0.0, timeout_seconds)
        contended = False
        while True:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                contended = True
                payload = self.read()
                if payload is not None and payload.get("token") == self.token:
                    # Our own lease survived a crashy earlier acquire.
                    self._depth = 1
                    return self._clock() - start
                if self._is_stale(payload):
                    self._write()
                    confirmed = self.read()
                    if confirmed and confirmed.get("token") == self.token:
                        obs.inc("guard.lease_takeover")
                        self._depth = 1
                        return self._clock() - start
                    continue  # lost the takeover race; retry
                if self._clock() >= deadline:
                    holder = payload.get("pid", "?")
                    raise LeaseHeld(
                        f"cache lease {self.path} held by pid {holder}; "
                        f"gave up after {timeout_seconds:.1f}s"
                    )
                time.sleep(self.poll_seconds)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self._payload()))
            self._last_heartbeat = self._clock()
            obs.inc("guard.lease_acquired")
            self._depth = 1
            return (self._clock() - start) if contended else 0.0

    def refresh(self) -> None:
        """Heartbeat the lease (rate-limited); detect and handle theft.

        The chaos site ``lease:steal`` plants a competing (dead-owner)
        lease here so the reclaim path runs under campaigns. A *live*
        thief means split-brain — raise :class:`LeaseHeld` rather than
        fight over the file.
        """
        if self._depth <= 0:
            return
        if faults.pending("lease:steal") is not None:
            thief = {
                "pid": -1,
                "host": "chaos",
                "token": "stolen-" + uuid.uuid4().hex[:8],
                "acquired_at": self._clock(),
                "heartbeat_at": self._clock(),
            }
            tmp = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}s")
            tmp.write_text(json.dumps(thief), encoding="utf-8")
            os.replace(tmp, self.path)
        now = self._clock()
        payload = self.read()
        if payload is not None and payload.get("token") == self.token:
            if now - self._last_heartbeat >= self.heartbeat_interval:
                self._write()
            return
        # Foreign (or missing) lease while we believe we hold it.
        if self._is_stale(payload):
            self._write()
            obs.inc("guard.lease_reclaimed")
            return
        raise LeaseHeld(
            f"cache lease {self.path} was taken over by pid "
            f"{payload.get('pid', '?') if payload else '?'} while held"
        )

    def release(self) -> None:
        """Drop one level of re-entrancy; delete our lease file at depth 0."""
        if self._depth <= 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        payload = self.read()
        if payload is not None and payload.get("token") == self.token:
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "RunLease":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def audit_lease(path: Path | str, *, now: float | None = None) -> str | None:
    """Doctor-side lease triage; returns a finding detail or ``None``.

    Unparseable lease → orphaned; dead owner pid → orphaned; heartbeat
    silent past the default staleness window → stale. A lease owned by a
    live, recently-heartbeating pid is healthy (conservative: the doctor
    never deletes a live run's lease).
    """
    lease_path = Path(path)
    try:
        payload = json.loads(lease_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return "unparseable lease file"
    if not isinstance(payload, dict):
        return "unparseable lease file"
    try:
        pid = int(payload["pid"])
    except (KeyError, TypeError, ValueError):
        return "lease has no owner pid"
    if not pid_alive(pid):
        return f"owner pid {pid} is dead"
    try:
        beat = float(payload["heartbeat_at"])
    except (KeyError, TypeError, ValueError):
        return f"lease of pid {pid} has no heartbeat"
    current = time.time() if now is None else now
    if current - beat > DEFAULT_STALE_AFTER:
        return (
            f"owner pid {pid} alive but heartbeat silent for "
            f"{current - beat:.0f}s"
        )
    return None


# ---------------------------------------------------------------------------
# Worker auto-degrade
# ---------------------------------------------------------------------------

_FORK_OVERHEAD_CACHE: dict[str, float] = {}


def measure_fork_overhead(start_method: str = "fork") -> float:
    """Seconds to spawn + join one trivial child (cached per method).

    The probe is a single real fork/join; on a loaded single-core box it
    routinely costs more than a small work unit, which is exactly the
    regime where ``--workers`` should degrade to the sequential loop.
    """
    cached = _FORK_OVERHEAD_CACHE.get(start_method)
    if cached is not None:
        return cached
    import multiprocessing

    try:
        context = multiprocessing.get_context(start_method)
        began = time.perf_counter()
        process = context.Process(target=_noop)
        process.start()
        process.join(timeout=10.0)
        overhead = time.perf_counter() - began
        if process.exitcode is None:  # pragma: no cover - wedged probe
            process.kill()
            overhead = float("inf")
    except (ValueError, OSError):  # pragma: no cover - method unavailable
        overhead = float("inf")
    _FORK_OVERHEAD_CACHE[start_method] = overhead
    return overhead


def _noop() -> None:  # pragma: no cover - runs in the probe child
    return None


def reset_fork_overhead_cache() -> None:
    _FORK_OVERHEAD_CACHE.clear()


def degrade_reason(
    start_method: str = "fork",
    *,
    cpu_count: int | None = None,
    overhead_threshold_seconds: float = 0.5,
) -> str | None:
    """Why ``--workers N`` should fall back to the sequential loop.

    Returns ``None`` when parallelism is worth attempting. On a
    single-core box forking only adds overhead (the ROADMAP's 0.67×
    ``BENCH_parallel.json`` regression); with more cores, a measured
    fork+join slower than ``overhead_threshold_seconds`` still says the
    machine is too loaded for fan-out to pay.
    """
    cores = os.cpu_count() if cpu_count is None else cpu_count
    if cores is not None and cores <= 1:
        return f"cpu_count={cores} <= 1: forking cannot outrun the sequential loop"
    overhead = measure_fork_overhead(start_method)
    if overhead > overhead_threshold_seconds:
        return (
            f"fork+join overhead {overhead:.2f}s exceeds "
            f"{overhead_threshold_seconds:.2f}s threshold"
        )
    return None


__all__ = [
    "AdaptiveDeadlineModel",
    "BudgetExceeded",
    "DEFAULT_STALE_AFTER",
    "DiskFull",
    "HEARTBEAT_INTERVAL",
    "LEASE_NAME",
    "LeaseHeld",
    "ResourceGuard",
    "RunLease",
    "Watchdog",
    "WatchdogVerdict",
    "audit_lease",
    "degrade_reason",
    "disk_free_mb",
    "measure_fork_overhead",
    "pid_alive",
    "read_rss_mb",
    "reset_fork_overhead_cache",
    "reset_global_degradations",
]
