"""Circuit breakers: stop burning retries on a repeatedly failing unit.

A long campaign re-runs the same (matcher, dataset) units many times; a
unit that fails deterministically (bad checkpoint, degenerate split,
armed chaos fault) would otherwise cost its full retry/backoff budget on
every encounter and poison the sweep's wall clock. A
:class:`CircuitBreaker` watches consecutive failures per unit id and,
once ``failure_threshold`` is reached, *opens*: further executions
short-circuit to a structured failure without running the unit at all.
After ``cooldown_seconds`` the breaker moves to *half-open* and lets one
trial through — success closes it, failure re-opens it.

State transitions are surfaced as :mod:`repro.obs` counters
(``breaker.open`` / ``breaker.half_open`` / ``breaker.close`` /
``breaker.short_circuit``) so a sweep's report shows exactly how much
work the breakers saved. The registry is picklable (the lock is rebuilt
on unpickle) so an :class:`~repro.runtime.policy.ExecutionPolicy`
carrying one can cross the fork boundary; breaker state is per-process
and does not marshal back from workers.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import obs

#: The three breaker states, in the order they cycle.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Per-unit failure gate: closed -> open -> half-open -> closed."""

    def __init__(
        self,
        key: str,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.key = key
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.times_opened = 0
        self.short_circuits = 0

    def allow(self) -> bool:
        """May the unit run now? Open breakers admit one half-open trial."""
        if self.state == OPEN:
            assert self.opened_at is not None
            if self.clock() - self.opened_at >= self.cooldown_seconds:
                self.state = HALF_OPEN
                obs.inc("breaker.half_open")
                return True
            self.short_circuits += 1
            obs.inc("breaker.short_circuit")
            return False
        return True

    def record_success(self) -> None:
        if self.state != CLOSED:
            obs.inc("breaker.close")
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.times_opened += 1
                obs.inc("breaker.open")
            self.state = OPEN
            self.opened_at = self.clock()

    def to_dict(self) -> dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
            "short_circuits": self.short_circuits,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.key!r}, state={self.state!r}, "
            f"failures={self.consecutive_failures})"
        )


class BreakerRegistry:
    """Lazily-created breakers keyed by unit id, with shared settings."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker_for(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    key,
                    failure_threshold=self.failure_threshold,
                    cooldown_seconds=self.cooldown_seconds,
                    clock=self.clock,
                )
                self._breakers[key] = breaker
            return breaker

    def open_keys(self) -> list[str]:
        """Unit ids whose breakers are currently open (sorted)."""
        with self._lock:
            return sorted(
                key
                for key, breaker in self._breakers.items()
                if breaker.state == OPEN
            )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready per-unit breaker state (reports, snapshots)."""
        with self._lock:
            return {
                key: self._breakers[key].to_dict()
                for key in sorted(self._breakers)
            }

    def __len__(self) -> int:
        return len(self._breakers)

    # -- pickling (fork workers receive policies carrying a registry) ------

    def __getstate__(self) -> dict[str, object]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
