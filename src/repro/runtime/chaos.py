"""Chaos campaigns: prove that verdicts survive faults, kills and corruption.

The reproduction's central claim — benchmark verdicts are stable
properties of dataset difficulty — only holds operationally if a sweep
that crashes, is killed, or hits corrupted state resumes to the *same*
verdicts as a clean run. This module turns that property into an
executable assertion, three ways:

* :class:`ChaosCampaign` — runs a seeded schedule of randomized
  multi-site :class:`FaultPlan`\\ s (drawn from the experiment layer's
  fault sites, including the torn-write sites ``journal:append`` and
  ``cache:torn-write``) against real sweeps and diffs every plan's
  surviving state against a fault-free baseline: a non-degraded cell must
  score exactly what the baseline scored, a degraded cell must be marked
  degraded and carry a :class:`~repro.runtime.policy.FailureRecord`
  (never silently promoted to a real score), and measured practical
  verdicts must agree.
* :func:`check_crash_consistency` — SIGKILLs a child ``python -m repro``
  process at a fault-site-triggered point (the ``kill`` fault kind),
  resumes from journal + cache, and diffs the final sweep state against
  an uninterrupted control run.
* :func:`shrink_plan` — greedy delta-debugging: reduces a failing plan to
  a minimal reproducer by dropping faults one at a time while the
  predicate still fails.

Everything is seeded: the same ``(seed, n_plans, sites)`` generates the
same schedule, and each plan's faults use seeded pass probabilities, so a
campaign failure is replayable from its plan description alone.
"""

from __future__ import annotations

import math
import random
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro.runtime import faults
from repro.runtime import guard as guard_module
from repro.runtime.breaker import BreakerRegistry
from repro.runtime.policy import ExecutionPolicy

#: Default datasets for campaigns: two small established benchmarks.
DEFAULT_DATASETS = ("Ds5", "Ds7")

#: Default size factor for campaign sweeps (kept small — a campaign runs
#: dozens of them).
DEFAULT_SCALE = 0.3


@dataclass(frozen=True)
class PlannedFault:
    """One armed site of a fault plan."""

    site: str
    kind: str  # "error" | "corrupt" | "torn" | "kill"
    times: int | None = 1
    probability: float = 1.0

    def describe(self) -> str:
        times = "*" if self.times is None else str(self.times)
        text = f"{self.site}={self.kind}:{times}"
        if self.probability < 1.0:
            text += f"@p{self.probability:.2f}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults to arm for one campaign pass."""

    plan_id: int
    seed: int
    faults: tuple[PlannedFault, ...]
    #: Kill-resume plan: run a child process, SIGKILL it at ``kill_site``,
    #: then resume and check crash consistency instead of in-process diffs.
    kill_site: str | None = None

    def arm(self) -> None:
        for planned in self.faults:
            faults.arm(
                planned.site,
                planned.kind,
                times=planned.times,
                probability=planned.probability,
                seed=self.seed,
            )

    def describe(self) -> str:
        parts = [planned.describe() for planned in self.faults]
        if self.kill_site is not None:
            parts.append(f"{self.kill_site}=kill")
        body = ", ".join(parts) if parts else "no faults"
        return f"plan {self.plan_id} (seed {self.seed}): {body}"


@dataclass(frozen=True)
class PlanResult:
    """One executed plan: its divergences (empty = verdicts survived)."""

    plan: FaultPlan
    divergences: tuple[str, ...]
    degraded_cells: int
    failures_absorbed: int

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass(frozen=True)
class CampaignReport:
    """Everything a finished campaign asserts on."""

    seed: int
    datasets: tuple[str, ...]
    scale: float
    results: tuple[PlanResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def divergent(self) -> tuple[PlanResult, ...]:
        return tuple(result for result in self.results if not result.ok)

    def to_table(self) -> tuple[list[str], list[list[str]]]:
        """(headers, rows) for :func:`repro.experiments.report.render`."""
        headers = ["plan", "faults", "degraded", "absorbed", "verdicts"]
        rows = []
        for result in self.results:
            kind = "kill-resume" if result.plan.kill_site else "in-process"
            faults_text = ", ".join(
                planned.describe() for planned in result.plan.faults
            )
            if result.plan.kill_site:
                faults_text = ", ".join(
                    part
                    for part in (faults_text, f"{result.plan.kill_site}=kill")
                    if part
                )
            rows.append(
                [
                    f"{result.plan.plan_id} ({kind})",
                    faults_text or "-",
                    str(result.degraded_cells),
                    str(result.failures_absorbed),
                    "match" if result.ok else f"DIVERGED x{len(result.divergences)}",
                ]
            )
        return headers, rows


# -- plan generation -------------------------------------------------------


def default_site_pool(
    dataset_ids: Sequence[str],
    matcher_names: Sequence[str] = ("DITTO (15)", "ZeroER", "SA-ESDE"),
) -> tuple[PlannedFault, ...]:
    """The fault menu a campaign draws from, covering every site family."""
    pool: list[PlannedFault] = [
        PlannedFault("matcher:*", "error", times=2),
        PlannedFault("cache:read", "corrupt", times=None, probability=0.5),
        PlannedFault("cache:read", "error", times=1),
        PlannedFault("cache:write", "error", times=1),
        PlannedFault("cache:torn-write", "torn", times=1),
        PlannedFault("journal:append", "torn", times=1),
        PlannedFault("io:write", "error", times=1),
        # Supervision sites (PR-6): a wedged pool worker, simulated memory
        # pressure driving the degradation ladder, a full disk mid-envelope,
        # and a competing (dead-owner) lease planted on the cache dir.
        PlannedFault("guard:hang", "hang", times=1),
        PlannedFault("guard:oom", "error", times=2),
        PlannedFault("io:enospc", "error", times=1),
        PlannedFault("lease:steal", "error", times=1),
    ]
    for name in matcher_names:
        pool.append(PlannedFault(f"matcher:{name}", "error", times=None))
    for dataset_id in dataset_ids:
        pool.append(PlannedFault(f"sweep:{dataset_id}", "error", times=1))
        pool.append(PlannedFault(f"dataset:{dataset_id}", "error", times=1))
    return tuple(pool)


def default_kill_sites(dataset_ids: Sequence[str]) -> tuple[str, ...]:
    """Deterministic points at which kill-resume plans murder the child."""
    sites = ["journal:append", "cache:write", "matcher:*"]
    sites.extend(f"sweep:{dataset_id}" for dataset_id in dataset_ids)
    return tuple(sites)


def frontend_site_pool() -> tuple[PlannedFault, ...]:
    """The fault menu for socket front-end campaigns (PR-9).

    All bounded (``times=1``) error-kind faults: the front end's contract
    is that any of these degrades one connection or one request — never
    the daemon — so a scripted client retrying with backoff must converge
    to answers bit-identical to the fault-free baseline. Hang kinds are
    deliberately absent (they only stretch wall-clock; the deadline model
    covers them), and ``kill`` at ``frontend:batch`` is reserved for the
    subprocess crash-consistency path.
    """
    return (
        PlannedFault("frontend:accept", "error", times=1),
        PlannedFault("frontend:read", "error", times=1),
        PlannedFault("frontend:write", "error", times=1),
        PlannedFault("frontend:disconnect", "error", times=1),
        PlannedFault("frontend:batch", "error", times=1),
        PlannedFault("serve:request", "error", times=1),
    )


#: The one site where a kill plan murders a serving daemon: mid-coalesced
#: batch, where a crash is most entangled across clients.
FRONTEND_KILL_SITES = ("frontend:batch",)


def generate_frontend_plans(
    n_plans: int,
    seed: int,
    *,
    n_kill_plans: int = 0,
    max_faults_per_plan: int = 2,
) -> tuple[FaultPlan, ...]:
    """A seeded schedule over the socket front-end fault sites."""
    return generate_plans(
        n_plans,
        seed,
        frontend_site_pool(),
        kill_sites=FRONTEND_KILL_SITES if n_kill_plans else (),
        n_kill_plans=n_kill_plans,
        max_faults_per_plan=max_faults_per_plan,
    )


def generate_plans(
    n_plans: int,
    seed: int,
    site_pool: Sequence[PlannedFault],
    *,
    kill_sites: Sequence[str] = (),
    n_kill_plans: int = 0,
    max_faults_per_plan: int = 3,
) -> tuple[FaultPlan, ...]:
    """A seeded schedule of ``n_plans`` plans over ``site_pool``.

    The last ``n_kill_plans`` plans are kill-resume plans drawing their
    kill point from ``kill_sites``; the rest arm 1..``max_faults_per_plan``
    distinct-site faults each. Pure function of its arguments.
    """
    if n_kill_plans > n_plans:
        raise ValueError(
            f"n_kill_plans ({n_kill_plans}) cannot exceed n_plans ({n_plans})"
        )
    if n_kill_plans and not kill_sites:
        raise ValueError("kill plans requested but kill_sites is empty")
    rng = random.Random(seed)
    plans: list[FaultPlan] = []
    for plan_id in range(n_plans):
        plan_seed = rng.randrange(2**31)
        if plan_id >= n_plans - n_kill_plans:
            plans.append(
                FaultPlan(
                    plan_id=plan_id,
                    seed=plan_seed,
                    faults=(),
                    kill_site=rng.choice(list(kill_sites)),
                )
            )
            continue
        n_faults = rng.randint(1, max(1, max_faults_per_plan))
        chosen: dict[str, PlannedFault] = {}
        for planned in rng.sample(list(site_pool), k=min(n_faults, len(site_pool))):
            chosen.setdefault(planned.site, planned)
        plans.append(
            FaultPlan(
                plan_id=plan_id,
                seed=plan_seed,
                faults=tuple(chosen.values()),
            )
        )
    return tuple(plans)


# -- sweep state collection and diffing ------------------------------------


def collect_sweep_state(runner, dataset_ids: Sequence[str]) -> dict:
    """Diffable sweep state: cells + practical measures, no wall-clock.

    Thin wrapper over :func:`repro.experiments.snapshot.sweep_state`
    (imported lazily: runtime must stay importable without the
    experiments layer).
    """
    from repro.experiments.snapshot import sweep_state

    return sweep_state(runner, tuple(dataset_ids))


def diff_sweep_states(baseline: dict, observed: dict) -> list[str]:
    """Divergences of ``observed`` from ``baseline`` (empty = consistent).

    The contract enforced on every chaos plan:

    * a cell the observed run reports as *non-degraded* must score exactly
      the baseline's score — a degraded cell silently promoted to a real
      (zeroed or fabricated) score diverges here;
    * a degraded or missing cell is *surviving data loss*, not divergence;
    * when the observed run's practical measures are measured, NLB/LBM
      and the practical verdict must equal the baseline's.
    """
    divergences: list[str] = []
    for dataset_id, base in baseline["datasets"].items():
        seen = observed["datasets"].get(dataset_id)
        if seen is None:
            divergences.append(f"{dataset_id}: missing from observed state")
            continue
        for matcher, base_cell in base["results"].items():
            cell = seen["results"].get(matcher)
            if cell is None or cell["degraded"]:
                continue  # lost or degraded, visibly — not a divergence
            if base_cell["degraded"]:
                divergences.append(
                    f"{dataset_id}/{matcher}: degraded in baseline but "
                    f"scored {cell['f1']:.6f} under faults"
                )
                continue
            for measure in ("f1", "precision", "recall"):
                if cell[measure] != base_cell[measure]:
                    divergences.append(
                        f"{dataset_id}/{matcher}: {measure} "
                        f"{cell[measure]:.6f} != baseline "
                        f"{base_cell[measure]:.6f}"
                    )
        if seen["measured"] and base["measured"]:
            for measure in ("nlb", "lbm"):
                if not math.isclose(
                    seen[measure], base[measure], rel_tol=0, abs_tol=0
                ):
                    divergences.append(
                        f"{dataset_id}: {measure} {seen[measure]:.6f} != "
                        f"baseline {base[measure]:.6f}"
                    )
            if seen["practical_challenging"] != base["practical_challenging"]:
                divergences.append(
                    f"{dataset_id}: practical verdict "
                    f"{seen['practical_challenging']} != baseline "
                    f"{base['practical_challenging']}"
                )
    return divergences


def count_unexplained_degradations(state: dict, failures) -> int:
    """Degraded cells with no matching :class:`FailureRecord` (should be 0).

    Every degraded cell must be *explained* — either its own matcher
    failure record or a sweep/cache-level record for its dataset. A
    degraded cell with no record at all was silently degraded.
    """
    unit_ids = {record.unit_id for record in failures}
    unexplained = 0
    for dataset_id, entry in state["datasets"].items():
        dataset_units = {
            unit
            for unit in unit_ids
            if unit == f"sweep:{dataset_id}" or unit.startswith(f"{dataset_id}/")
        }
        for matcher, cell in entry["results"].items():
            if not cell["degraded"]:
                continue
            if (
                f"{dataset_id}/{matcher}" not in unit_ids
                and not dataset_units
            ):
                unexplained += 1
    return unexplained


# -- the campaign engine ---------------------------------------------------


@dataclass
class ChaosCampaign:
    """Seeded schedule of fault plans asserted against a clean baseline.

    ``run()`` computes the fault-free baseline once (fresh cache
    directory, no faults armed), then executes every plan with its faults
    armed in an isolated cache directory and records divergences.
    Kill-resume plans delegate to :func:`check_crash_consistency` and run
    real child processes. ``breaker_threshold`` arms circuit breakers on
    the plan policies, so a matcher that fails on every pass
    short-circuits instead of burning retries across the whole campaign.
    """

    datasets: tuple[str, ...] = DEFAULT_DATASETS
    scale: float = DEFAULT_SCALE
    seed: int = 0
    n_plans: int = 20
    n_kill_plans: int = 2
    max_faults_per_plan: int = 3
    retries: int = 2
    breaker_threshold: int | None = 5
    workdir: Path | None = None
    site_pool: tuple[PlannedFault, ...] = ()
    _owns_workdir: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.datasets = tuple(self.datasets)
        if not self.site_pool:
            self.site_pool = default_site_pool(self.datasets)
        if self.workdir is None:
            self.workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
            self._owns_workdir = True
        else:
            self.workdir = Path(self.workdir)
            self.workdir.mkdir(parents=True, exist_ok=True)

    # -- internals ---------------------------------------------------------

    def _policy(self) -> ExecutionPolicy:
        from repro.experiments.matcher_suite import MATCHER_ERRORS

        breakers = (
            BreakerRegistry(failure_threshold=self.breaker_threshold)
            if self.breaker_threshold is not None
            else None
        )
        return ExecutionPolicy(
            max_attempts=self.retries,
            backoff_base=0.0,
            seed=self.seed,
            retry_on=MATCHER_ERRORS,
            breakers=breakers,
        )

    def _sweep_state(self, cache_dir: Path, options: dict | None = None):
        """One sweep of the campaign datasets; (state, n_failures, runner)."""
        from repro.experiments.runner import ExperimentRunner, RunnerConfig

        runner = ExperimentRunner(
            config=RunnerConfig(
                scale=self.scale,
                seed=self.seed,
                cache_dir=cache_dir,
                policy=self._policy(),
                **(options or {}),
            )
        )
        state = collect_sweep_state(runner, self.datasets)
        return state, len(runner.failure_records()), runner

    @staticmethod
    def _plan_runner_options(plan: FaultPlan) -> dict:
        """Extra runner knobs a plan's fault sites need to be reachable.

        ``guard:hang`` only bites when units fan across real pool workers
        under a heartbeat watchdog, so those plans run with two workers
        and a fallback hang deadline. ``guard:oom`` needs an armed
        :class:`~repro.runtime.guard.ResourceGuard`; the absurd budget
        keeps *real* RSS out of the picture so only the injected probe
        drives the degradation ladder.
        """
        sites = {planned.site for planned in plan.faults}
        options: dict = {}
        if "guard:hang" in sites:
            options.update(workers=2, hang_deadline_seconds=10.0)
        if "guard:oom" in sites:
            options.update(memory_budget_mb=1_000_000.0)
        return options

    def baseline(self) -> dict:
        """The fault-free reference state (computed once, then reused)."""
        if getattr(self, "_baseline", None) is None:
            faults.reset()
            with obs.span("chaos.baseline", datasets=",".join(self.datasets)):
                state, _, _ = self._sweep_state(self.workdir / "baseline")
            self._baseline = state
        return self._baseline

    def run_plan(self, plan: FaultPlan) -> PlanResult:
        """Execute one plan against a fresh cache dir and diff the state."""
        baseline = self.baseline()
        plan_dir = self.workdir / f"plan_{plan.plan_id:03d}"
        if plan.kill_site is not None:
            check = check_crash_consistency(
                datasets=self.datasets,
                scale=self.scale,
                seed=self.seed,
                kill_site=plan.kill_site,
                workdir=plan_dir,
            )
            obs.inc("chaos.plans")
            return PlanResult(
                plan=plan,
                divergences=tuple(check.divergences),
                degraded_cells=0,
                failures_absorbed=0,
            )
        faults.reset()
        plan.arm()
        options = self._plan_runner_options(plan)
        try:
            with obs.span("chaos.plan", plan=plan.plan_id):
                # Two passes over the same cache dir while the faults stay
                # armed: the first exercises the write paths (including
                # torn writes), the second the read/resume paths — torn
                # envelopes must quarantine and recompute, torn journal
                # tails must be dropped, and both states must still match
                # the fault-free baseline.
                state, n_failures, runner = self._sweep_state(plan_dir, options)
                resumed, n_resumed, resumed_runner = self._sweep_state(
                    plan_dir, options
                )
        finally:
            faults.reset()
            # guard:oom plans walk the global degradation ladder (kernel
            # batch size, backend preference, feature cache); undo it so
            # later plans and the next baseline run full-speed paths.
            guard_module.reset_global_degradations()
        divergences = diff_sweep_states(baseline, state)
        divergences.extend(
            f"resume: {text}" for text in diff_sweep_states(baseline, resumed)
        )
        # Only the first pass is checked for unexplained degradations: a
        # resumed run loads degraded cells from cache without re-recording
        # their failures (promotion on resume is still caught by the score
        # diff, because a degraded cell caches 0.0 scores).
        del resumed_runner
        unexplained = count_unexplained_degradations(
            state, runner.failure_records()
        )
        if unexplained:
            divergences.append(
                f"{unexplained} degraded cell(s) carry no FailureRecord"
            )
        n_failures += n_resumed
        degraded = sum(
            1
            for entry in state["datasets"].values()
            for cell in entry["results"].values()
            if cell["degraded"]
        )
        obs.inc("chaos.plans")
        if divergences:
            obs.inc("chaos.divergences", len(divergences))
        return PlanResult(
            plan=plan,
            divergences=tuple(divergences),
            degraded_cells=degraded,
            failures_absorbed=n_failures,
        )

    def run(self) -> CampaignReport:
        """Run the whole seeded schedule; clean up owned scratch space."""
        plans = generate_plans(
            self.n_plans,
            self.seed,
            self.site_pool,
            kill_sites=default_kill_sites(self.datasets),
            n_kill_plans=self.n_kill_plans,
            max_faults_per_plan=self.max_faults_per_plan,
        )
        try:
            self.baseline()
            results = tuple(self.run_plan(plan) for plan in plans)
        finally:
            if self._owns_workdir:
                shutil.rmtree(self.workdir, ignore_errors=True)
        return CampaignReport(
            seed=self.seed,
            datasets=self.datasets,
            scale=self.scale,
            results=results,
        )


# -- crash-consistency checking --------------------------------------------


@dataclass(frozen=True)
class CrashCheckResult:
    """Outcome of one kill/resume/diff cycle."""

    kill_site: str
    killed: bool
    kill_returncode: int | None
    resume_returncode: int | None
    divergences: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.killed and self.resume_returncode == 0 and not self.divergences


def _repro_command(
    datasets: Sequence[str], scale: float, seed: int, cache_dir: Path
) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "table4",
        "--datasets",
        ",".join(datasets),
        "--scale",
        str(scale),
        "--seed",
        str(seed),
        "--cache",
        str(cache_dir),
    ]


def _child_env() -> dict[str, str]:
    """The child's environment, with the repro package importable."""
    import os

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


def check_crash_consistency(
    *,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    kill_site: str = "journal:append",
    workdir: Path | str | None = None,
    timeout_seconds: float = 600.0,
) -> CrashCheckResult:
    """Kill a child ``repro`` run at ``kill_site``, resume, diff vs control.

    Three child processes: an uninterrupted *control* run, a run armed
    with ``--inject '<kill_site>=kill'`` that dies by SIGKILL at the
    site, and a *resume* run over the killed run's cache directory. The
    final sweep states of the resumed and the control directory are
    loaded in this process (pure cache reads) and diffed with
    :func:`diff_sweep_states` both ways — crash consistency means the
    states are identical, not merely compatible.
    """
    from repro.experiments.runner import ExperimentRunner, RunnerConfig

    owns_workdir = workdir is None
    base = Path(
        tempfile.mkdtemp(prefix="repro-crash-") if workdir is None else workdir
    )
    base.mkdir(parents=True, exist_ok=True)
    control_dir = base / "control"
    crash_dir = base / "crashed"
    env = _child_env()
    try:
        with obs.span("chaos.crash_check", kill_site=kill_site):
            control = subprocess.run(
                _repro_command(datasets, scale, seed, control_dir),
                env=env,
                capture_output=True,
                timeout=timeout_seconds,
            )
            if control.returncode != 0:
                return CrashCheckResult(
                    kill_site=kill_site,
                    killed=False,
                    kill_returncode=None,
                    resume_returncode=None,
                    divergences=(
                        "control run failed: "
                        + control.stderr.decode(errors="replace")[-500:],
                    ),
                )
            killed = subprocess.run(
                _repro_command(datasets, scale, seed, crash_dir)
                + ["--inject", f"{kill_site}=kill"],
                env=env,
                capture_output=True,
                timeout=timeout_seconds,
            )
            was_killed = killed.returncode == -signal.SIGKILL
            obs.inc("chaos.kills")
            resume = subprocess.run(
                _repro_command(datasets, scale, seed, crash_dir),
                env=env,
                capture_output=True,
                timeout=timeout_seconds,
            )
            divergences: list[str] = []
            if not was_killed:
                divergences.append(
                    f"child was not SIGKILLed at {kill_site!r} "
                    f"(exit code {killed.returncode}); the kill fault "
                    f"never fired"
                )
            if resume.returncode != 0:
                divergences.append(
                    "resume run failed: "
                    + resume.stderr.decode(errors="replace")[-500:]
                )
            else:
                control_state = collect_sweep_state(
                    ExperimentRunner(
                        config=RunnerConfig(
                            scale=scale, seed=seed, cache_dir=control_dir
                        )
                    ),
                    datasets,
                )
                resumed_state = collect_sweep_state(
                    ExperimentRunner(
                        config=RunnerConfig(
                            scale=scale, seed=seed, cache_dir=crash_dir
                        )
                    ),
                    datasets,
                )
                divergences.extend(
                    diff_sweep_states(control_state, resumed_state)
                )
                divergences.extend(
                    diff_sweep_states(resumed_state, control_state)
                )
            return CrashCheckResult(
                kill_site=kill_site,
                killed=was_killed,
                kill_returncode=killed.returncode,
                resume_returncode=resume.returncode,
                divergences=tuple(dict.fromkeys(divergences)),
            )
    finally:
        if owns_workdir:
            shutil.rmtree(base, ignore_errors=True)


# -- plan shrinking --------------------------------------------------------


def shrink_plan(
    plan: FaultPlan, still_fails: Callable[[FaultPlan], bool]
) -> FaultPlan:
    """Reduce a failing plan to a minimal reproducer (greedy ddmin).

    Repeatedly tries dropping one fault at a time; whenever the reduced
    plan still fails, shrinking restarts from it. The result is
    1-minimal: removing any single remaining fault makes the failure
    disappear. ``still_fails`` is the caller's replay predicate (it
    should re-run the plan and return True when the divergence is still
    observed).
    """
    current = plan
    progress = True
    while progress and len(current.faults) > 1:
        progress = False
        for index in range(len(current.faults)):
            reduced = replace(
                current,
                faults=current.faults[:index] + current.faults[index + 1 :],
            )
            if still_fails(reduced):
                current = reduced
                progress = True
                break
    return current
