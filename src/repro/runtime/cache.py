"""Hardened cache persistence: atomic writes, envelopes, quarantine.

Every cache entry is wrapped in a versioned, checksummed envelope::

    {
      "cache_schema_version": 1,
      "checksum": "<blake2b-128 of the canonical payload JSON>",
      "payload": { ... }
    }

Writers go through :func:`atomic_write_text` (tmp file + ``os.replace``)
so an interrupted run never leaves a half-written artefact. Readers verify
version and checksum; anything unreadable, corrupt, or from another schema
version is *quarantined* (renamed to ``<name>.quarantined``) and treated
as a cache miss, so one bad file degrades to a recompute instead of
aborting a sweep.

A writer that hits ``ENOSPC``/``EDQUOT`` surfaces a typed
:class:`repro.runtime.guard.DiskFull` (after removing the partial temp
file) instead of leaking a raw :class:`OSError` past the policy layer.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro import obs
from repro.runtime import faults
from repro.runtime.guard import DiskFull

logger = logging.getLogger("repro.runtime.cache")

#: Version of the on-disk envelope; bump when the payload layout changes.
CACHE_SCHEMA_VERSION = 1

QUARANTINE_SUFFIX = ".quarantined"


class CacheError(RuntimeError):
    """Base class for cache-entry problems."""


class CacheCorruption(CacheError):
    """Unparseable JSON, missing envelope fields, or checksum mismatch."""


class CacheVersionMismatch(CacheError):
    """Entry written by a different envelope schema version."""


def _checksum(canonical_payload: str) -> str:
    return hashlib.blake2b(canonical_payload.encode(), digest_size=16).hexdigest()


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@contextmanager
def atomic_writer(path: Path | str, *, newline: str | None = None) -> Iterator[IO[str]]:
    """Open ``<path>.tmp<pid>`` for writing; publish via ``os.replace``.

    On any exception the temporary file is removed and the target is left
    untouched — the atomicity contract for CSV/JSON artefact writers. A
    full volume (``ENOSPC``/``EDQUOT``) becomes a typed
    :class:`~repro.runtime.guard.DiskFull` so the policy layer records it
    as a unit failure rather than crashing the run on a raw ``OSError``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
    faults.fire("io:write")
    try:
        with tmp.open("w", newline=newline, encoding="utf-8") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        # The chaos site for disk exhaustion sits after the payload is
        # fully written but before publication — the worst moment, since
        # the tmp file now occupies the space the rename needs.
        faults.fire("io:enospc")
        os.replace(tmp, target)
        _fsync_directory(target.parent)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        if exc.errno in (errno.ENOSPC, errno.EDQUOT):
            obs.inc("guard.disk_full")
            raise DiskFull(f"{target}: no space left on device: {exc}") from exc
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable: fsync the directory entry (best effort).

    ``os.replace`` is atomic but the new directory entry can still be
    lost to a power cut until the directory itself is synced; platforms
    that cannot open a directory read-only simply skip this.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Path | str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    with atomic_writer(path) as handle:
        handle.write(text)


def write_envelope(
    path: Path | str,
    payload: object,
    *,
    schema_version: int = CACHE_SCHEMA_VERSION,
) -> None:
    """Atomically write ``payload`` wrapped in a checksummed envelope."""
    faults.fire("cache:write")
    obs.inc("cache.write")
    envelope = {
        "cache_schema_version": schema_version,
        "checksum": _checksum(_canonical(payload)),
        "payload": payload,
    }
    # The torn-write site lets chaos campaigns publish a truncated
    # envelope (simulating a non-atomic filesystem or a crash that beat
    # the rename); readers then exercise the real quarantine path.
    text = faults.torn_text("cache:torn-write", json.dumps(envelope, indent=1))
    atomic_write_text(path, text)


def read_envelope(
    path: Path | str,
    *,
    expected_version: int = CACHE_SCHEMA_VERSION,
) -> object:
    """Read and verify an envelope; returns the payload or raises CacheError."""
    source = Path(path)
    faults.fire("cache:read")
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise CacheCorruption(f"{source}: unreadable: {exc}") from exc
    text = faults.corrupt_text("cache:read", text)
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheCorruption(f"{source}: invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CacheCorruption(f"{source}: not a cache envelope")
    version = envelope.get("cache_schema_version")
    if version != expected_version:
        raise CacheVersionMismatch(
            f"{source}: schema version {version!r}, expected {expected_version}"
        )
    payload = envelope["payload"]
    if envelope.get("checksum") != _checksum(_canonical(payload)):
        raise CacheCorruption(f"{source}: payload checksum mismatch")
    return payload


def quarantine(path: Path | str) -> Path:
    """Move a bad cache entry aside (never delete evidence); returns it."""
    source = Path(path)
    target = source.with_name(source.name + QUARANTINE_SUFFIX)
    try:
        os.replace(source, target)
    except OSError:
        # Fall back to removal if the rename is impossible (e.g. the file
        # vanished); the entry must not be picked up again either way.
        source.unlink(missing_ok=True)
    return target


@dataclass(frozen=True)
class CacheReadResult:
    """Outcome of a guarded cache read.

    ``payload is None`` means cache miss; ``error`` carries the reason when
    the miss came from a quarantined entry.
    """

    payload: object | None = None
    quarantined: Path | None = None
    error: str | None = None

    @property
    def hit(self) -> bool:
        return self.payload is not None


def read_cached_payload(
    path: Path | str,
    *,
    expected_version: int = CACHE_SCHEMA_VERSION,
) -> CacheReadResult:
    """Read an envelope, quarantining corrupt/stale entries as misses."""
    source = Path(path)
    if not source.exists():
        obs.inc("cache.miss")
        return CacheReadResult()
    try:
        payload = read_envelope(source, expected_version=expected_version)
    except CacheError as exc:
        moved = quarantine(source)
        logger.warning("quarantined cache entry %s: %s", moved, exc)
        obs.inc("cache.quarantined")
        return CacheReadResult(quarantined=moved, error=str(exc))
    obs.inc("cache.hit")
    return CacheReadResult(payload=payload)
