"""Seeded fault injection: deterministic chaos for the experiment layer.

Production code calls :func:`fire` (and data-path readers/writers
:func:`corrupt_text` / :func:`torn_text`) at named *sites*; nothing
happens unless a test, benchmark or the CLI has armed a fault there.
Five kinds are supported:

* ``"error"``   — raise an exception (default :class:`InjectedFault`),
* ``"hang"``    — sleep ``hang_seconds`` to trip an execution deadline,
* ``"corrupt"`` — make a cache reader see garbled bytes, exercising the
  real checksum/quarantine path,
* ``"torn"``    — make a writer persist a truncated/garbled prefix of its
  bytes (:func:`torn_text`), simulating a crash mid-write,
* ``"kill"``    — SIGKILL the current process at the site, the primitive
  behind :mod:`repro.runtime.chaos`'s crash-consistency checker.

Sites are plain strings. The experiment layer uses ``"matcher:<name>"``,
``"sweep:<dataset>"``, ``"dataset:<dataset>"``, ``"cache:read"``,
``"cache:write"``, ``"cache:torn-write"``, ``"journal:append"``,
``"io:write"`` and ``"io:read"``. A site may be armed with a trailing
``*`` wildcard (``"matcher:*"`` fires for every matcher); an exact armed
site always takes precedence over a wildcard one, and among wildcards the
longest prefix wins. Arming accepts ``times`` (fire the first N passes,
``None`` = every pass) and a seeded ``probability`` so soak tests can
inject rare faults reproducibly: the decision for pass *k* at a site is a
pure function of ``(seed, site, k)``.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs

KINDS = ("error", "hang", "corrupt", "torn", "kill")

#: Kinds that only garble data at read/write sites and never fire in
#: :func:`fire` (they act through :func:`corrupt_text` / :func:`torn_text`).
DATA_KINDS = ("corrupt", "torn")


class InjectedFault(RuntimeError):
    """The default exception raised by an armed ``"error"`` fault."""


class InjectedDiskFull(OSError):
    """A synthetic ENOSPC, raised by ``"error"`` faults at ``io:enospc``.

    Carries a real ``errno`` so the atomic-write machinery exercises its
    genuine disk-full branch (map to :class:`repro.runtime.guard.DiskFull`,
    clean up the partial temp file) rather than a test-only shortcut.
    """

    def __init__(self, message: str) -> None:
        super().__init__(errno.ENOSPC, message)


@dataclass
class _ArmedFault:
    site: str
    kind: str
    times: int | None
    exception: type[BaseException]
    hang_seconds: float
    probability: float
    seed: int
    fired: int = 0
    passes: int = 0
    trigger_log: list[int] = field(default_factory=list)

    def should_fire(self) -> bool:
        self.passes += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0:
            digest = hashlib.blake2b(
                f"{self.seed}:{self.site}:{self.passes}".encode(),
                digest_size=8,
            ).digest()
            if int.from_bytes(digest, "big") / 2**64 >= self.probability:
                return False
        self.fired += 1
        self.trigger_log.append(self.passes)
        return True


_ARMED: dict[str, _ArmedFault] = {}


def arm(
    site: str,
    kind: str = "error",
    *,
    times: int | None = 1,
    exception: type[BaseException] = InjectedFault,
    hang_seconds: float = 30.0,
    probability: float = 1.0,
    seed: int = 0,
) -> None:
    """Arm a fault at ``site``; re-arming a site replaces its fault."""
    if kind not in KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {probability}")
    _ARMED[site] = _ArmedFault(
        site=site,
        kind=kind,
        times=times,
        exception=exception,
        hang_seconds=hang_seconds,
        probability=probability,
        seed=seed,
    )


def disarm(site: str) -> None:
    """Remove the fault armed at ``site`` (no-op if none)."""
    _ARMED.pop(site, None)


def reset() -> None:
    """Disarm every fault (test teardown)."""
    _ARMED.clear()


def armed_sites() -> list[str]:
    """The currently armed sites (CLI summary / debugging)."""
    return sorted(_ARMED)


def _armed_for(site: str) -> _ArmedFault | None:
    """The fault governing ``site``: exact match first, then wildcards.

    A wildcard is an armed site ending in ``*`` whose prefix matches.
    Precedence is pinned by tests: exact beats wildcard, and among
    matching wildcards the longest (most specific) prefix wins, ties
    broken lexicographically for determinism.
    """
    fault = _ARMED.get(site)
    if fault is not None:
        return fault
    best: _ArmedFault | None = None
    best_key: tuple[int, str] | None = None
    for armed_site, armed in _ARMED.items():
        if not armed_site.endswith("*"):
            continue
        prefix = armed_site[:-1]
        if not site.startswith(prefix):
            continue
        key = (-len(prefix), armed_site)
        if best_key is None or key < best_key:
            best, best_key = armed, key
    return best


def fire(site: str) -> None:
    """Injection point: raise/hang/kill if a fault governs ``site``.

    ``corrupt``/``torn`` faults do not trigger here — they only affect the
    data-path hooks :func:`corrupt_text` and :func:`torn_text`.
    """
    fault = _armed_for(site)
    if fault is None or fault.kind in DATA_KINDS or not fault.should_fire():
        return
    obs.inc("faults.injected")
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return
    if fault.kind == "kill":
        # A hard, uncatchable death at a deterministic point: the
        # crash-consistency checker's way of simulating a power cut.
        os.kill(os.getpid(), signal.SIGKILL)
        return
    if site == "io:enospc" and fault.exception is InjectedFault:
        raise InjectedDiskFull(f"injected fault at {site!r}")
    raise fault.exception(f"injected fault at {site!r}")


def pending(site: str) -> _ArmedFault | None:
    """Consume one firing decision at ``site`` without acting on it.

    For faults the *caller* must enact rather than this module — e.g. the
    parallel scheduler probes ``guard:hang`` before forking and tells
    exactly one worker to stall, and the run lease probes ``lease:steal``
    to plant a competing lease file. Forked children inherit armed faults
    with *copies* of the fired counters, so firing inside every worker
    would make ``times=N`` meaningless; consuming the decision in the
    parent keeps it exact. Returns the armed fault (for ``hang_seconds``
    etc.) when it fires, else ``None``.
    """
    fault = _armed_for(site)
    if fault is None or fault.kind in DATA_KINDS or not fault.should_fire():
        return None
    obs.inc("faults.injected")
    return fault


def triggered(site: str) -> bool:
    """True when an armed fault at ``site`` fires this pass (and consume it)."""
    return pending(site) is not None


def corrupt_text(site: str, text: str) -> str:
    """Injection point for cache readers: garble ``text`` if armed.

    Truncates to half length and flips the head so both JSON parsing and
    checksum verification are guaranteed to notice.
    """
    fault = _armed_for(site)
    if fault is None or fault.kind != "corrupt" or not fault.should_fire():
        return text
    obs.inc("faults.injected")
    return "\x00corrupt\x00" + text[: max(0, len(text) // 2)]


def torn_text(site: str, text: str) -> str:
    """Injection point for writers: return a torn prefix of ``text`` if armed.

    Simulates a kill mid-write: the survivor is a seeded-length prefix
    (25-90% of the original) with its final byte garbled, so a torn
    journal line or cache envelope is guaranteed to be unparseable rather
    than accidentally valid. The fraction is a pure function of
    ``(seed, site, pass)`` — reruns tear identically.
    """
    fault = _armed_for(site)
    if fault is None or fault.kind != "torn" or not fault.should_fire():
        return text
    obs.inc("faults.injected")
    digest = hashlib.blake2b(
        f"{fault.seed}:{site}:{fault.passes}".encode(), digest_size=8
    ).digest()
    fraction = 0.25 + 0.65 * (int.from_bytes(digest, "big") / 2**64)
    keep = max(1, int(len(text) * fraction))
    return text[: keep - 1] + "\x1a"


@contextmanager
def injected(site: str, kind: str = "error", **kwargs: object) -> Iterator[None]:
    """Arm a fault for the duration of a ``with`` block, then disarm it."""
    arm(site, kind, **kwargs)  # type: ignore[arg-type]
    try:
        yield
    finally:
        disarm(site)


def parse_spec(spec: str) -> tuple[str, str, int | None]:
    """Parse a CLI fault spec ``SITE=KIND[:TIMES]``.

    Examples: ``"matcher:DITTO (15)=error"``, ``"cache:read=corrupt:2"``,
    ``"sweep:Ds4=hang"``, ``"journal:append=torn"``, ``"matcher:*=kill"``.
    TIMES defaults to 1; ``*`` means every pass.
    """
    site, separator, rest = spec.rpartition("=")
    if not separator or not site:
        raise ValueError(
            f"bad fault spec {spec!r}; expected SITE=KIND[:TIMES], "
            f"e.g. 'matcher:DITTO (15)=error'"
        )
    kind, _, times_text = rest.partition(":")
    if kind not in KINDS:
        raise ValueError(
            f"bad fault kind {kind!r} in {spec!r}; expected one of {KINDS}"
        )
    if not times_text:
        times: int | None = 1
    elif times_text == "*":
        times = None
    else:
        try:
            times = int(times_text)
        except ValueError:
            raise ValueError(
                f"bad TIMES {times_text!r} in {spec!r}; expected an integer or '*'"
            ) from None
        if times < 1:
            raise ValueError(f"TIMES must be >= 1 in {spec!r}")
    return site, kind, times


def arm_from_spec(spec: str) -> str:
    """Arm a fault from a CLI spec; returns the site armed."""
    site, kind, times = parse_spec(spec)
    arm(site, kind, times=times)
    return site
