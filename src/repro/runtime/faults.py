"""Seeded fault injection: deterministic chaos for the experiment layer.

Production code calls :func:`fire` (and cache readers :func:`corrupt_text`)
at named *sites*; nothing happens unless a test, benchmark or the CLI has
armed a fault there. Three kinds are supported:

* ``"error"``   — raise an exception (default :class:`InjectedFault`),
* ``"hang"``    — sleep ``hang_seconds`` to trip an execution deadline,
* ``"corrupt"`` — make a cache reader see garbled bytes, exercising the
  real checksum/quarantine path.

Sites are plain strings. The experiment layer uses ``"matcher:<name>"``,
``"sweep:<dataset>"``, ``"dataset:<dataset>"``, ``"cache:read"``,
``"cache:write"``. Arming accepts ``times`` (fire the first N passes,
``None`` = every pass) and a seeded ``probability`` so soak tests can
inject rare faults reproducibly: the decision for pass *k* at a site is a
pure function of ``(seed, site, k)``.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs

KINDS = ("error", "hang", "corrupt")


class InjectedFault(RuntimeError):
    """The default exception raised by an armed ``"error"`` fault."""


@dataclass
class _ArmedFault:
    site: str
    kind: str
    times: int | None
    exception: type[BaseException]
    hang_seconds: float
    probability: float
    seed: int
    fired: int = 0
    passes: int = 0
    trigger_log: list[int] = field(default_factory=list)

    def should_fire(self) -> bool:
        self.passes += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0:
            digest = hashlib.blake2b(
                f"{self.seed}:{self.site}:{self.passes}".encode(),
                digest_size=8,
            ).digest()
            if int.from_bytes(digest, "big") / 2**64 >= self.probability:
                return False
        self.fired += 1
        self.trigger_log.append(self.passes)
        return True


_ARMED: dict[str, _ArmedFault] = {}


def arm(
    site: str,
    kind: str = "error",
    *,
    times: int | None = 1,
    exception: type[BaseException] = InjectedFault,
    hang_seconds: float = 30.0,
    probability: float = 1.0,
    seed: int = 0,
) -> None:
    """Arm a fault at ``site``; re-arming a site replaces its fault."""
    if kind not in KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {probability}")
    _ARMED[site] = _ArmedFault(
        site=site,
        kind=kind,
        times=times,
        exception=exception,
        hang_seconds=hang_seconds,
        probability=probability,
        seed=seed,
    )


def disarm(site: str) -> None:
    """Remove the fault armed at ``site`` (no-op if none)."""
    _ARMED.pop(site, None)


def reset() -> None:
    """Disarm every fault (test teardown)."""
    _ARMED.clear()


def armed_sites() -> list[str]:
    """The currently armed sites (CLI summary / debugging)."""
    return sorted(_ARMED)


def fire(site: str) -> None:
    """Injection point: raise/hang if an ``error``/``hang`` fault is armed.

    ``corrupt`` faults do not trigger here — they only affect
    :func:`corrupt_text` at cache-read sites.
    """
    fault = _ARMED.get(site)
    if fault is None or fault.kind == "corrupt" or not fault.should_fire():
        return
    obs.inc("faults.injected")
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return
    raise fault.exception(f"injected fault at {site!r}")


def corrupt_text(site: str, text: str) -> str:
    """Injection point for cache readers: garble ``text`` if armed.

    Truncates to half length and flips the head so both JSON parsing and
    checksum verification are guaranteed to notice.
    """
    fault = _ARMED.get(site)
    if fault is None or fault.kind != "corrupt" or not fault.should_fire():
        return text
    obs.inc("faults.injected")
    return "\x00corrupt\x00" + text[: max(0, len(text) // 2)]


@contextmanager
def injected(site: str, kind: str = "error", **kwargs: object) -> Iterator[None]:
    """Arm a fault for the duration of a ``with`` block, then disarm it."""
    arm(site, kind, **kwargs)  # type: ignore[arg-type]
    try:
        yield
    finally:
        disarm(site)


def parse_spec(spec: str) -> tuple[str, str, int | None]:
    """Parse a CLI fault spec ``SITE=KIND[:TIMES]``.

    Examples: ``"matcher:DITTO (15)=error"``, ``"cache:read=corrupt:2"``,
    ``"sweep:Ds4=hang"``. TIMES defaults to 1; ``*`` means every pass.
    """
    site, separator, rest = spec.rpartition("=")
    if not separator or not site:
        raise ValueError(
            f"bad fault spec {spec!r}; expected SITE=KIND[:TIMES], "
            f"e.g. 'matcher:DITTO (15)=error'"
        )
    kind, _, times_text = rest.partition(":")
    if kind not in KINDS:
        raise ValueError(
            f"bad fault kind {kind!r} in {spec!r}; expected one of {KINDS}"
        )
    if not times_text:
        times: int | None = 1
    elif times_text == "*":
        times = None
    else:
        try:
            times = int(times_text)
        except ValueError:
            raise ValueError(
                f"bad TIMES {times_text!r} in {spec!r}; expected an integer or '*'"
            ) from None
        if times < 1:
            raise ValueError(f"TIMES must be >= 1 in {spec!r}")
    return site, kind, times


def arm_from_spec(spec: str) -> str:
    """Arm a fault from a CLI spec; returns the site armed."""
    site, kind, times = parse_spec(spec)
    arm(site, kind, times=times)
    return site
