"""``repro doctor``: audit and repair a cache directory's runtime state.

A sweep's durable state is a cache directory: checksummed JSON envelopes,
an append-only checkpoint journal, quarantined corrupt entries, and —
after a crash — stray ``.tmp<pid>`` files from interrupted atomic writes.
Each of these has a self-healing *read* path (quarantine-as-miss, torn
tail tolerance), but reads only heal what they touch and leave the
evidence on disk. :func:`run_doctor` walks the whole directory at once:

* **torn journal tail** — unparseable JSONL lines (a kill mid-append) are
  healed durably by compaction, along with superseded duplicate lines;
* **corrupt cache envelopes** — entries failing checksum/version checks
  are quarantined (renamed ``*.quarantined``), exactly as a reader would;
* **quarantine retention** — quarantined files older than
  ``retention_days`` are deleted; fresher ones are kept as evidence;
* **stale temp files** — ``*.tmp<pid>`` leftovers whose writer process is
  dead are removed;
* **orphaned run leases** — ``run.lease`` files whose owner pid is dead
  (or whose heartbeat went silent) are deleted so the next run does not
  wait out a takeover; a healthy lease from a live run is left alone;
* **serve state pairing** — a ``repro serve --state`` directory always
  holds its snapshot (``session.json``) and add journal
  (``serve.journal``) as a *pair*. A journal with entries but no
  snapshot is deleted (its adds were journal-marked only under a
  snapshot that is now gone — replayed adds must re-apply, not be
  skipped against an empty session); a snapshot without its journal gets
  an empty journal re-materialized; torn/duplicate serve-journal lines
  compact exactly like the checkpoint journal's;
* **scale state pairing** — a ``repro scale-up`` state directory holds
  its manifest (``scale.manifest.json``) and shard journal
  (``scale.journal``) as a pair. A journal whose manifest is missing,
  unreadable, or fingerprint-mismatched is deleted (per-shard counts are
  meaningless without the config that produced them; shards are
  deterministic and recompute); a manifest without its journal gets an
  empty journal re-materialized; torn tails compact as usual.

``check=True`` audits without touching anything (exit code 1 from the CLI
when problems are found); a repair run is idempotent — a second pass
reports a clean directory.
"""

from __future__ import annotations

import json
import logging
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.runtime.cache import (
    QUARANTINE_SUFFIX,
    CacheError,
    quarantine,
    read_envelope,
)
from repro.runtime.guard import LEASE_NAME, audit_lease, pid_alive
from repro.runtime.journal import CheckpointJournal

logger = logging.getLogger("repro.runtime.doctor")

#: Journal filename inside a cache directory (kept in sync with
#: ``repro.experiments.runner.JOURNAL_NAME``; redeclared here so the
#: runtime layer stays importable without the experiments layer).
JOURNAL_NAME = "checkpoint.journal"

#: Serve state-directory filenames (kept in sync with
#: ``repro.serve.loop.JOURNAL_NAME``/``SNAPSHOT_NAME``; redeclared here
#: so the runtime layer stays importable without the serve layer).
SERVE_JOURNAL_NAME = "serve.journal"
SERVE_SNAPSHOT_NAME = "session.json"

#: Scale state-directory filenames (kept in sync with
#: ``repro.scale.sweep.SCALE_JOURNAL_NAME``/``SCALE_MANIFEST_NAME``;
#: redeclared here so the runtime layer stays importable without the
#: scale layer).
SCALE_JOURNAL_NAME = "scale.journal"
SCALE_MANIFEST_NAME = "scale.manifest.json"

#: Days a quarantined entry is kept as evidence before the doctor
#: deletes it.
DEFAULT_RETENTION_DAYS = 7.0

_TMP_PATTERN = re.compile(r"\.tmp(\d+)$")


@dataclass(frozen=True)
class DoctorFinding:
    """One audited problem and what was (or would be) done about it."""

    category: str  # "journal" | "cache" | "quarantine" | "tmp" | "lease" | "serve" | "scale"
    path: str
    problem: str
    action: str  # what was done, or "would <x>" in check mode

    def to_row(self) -> list[str]:
        return [self.category, self.path, self.problem, self.action]


@dataclass(frozen=True)
class DoctorReport:
    """Everything one doctor pass saw and did."""

    cache_dir: str
    check_only: bool
    findings: tuple[DoctorFinding, ...]
    files_scanned: int
    journal_units: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_table(self) -> tuple[list[str], list[list[str]]]:
        """(headers, rows) for :func:`repro.experiments.report.render`."""
        headers = ["category", "path", "problem", "action"]
        return headers, [finding.to_row() for finding in self.findings]

    def summary(self) -> str:
        mode = "check" if self.check_only else "repair"
        state = (
            "clean"
            if self.clean
            else f"{len(self.findings)} finding(s)"
        )
        return (
            f"doctor ({mode}): {state} — scanned {self.files_scanned} "
            f"file(s), journal holds {self.journal_units} unit(s)"
        )


def _audit_journal(
    journal_path: Path, check: bool, findings: list[DoctorFinding]
) -> int:
    """Heal a torn/duplicated journal via compaction; returns unit count."""
    if not journal_path.exists():
        return 0
    journal = CheckpointJournal(journal_path)
    problems: list[str] = []
    if journal.torn_lines:
        problems.append(f"{journal.torn_lines} torn line(s)")
    if journal.duplicate_lines:
        problems.append(f"{journal.duplicate_lines} duplicate line(s)")
    if not problems:
        return len(journal)
    problem = ", ".join(problems)
    if check:
        findings.append(
            DoctorFinding(
                category="journal",
                path=journal_path.name,
                problem=problem,
                action="would compact",
            )
        )
    else:
        shed = journal.compact()
        obs.inc("doctor.journal_compacted")
        findings.append(
            DoctorFinding(
                category="journal",
                path=journal_path.name,
                problem=problem,
                action=f"compacted, shed {shed} line(s)",
            )
        )
    return len(journal)


def _audit_serve_journal(
    journal_path: Path, check: bool, findings: list[DoctorFinding]
) -> int:
    """Audit a serve add-journal: pairing first, then torn/duplicate lines.

    A journal entry means "this add id is covered by a snapshot"; with
    the snapshot gone, replaying those adds would be journal-skipped and
    the records silently lost. Deleting the orphaned journal makes the
    replay re-apply them — the safe direction.
    """
    snapshot = journal_path.with_name(SERVE_SNAPSHOT_NAME)
    journal = CheckpointJournal(journal_path)
    if len(journal) > 0 and not snapshot.exists():
        problem = (
            f"{len(journal)} journaled add(s) but no {SERVE_SNAPSHOT_NAME} "
            "snapshot; replayed adds would be skipped"
        )
        if check:
            action = "would delete (adds must replay)"
        else:
            journal_path.unlink(missing_ok=True)
            obs.inc("doctor.serve_journal_deleted")
            action = "deleted (adds must replay)"
        findings.append(
            DoctorFinding(
                category="serve",
                path=journal_path.name,
                problem=problem,
                action=action,
            )
        )
        return 0
    return _audit_journal(journal_path, check, findings)


def _audit_scale_journal(
    journal_path: Path, check: bool, findings: list[DoctorFinding]
) -> int:
    """Audit a scale shard journal against its manifest.

    A journal entry means "this shard's counts are final under the
    manifest's config fingerprint". With the manifest gone or unreadable
    the counts have no config to reduce under, and with a fingerprint
    mismatch they belong to a *different* run; either way the safe
    direction is deletion — shards are deterministic and recompute.
    Torn/duplicate lines compact exactly like the checkpoint journal's.
    """
    manifest_path = journal_path.with_name(SCALE_MANIFEST_NAME)
    journal = CheckpointJournal(journal_path)
    fingerprint = None
    if manifest_path.exists():
        try:
            payload = read_envelope(manifest_path)
        except CacheError:
            pass  # the .json audit quarantines the manifest itself
        else:
            if isinstance(payload, dict):
                fingerprint = payload.get("fingerprint")
    stale = sum(
        1
        for unit in journal.completed
        if (journal.info(unit) or {}).get("config") != fingerprint
    )
    if len(journal) > 0 and (fingerprint is None or stale):
        if fingerprint is None:
            problem = (
                f"{len(journal)} journaled shard(s) but no readable "
                f"{SCALE_MANIFEST_NAME}; counts have no config to "
                "reduce under"
            )
        else:
            problem = (
                f"{stale} journaled shard(s) from a different config "
                "fingerprint"
            )
        if check:
            action = "would delete (shards recompute)"
        else:
            journal_path.unlink(missing_ok=True)
            obs.inc("doctor.scale_journal_deleted")
            action = "deleted (shards recompute)"
        findings.append(
            DoctorFinding(
                category="scale",
                path=journal_path.name,
                problem=problem,
                action=action,
            )
        )
        return 0
    return _audit_journal(journal_path, check, findings)


def _audit_scale_manifest(
    path: Path, check: bool, findings: list[DoctorFinding]
) -> None:
    """Re-materialize a scale manifest's missing journal, then verify it."""
    journal = path.with_name(SCALE_JOURNAL_NAME)
    if not journal.exists():
        if check:
            action = "would create empty journal"
        else:
            journal.touch()
            obs.inc("doctor.scale_journal_created")
            action = "created empty journal"
        findings.append(
            DoctorFinding(
                category="scale",
                path=path.name,
                problem=f"manifest without its {SCALE_JOURNAL_NAME}",
                action=action,
            )
        )
    _audit_envelope(path, check, findings)


def _audit_serve_snapshot(
    path: Path, check: bool, findings: list[DoctorFinding]
) -> None:
    """Re-materialize a serve snapshot's missing journal, then verify it."""
    journal = path.with_name(SERVE_JOURNAL_NAME)
    if not journal.exists():
        if check:
            action = "would create empty journal"
        else:
            journal.touch()
            obs.inc("doctor.serve_journal_created")
            action = "created empty journal"
        findings.append(
            DoctorFinding(
                category="serve",
                path=path.name,
                problem=f"snapshot without its {SERVE_JOURNAL_NAME}",
                action=action,
            )
        )
    _audit_envelope(path, check, findings)


def _audit_envelope(
    path: Path, check: bool, findings: list[DoctorFinding]
) -> None:
    """Quarantine a cache entry that fails envelope verification."""
    try:
        read_envelope(path)
    except CacheError as exc:
        # The reason, without the doctor's own path prefix duplicated.
        reason = str(exc)
        prefix = f"{path}: "
        if reason.startswith(prefix):
            reason = reason[len(prefix):]
        if check:
            action = "would quarantine"
        else:
            quarantine(path)
            obs.inc("doctor.quarantined")
            action = f"quarantined as {path.name}{QUARANTINE_SUFFIX}"
        findings.append(
            DoctorFinding(
                category="cache",
                path=path.name,
                problem=reason,
                action=action,
            )
        )


def _audit_quarantined(
    path: Path,
    retention_seconds: float,
    now: float,
    check: bool,
    findings: list[DoctorFinding],
) -> None:
    """Delete quarantined evidence past its retention window."""
    try:
        age = now - path.stat().st_mtime
    except OSError:
        return
    if age < retention_seconds:
        return
    age_days = age / 86400.0
    if check:
        action = "would delete"
    else:
        path.unlink(missing_ok=True)
        obs.inc("doctor.retention_deleted")
        action = "deleted"
    findings.append(
        DoctorFinding(
            category="quarantine",
            path=path.name,
            problem=f"quarantined {age_days:.1f} day(s) ago, past retention",
            action=action,
        )
    )


def _audit_tmp(
    path: Path, check: bool, findings: list[DoctorFinding]
) -> None:
    """Remove an interrupted atomic write's temp file if its writer died."""
    match = _TMP_PATTERN.search(path.name)
    if match is None:
        return
    pid = int(match.group(1))
    if pid_alive(pid):
        return  # a live writer is mid-publish; not ours to touch
    if check:
        action = "would delete"
    else:
        path.unlink(missing_ok=True)
        obs.inc("doctor.tmp_deleted")
        action = "deleted"
    findings.append(
        DoctorFinding(
            category="tmp",
            path=path.name,
            problem=f"stale temp file from dead writer pid {pid}",
            action=action,
        )
    )


def _audit_lease(
    path: Path,
    now: float,
    check: bool,
    findings: list[DoctorFinding],
) -> None:
    """Delete an orphaned run lease (dead owner or silent heartbeat)."""
    problem = audit_lease(path, now=now)
    if problem is None:
        return  # held by a live, heartbeating run — not ours to touch
    if check:
        action = "would delete"
    else:
        path.unlink(missing_ok=True)
        obs.inc("doctor.lease_deleted")
        action = "deleted"
    findings.append(
        DoctorFinding(
            category="lease",
            path=path.name,
            problem=problem,
            action=action,
        )
    )


def run_doctor(
    cache_dir: Path | str,
    *,
    check: bool = False,
    retention_days: float = DEFAULT_RETENTION_DAYS,
    now: float | None = None,
) -> DoctorReport:
    """Audit (and unless ``check``, repair) one cache directory.

    ``now`` is an injectable wall-clock (seconds since the epoch) for the
    retention check; tests pin it instead of aging files on disk.
    """
    root = Path(cache_dir)
    findings: list[DoctorFinding] = []
    if now is None:
        now = time.time()
    retention_seconds = retention_days * 86400.0
    files_scanned = 0
    journal_units = 0
    with obs.span("doctor.run", cache_dir=str(root), check=check):
        if root.exists():
            for path in sorted(root.rglob("*")):
                if not path.is_file():
                    continue
                if path.name == JOURNAL_NAME:
                    # Every journal in the tree: a chaos campaign leaves
                    # one per plan directory, not just the root's.
                    journal_units += _audit_journal(path, check, findings)
                    continue
                if path.name == SERVE_JOURNAL_NAME:
                    journal_units += _audit_serve_journal(
                        path, check, findings
                    )
                    continue
                if path.name == SCALE_JOURNAL_NAME:
                    journal_units += _audit_scale_journal(
                        path, check, findings
                    )
                    continue
                if path.name == LEASE_NAME:
                    files_scanned += 1
                    _audit_lease(path, now, check, findings)
                    continue
                files_scanned += 1
                if path.name.endswith(QUARANTINE_SUFFIX):
                    _audit_quarantined(
                        path, retention_seconds, now, check, findings
                    )
                elif _TMP_PATTERN.search(path.name):
                    _audit_tmp(path, check, findings)
                elif path.name == SERVE_SNAPSHOT_NAME:
                    _audit_serve_snapshot(path, check, findings)
                elif path.name == SCALE_MANIFEST_NAME:
                    _audit_scale_manifest(path, check, findings)
                elif path.suffix == ".json":
                    _audit_envelope(path, check, findings)
    report = DoctorReport(
        cache_dir=str(root),
        check_only=check,
        findings=tuple(findings),
        files_scanned=files_scanned,
        journal_units=journal_units,
    )
    if findings:
        obs.inc("doctor.findings", len(findings))
        logger.info("%s", report.summary())
    return report


def report_to_json(report: DoctorReport) -> str:
    """Machine-readable doctor report (``repro doctor --out``)."""
    return json.dumps(
        {
            "cache_dir": report.cache_dir,
            "check_only": report.check_only,
            "clean": report.clean,
            "files_scanned": report.files_scanned,
            "journal_units": report.journal_units,
            "findings": [
                {
                    "category": finding.category,
                    "path": finding.path,
                    "problem": finding.problem,
                    "action": finding.action,
                }
                for finding in report.findings
            ],
        },
        indent=2,
        sort_keys=True,
    )
