"""Execution policies: retries, backoff, deadlines, structured failures.

An :class:`ExecutionPolicy` turns ``fn()`` into an :class:`ExecutionOutcome`
that either carries the value or a :class:`FailureRecord` — never an
exception. Backoff jitter is derived from ``(seed, unit_id, attempt)`` so a
rerun of the same sweep waits exactly the same amount of time, and the
sleep function is injectable so tests never actually wait.
"""

from __future__ import annotations

import contextvars
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.runtime.breaker import BreakerRegistry
from repro.runtime.guard import BudgetExceeded, DiskFull


class DeadlineExceeded(RuntimeError):
    """A unit of work exceeded its per-attempt wall-clock deadline."""


@dataclass(frozen=True)
class FailureRecord:
    """One failed unit of work, as data.

    ``unit_id`` names the unit (``"sweep:Ds4"``, ``"Ds4/DITTO (15)"``),
    ``phase`` the pipeline stage (``"matcher"``, ``"sweep"``, ``"cache"``,
    ``"assessment"``), and ``attempts`` how many tries the policy spent.
    """

    unit_id: str
    phase: str
    attempts: int
    exception_type: str
    message: str
    elapsed_seconds: float

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (snapshot / report serialization)."""
        return {
            "unit_id": self.unit_id,
            "phase": self.phase,
            "attempts": self.attempts,
            "exception_type": self.exception_type,
            "message": self.message,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FailureRecord":
        return cls(
            unit_id=str(payload["unit_id"]),
            phase=str(payload["phase"]),
            attempts=int(payload["attempts"]),
            exception_type=str(payload["exception_type"]),
            message=str(payload["message"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
        )

    def describe(self) -> str:
        return (
            f"{self.unit_id} [{self.phase}] failed after "
            f"{self.attempts} attempt(s): {self.exception_type}: {self.message}"
        )


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of running one unit under a policy: a value XOR a failure."""

    value: Any = None
    failure: FailureRecord | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _deterministic_fraction(seed: int, unit_id: str, attempt: int) -> float:
    """A stable pseudo-random fraction in [0, 1) for backoff jitter."""
    digest = hashlib.blake2b(
        f"{seed}:{unit_id}:{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


def _call_with_deadline(fn: Callable[[], Any], deadline_seconds: float) -> Any:
    """Run ``fn`` in a worker thread, raising if it outlives the deadline.

    The timed-out worker cannot be killed from Python; it is left running
    as a daemon thread and its eventual result is discarded. That trades a
    leaked thread for the sweep making progress — acceptable for the
    CPU-bound, side-effect-free units the experiment layer runs.
    """
    box: list[Any] = []
    error: list[BaseException] = []
    # Run under a copy of the caller's context so contextvar-based state
    # (the repro.obs span stack above all) survives the thread hop and
    # spans opened inside the unit keep their parent.
    context = contextvars.copy_context()

    def worker() -> None:
        try:
            box.append(context.run(fn))
        except BaseException as exc:  # transported to the calling thread
            error.append(exc)

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    thread.join(timeout=deadline_seconds)
    if thread.is_alive():
        raise DeadlineExceeded(
            f"unit still running after {deadline_seconds:.3f}s deadline"
        )
    if error:
        raise error[0]
    return box[0]


@dataclass
class ExecutionPolicy:
    """Configurable retry/backoff/deadline discipline for units of work.

    ``max_attempts`` counts the first try; ``backoff_base`` seconds grow by
    ``backoff_factor`` per retry, scaled by ``1 ± jitter`` with a fraction
    derived deterministically from ``(seed, unit_id, attempt)``.
    ``deadline_seconds`` bounds each attempt's wall clock (``None`` = no
    deadline). ``retry_on`` is the exception allow-list; anything outside
    it fails immediately without retry. ``breakers`` (optional) attaches a
    :class:`~repro.runtime.breaker.BreakerRegistry`: once a unit id has
    failed ``failure_threshold`` consecutive times its breaker opens and
    further executions — including the remaining retries of the current
    one — short-circuit to a ``CircuitOpen`` failure instead of running.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    deadline_seconds: float | None = None
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    breakers: BreakerRegistry | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff_base/backoff_factor must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )

    def backoff_delay(self, unit_id: str, attempt: int) -> float:
        """Seconds to wait after failed ``attempt`` (1-based) of a unit."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        fraction = _deterministic_fraction(self.seed, unit_id, attempt)
        return base * (1.0 + self.jitter * (2.0 * fraction - 1.0))

    def execute(
        self,
        fn: Callable[[], Any],
        *,
        unit_id: str,
        phase: str,
    ) -> ExecutionOutcome:
        """Run ``fn`` under this policy; failures become data."""
        start = time.perf_counter()
        breaker = (
            self.breakers.breaker_for(unit_id)
            if self.breakers is not None
            else None
        )
        if breaker is not None and not breaker.allow():
            return ExecutionOutcome(
                failure=FailureRecord(
                    unit_id=unit_id,
                    phase=phase,
                    attempts=0,
                    exception_type="CircuitOpen",
                    message=(
                        f"circuit breaker open after "
                        f"{breaker.consecutive_failures} consecutive "
                        f"failure(s); unit short-circuited"
                    ),
                    elapsed_seconds=0.0,
                )
            )
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.deadline_seconds is not None:
                    value = _call_with_deadline(fn, self.deadline_seconds)
                else:
                    value = fn()
                if breaker is not None:
                    breaker.record_success()
                return ExecutionOutcome(value=value)
            # Supervision outcomes (deadline, shed unit, full disk) always
            # become structured failure data, even under a narrow
            # ``retry_on`` allow-list — they are expected operational
            # events, never crashes.
            except (
                *self.retry_on, DeadlineExceeded, BudgetExceeded, DiskFull,
            ) as exc:
                if breaker is not None:
                    breaker.record_failure()
                # An opened breaker also stops the *current* unit's
                # remaining retries: the whole point is to stop burning
                # the backoff budget on a unit that keeps failing.
                exhausted = attempt >= self.max_attempts or (
                    breaker is not None and breaker.state == "open"
                )
                if exhausted:
                    obs.inc("policy.failure")
                    return ExecutionOutcome(
                        failure=FailureRecord(
                            unit_id=unit_id,
                            phase=phase,
                            attempts=attempt,
                            exception_type=type(exc).__name__,
                            message=str(exc),
                            elapsed_seconds=time.perf_counter() - start,
                        )
                    )
                obs.inc("policy.retry")
                self.sleep(self.backoff_delay(unit_id, attempt))


#: Policy used when a caller passes ``policy=None``: one attempt, no
#: deadline — the pre-runtime behaviour, with failures still structured.
PASSTHROUGH_POLICY = ExecutionPolicy(max_attempts=1, backoff_base=0.0)
