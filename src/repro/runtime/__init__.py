"""Fault-tolerant execution layer for long experiment sweeps.

A full-suite regeneration is 13+ datasets x dozens of matchers; at that
scale failures must be data, not crashes. This package provides the four
pieces the experiment layer builds on:

* :mod:`repro.runtime.policy` — :class:`ExecutionPolicy` wraps an expensive
  unit of work with retries, exponential backoff (seeded deterministic
  jitter) and a per-unit wall-clock deadline; failures come back as
  structured :class:`FailureRecord` objects instead of exceptions.
* :mod:`repro.runtime.faults` — a seeded fault-injection registry; tests,
  benchmarks and the CLI arm faults (errors, hangs, cache corruption) at
  named sites to exercise the degradation paths deterministically.
* :mod:`repro.runtime.cache` — atomic writes (tmp file + ``os.replace``)
  and a versioned, checksummed envelope around every cache entry; corrupt
  or stale entries are quarantined and treated as misses.
* :mod:`repro.runtime.journal` — an append-only checkpoint journal so an
  interrupted run resumes from completed units.
* :mod:`repro.runtime.parallel` — a process-pool scheduler
  (:class:`ParallelScheduler`) that fans independent units across
  ``fork`` workers with deterministic merge order and the same
  policy/failure semantics as the sequential path (worker spans and
  metrics marshal back to the parent :mod:`repro.obs` collector).
* :mod:`repro.runtime.registry` — the process-wide fallback registry for
  absorbed :class:`FailureRecord` data and its lifecycle
  (:func:`clear_recorded_failures`), so run boundaries are managed here
  rather than in an experiments-internal module.

The package is dependency-free (stdlib only) so every layer of the
repository may import it.
"""

from repro.runtime.cache import (
    CACHE_SCHEMA_VERSION,
    CacheCorruption,
    CacheError,
    CacheReadResult,
    CacheVersionMismatch,
    atomic_write_text,
    atomic_writer,
    quarantine,
    read_cached_payload,
    read_envelope,
    write_envelope,
)
from repro.runtime.journal import CheckpointJournal
from repro.runtime.parallel import (
    ParallelScheduler,
    ScheduleResult,
    UnitReport,
    WorkUnit,
    WorkerReport,
)
from repro.runtime.policy import (
    DeadlineExceeded,
    ExecutionOutcome,
    ExecutionPolicy,
    FailureRecord,
)
from repro.runtime.registry import (
    clear_recorded_failures,
    record_failure,
    recorded_failures,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheCorruption",
    "CacheError",
    "CacheReadResult",
    "CacheVersionMismatch",
    "CheckpointJournal",
    "DeadlineExceeded",
    "ExecutionOutcome",
    "ExecutionPolicy",
    "FailureRecord",
    "ParallelScheduler",
    "ScheduleResult",
    "UnitReport",
    "WorkUnit",
    "WorkerReport",
    "atomic_write_text",
    "atomic_writer",
    "clear_recorded_failures",
    "quarantine",
    "read_cached_payload",
    "read_envelope",
    "record_failure",
    "recorded_failures",
    "write_envelope",
]
