"""Fault-tolerant execution layer for long experiment sweeps.

A full-suite regeneration is 13+ datasets x dozens of matchers; at that
scale failures must be data, not crashes. This package provides the four
pieces the experiment layer builds on:

* :mod:`repro.runtime.policy` — :class:`ExecutionPolicy` wraps an expensive
  unit of work with retries, exponential backoff (seeded deterministic
  jitter) and a per-unit wall-clock deadline; failures come back as
  structured :class:`FailureRecord` objects instead of exceptions.
* :mod:`repro.runtime.faults` — a seeded fault-injection registry; tests,
  benchmarks and the CLI arm faults (errors, hangs, cache corruption) at
  named sites to exercise the degradation paths deterministically.
* :mod:`repro.runtime.cache` — atomic writes (tmp file + ``os.replace``)
  and a versioned, checksummed envelope around every cache entry; corrupt
  or stale entries are quarantined and treated as misses.
* :mod:`repro.runtime.journal` — an append-only checkpoint journal so an
  interrupted run resumes from completed units.
* :mod:`repro.runtime.parallel` — a process-pool scheduler
  (:class:`ParallelScheduler`) that fans independent units across
  ``fork`` workers with deterministic merge order and the same
  policy/failure semantics as the sequential path (worker spans and
  metrics marshal back to the parent :mod:`repro.obs` collector).
* :mod:`repro.runtime.registry` — the process-wide fallback registry for
  absorbed :class:`FailureRecord` data and its lifecycle
  (:func:`clear_recorded_failures`), so run boundaries are managed here
  rather than in an experiments-internal module.
* :mod:`repro.runtime.breaker` — per-unit circuit breakers
  (:class:`BreakerRegistry`) that an :class:`ExecutionPolicy` can carry:
  after K consecutive failures a unit short-circuits to a structured
  ``CircuitOpen`` failure instead of burning its retry budget.
* :mod:`repro.runtime.chaos` — seeded chaos campaigns
  (:class:`ChaosCampaign`) asserting verdicts survive randomized
  multi-site fault plans, plus the SIGKILL-based crash-consistency
  checker (:func:`check_crash_consistency`) and the plan shrinker.
* :mod:`repro.runtime.doctor` — ``repro doctor``'s engine
  (:func:`run_doctor`): audits and repairs a cache directory (torn
  journal tails, corrupt envelopes, quarantine retention, stale temp
  files, orphaned run leases).
* :mod:`repro.runtime.guard` — resource-aware supervision: the heartbeat
  :class:`Watchdog` with :class:`AdaptiveDeadlineModel` deadlines, the
  :class:`ResourceGuard` memory/disk budget ladder, and the
  :class:`RunLease` cache-directory lock with stale-lease takeover.

The package is dependency-free (stdlib only) so every layer of the
repository may import it.
"""

from repro.runtime.breaker import BreakerRegistry, CircuitBreaker
from repro.runtime.cache import (
    CACHE_SCHEMA_VERSION,
    CacheCorruption,
    CacheError,
    CacheReadResult,
    CacheVersionMismatch,
    atomic_write_text,
    atomic_writer,
    quarantine,
    read_cached_payload,
    read_envelope,
    write_envelope,
)
from repro.runtime.chaos import (
    CampaignReport,
    ChaosCampaign,
    CrashCheckResult,
    FaultPlan,
    PlannedFault,
    PlanResult,
    check_crash_consistency,
    generate_plans,
    shrink_plan,
)
from repro.runtime.doctor import (
    DoctorFinding,
    DoctorReport,
    run_doctor,
)
from repro.runtime.guard import (
    LEASE_NAME,
    AdaptiveDeadlineModel,
    BudgetExceeded,
    DiskFull,
    LeaseHeld,
    ResourceGuard,
    RunLease,
    Watchdog,
    WatchdogVerdict,
    audit_lease,
    degrade_reason,
    pid_alive,
    reset_global_degradations,
)
from repro.runtime.journal import CheckpointJournal
from repro.runtime.parallel import (
    ParallelScheduler,
    ScheduleResult,
    UnitReport,
    WorkUnit,
    WorkerReport,
)
from repro.runtime.policy import (
    DeadlineExceeded,
    ExecutionOutcome,
    ExecutionPolicy,
    FailureRecord,
)
from repro.runtime.registry import (
    clear_recorded_failures,
    record_failure,
    recorded_failures,
)

__all__ = [
    "AdaptiveDeadlineModel",
    "BreakerRegistry",
    "BudgetExceeded",
    "CACHE_SCHEMA_VERSION",
    "CacheCorruption",
    "CacheError",
    "CacheReadResult",
    "CacheVersionMismatch",
    "CampaignReport",
    "ChaosCampaign",
    "CheckpointJournal",
    "CircuitBreaker",
    "CrashCheckResult",
    "DeadlineExceeded",
    "DiskFull",
    "DoctorFinding",
    "DoctorReport",
    "ExecutionOutcome",
    "ExecutionPolicy",
    "FailureRecord",
    "FaultPlan",
    "LEASE_NAME",
    "LeaseHeld",
    "ParallelScheduler",
    "PlanResult",
    "PlannedFault",
    "ResourceGuard",
    "RunLease",
    "ScheduleResult",
    "UnitReport",
    "Watchdog",
    "WatchdogVerdict",
    "WorkUnit",
    "WorkerReport",
    "atomic_write_text",
    "atomic_writer",
    "audit_lease",
    "check_crash_consistency",
    "clear_recorded_failures",
    "degrade_reason",
    "generate_plans",
    "pid_alive",
    "quarantine",
    "read_cached_payload",
    "read_envelope",
    "record_failure",
    "recorded_failures",
    "reset_global_degradations",
    "run_doctor",
    "shrink_plan",
    "write_envelope",
]
