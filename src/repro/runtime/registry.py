"""Process-wide fallback registry for :class:`FailureRecord` data.

Callers that own their failures — the experiment runner, the CLI — pass
an explicit list around and never touch this module. Bare calls (e.g.
``evaluate_suite(task)`` in a notebook) still need somewhere for absorbed
failures to land, and that somewhere must have a lifecycle: the registry
lives here, in :mod:`repro.runtime` next to the policy machinery that
produces the records, so the CLI and tests manage run boundaries through
the runtime layer instead of reaching into an experiments-internal
module. (:mod:`repro.experiments.matcher_suite` re-exports the accessors
for backwards compatibility.)
"""

from __future__ import annotations

from repro.runtime.policy import FailureRecord

_failures: list[FailureRecord] = []


def record_failure(failure: FailureRecord) -> None:
    """Append one absorbed failure to the process-wide registry."""
    _failures.append(failure)


def recorded_failures() -> list[FailureRecord]:
    """Every failure recorded in the process-wide fallback registry."""
    return list(_failures)


def clear_recorded_failures() -> None:
    """Empty the fallback registry (run/test boundary hygiene)."""
    _failures.clear()
