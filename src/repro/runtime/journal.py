"""Append-only checkpoint journal: resume interrupted runs.

One JSON line per completed unit of work::

    {"unit": "sweep:Ds4", "info": {"cache": "suite_Ds4_ab12.json"}}

Appends are flushed and fsynced, so a kill leaves at worst one truncated
final line — which the loader tolerates, drops, and counts in the
``journal.torn`` metric. A restarted run asks
:meth:`CheckpointJournal.is_done` before recomputing a unit, turning a
killed full-suite regeneration into a warm resume. ``repro doctor``
repairs a torn tail durably and :meth:`CheckpointJournal.compact`
rewrites the file to one canonical line per unit.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro import obs
from repro.runtime import faults

logger = logging.getLogger("repro.runtime.journal")


class CheckpointJournal:
    """Durable set of completed unit ids, backed by a JSONL file."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        # True when the file ends mid-line (kill during append): the next
        # append must start on a fresh line or it merges with the stub.
        self._needs_newline = False
        #: Unparseable lines dropped by the last load (torn appends).
        self.torn_lines = 0
        #: Re-recorded units seen by the last load (compaction candidates).
        self.duplicate_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            logger.warning("unreadable journal %s: %s", self.path, exc)
            return
        self._needs_newline = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves one truncated line; resume must
                # tolerate it (drop + count), never raise.
                logger.warning(
                    "dropping truncated journal line in %s", self.path
                )
                self.torn_lines += 1
                obs.inc("journal.torn")
                continue
            if isinstance(entry, dict) and isinstance(entry.get("unit"), str):
                if entry["unit"] in self._entries:
                    self.duplicate_lines += 1
                self._entries[entry["unit"]] = entry.get("info") or {}

    def reload(self) -> None:
        """Re-read the file, picking up entries appended by another process.

        The double-checked-locking half of lease contention: a runner that
        *waited* for the cache lease must assume the previous holder
        completed (and journaled) the contested units, and re-read before
        recomputing.
        """
        self._entries.clear()
        self._needs_newline = False
        self.torn_lines = 0
        self.duplicate_lines = 0
        self._load()

    @property
    def completed(self) -> frozenset[str]:
        return frozenset(self._entries)

    def is_done(self, unit_id: str) -> bool:
        return unit_id in self._entries

    def info(self, unit_id: str) -> dict | None:
        """The info dict recorded with a completed unit (None if absent)."""
        return self._entries.get(unit_id)

    def mark_done(self, unit_id: str, **info: object) -> None:
        """Durably record a completed unit (idempotent)."""
        if self.is_done(unit_id) and self._entries[unit_id] == info:
            return
        faults.fire("journal:append")
        self._entries[unit_id] = dict(info)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"unit": unit_id, "info": info}, sort_keys=True)
        if self._needs_newline:
            line = "\n" + line
            self._needs_newline = False
        # The torn-write site garbles the bytes that reach the disk (the
        # in-memory entry stays recorded, exactly like a crash between the
        # dict update and the fsync) so chaos campaigns and doctor tests
        # can produce a genuinely torn tail on demand.
        data = faults.torn_text("journal:append", line + "\n")
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if not data.endswith("\n"):
            self._needs_newline = True

    def compact(self) -> int:
        """Atomically rewrite the file to one line per unit; returns lines shed.

        Shed lines are torn stubs and superseded duplicates. The rewrite
        goes through the atomic writer (tmp file + ``os.replace``), so a
        crash mid-compaction leaves the original journal untouched.
        """
        from repro.runtime.cache import atomic_write_text

        raw_lines = 0
        if self.path.exists():
            try:
                raw_lines = sum(
                    1
                    for line in self.path.read_text(encoding="utf-8").splitlines()
                    if line.strip()
                )
            except OSError:
                raw_lines = 0
        if not self._entries:
            if self.path.exists():
                self.path.unlink(missing_ok=True)
            return raw_lines
        text = "".join(
            json.dumps({"unit": unit, "info": info}, sort_keys=True) + "\n"
            for unit, info in sorted(self._entries.items())
        )
        atomic_write_text(self.path, text)
        self._needs_newline = False
        self.torn_lines = 0
        self.duplicate_lines = 0
        return raw_lines - len(self._entries)

    def clear(self) -> None:
        """Forget all checkpoints (start a fresh run)."""
        self._entries.clear()
        self.path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"CheckpointJournal({str(self.path)!r}, {len(self)} done)"
