"""Profiling hooks: the ``Probe`` protocol and a sampling profiler.

Two complementary ways to see *inside* a unit of work:

* **Probes** — matchers and blockers report phase boundaries
  (``fit``/``predict``/``block``) with their duration; any object with an
  ``on_phase(unit, phase, seconds)`` method can subscribe via
  :meth:`repro.obs.Observability.add_probe` and aggregate however it
  likes. :class:`PhaseAccumulator` is the built-in aggregator behind the
  "hottest units" summary.
* **Sampling profiler** — an opt-in daemon thread that samples the
  active-span stack of a :class:`~repro.obs.spans.TraceCollector` at a
  fixed interval and counts which leaf spans it caught running. Top-N by
  samples approximates top-N by self-time without instrumenting anything.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

from repro.obs.spans import TraceCollector


@runtime_checkable
class Probe(Protocol):
    """Anything that wants phase-boundary notifications."""

    def on_phase(self, unit: str, phase: str, seconds: float) -> None:
        """Called once per completed phase of ``unit`` with its duration."""
        ...


class PhaseAccumulator:
    """A probe that totals seconds per ``(unit, phase)`` pair."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: dict[tuple[str, str], float] = {}
        self._calls: dict[tuple[str, str], int] = {}

    def on_phase(self, unit: str, phase: str, seconds: float) -> None:
        key = (unit, phase)
        with self._lock:
            self._seconds[key] = self._seconds.get(key, 0.0) + seconds
            self._calls[key] = self._calls.get(key, 0) + 1

    def hottest(self, top_n: int = 10) -> list[tuple[str, str, int, float]]:
        """Top-N ``(unit, phase, calls, seconds)`` by total seconds."""
        with self._lock:
            ranked = sorted(
                self._seconds.items(), key=lambda item: (-item[1], item[0])
            )
            return [
                (unit, phase, self._calls[(unit, phase)], seconds)
                for (unit, phase), seconds in ranked[:top_n]
            ]

    def reset(self) -> None:
        with self._lock:
            self._seconds.clear()
            self._calls.clear()


class SamplingProfiler:
    """Periodically sample a collector's active leaf spans (opt-in).

    The profiler thread only reads the collector's lock-protected active
    map, so arming it changes nothing about the run's behaviour; the cost
    is one dict scan per ``interval``. Samples are attributed to *leaf*
    spans (active spans with no active child), which approximates
    self-time per unit.
    """

    def __init__(
        self, collector: TraceCollector, interval: float = 0.005
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.collector = collector
        self.interval = interval
        self.samples: Counter[str] = Counter()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            for label in self.collector.active_leaf_labels():
                self.samples[label] += 1

    @contextmanager
    def profile(self) -> Iterator["SamplingProfiler"]:
        """Profile a ``with`` block (start fresh, stop on exit)."""
        self.samples.clear()
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def summary(self, top_n: int = 10) -> list[tuple[str, int, float]]:
        """Top-N hottest units as ``(label, samples, approx_seconds)``."""
        return [
            (label, count, count * self.interval)
            for label, count in self.samples.most_common(top_n)
        ]

    def reset(self) -> None:
        self.samples.clear()
