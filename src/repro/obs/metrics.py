"""Metrics registry: counters, gauges and histogram timers.

The registry is the quantitative half of :mod:`repro.obs` — spans say
*where* a run spent its time, metrics say *how much of what happened*:
cache hits and misses, journal skips, policy retries, injected faults,
per-matcher fit/predict seconds, blocking throughput. Everything is
stdlib-only and cheap enough to stay on in production runs.

Three instrument kinds:

* **counter** — monotonically increasing float/int (``inc``);
* **gauge** — last-write-wins value (``gauge``);
* **timer** — a histogram summary of observed durations: count, total,
  min, max (``observe`` / ``time``).

``snapshot()`` returns a plain, JSON-ready dict with sorted keys, so two
runs that did the same work produce byte-identical snapshots (timer
*totals* aside — wall clock is never deterministic). ``export`` /
``merge`` marshal a registry across the :mod:`repro.runtime.parallel`
fork boundary: counters and timers add, gauges last-write-win.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: The exact top-level keys of a metrics snapshot dict.  The unified
#: :func:`repro.experiments.report.render` dispatcher uses this to tell a
#: metrics snapshot apart from a figure series (both are dicts of dicts).
SNAPSHOT_KEYS = ("counters", "gauges", "timers")


@dataclass
class TimerStat:
    """Histogram summary of one timer: count/total/min/max seconds."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.minimum, 6) if self.count else 0.0,
            "max": round(self.maximum, 6),
        }

    def merge(self, other: "TimerStat") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and timers.

    All mutators are no-ops while ``enabled`` is ``False``, so a disabled
    registry costs one attribute check per call — the overhead budget of
    DESIGN.md §8 depends on that.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration in the timer histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._timers.setdefault(name, TimerStat()).observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def timer_total(self, name: str) -> float:
        """Accumulated seconds of the timer ``name`` (0 if never observed)."""
        stat = self._timers.get(name)
        return stat.total if stat is not None else 0.0

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dict of every instrument, keys sorted (see module doc)."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
                "gauges": {
                    name: round(self._gauges[name], 6)
                    for name in sorted(self._gauges)
                },
                "timers": {
                    name: self._timers[name].to_dict()
                    for name in sorted(self._timers)
                },
            }

    # -- fork marshalling --------------------------------------------------

    def export(self) -> dict[str, dict]:
        """Picklable form for crossing the worker/parent boundary."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: (stat.count, stat.total, stat.minimum, stat.maximum)
                    for name, stat in self._timers.items()
                },
            }

    def merge(self, exported: dict[str, dict]) -> None:
        """Fold a worker's :meth:`export` into this registry.

        Counters and timers add; gauges last-write-win (the merge order is
        the workers' completion order, matching what a sequential run
        would have left behind only approximately — gauges are point-in-
        time readings, not accumulations, so this is the honest choice).
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in exported.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in exported.get("gauges", {}).items():
                self._gauges[name] = value
            for name, packed in exported.get("timers", {}).items():
                count, total, minimum, maximum = packed
                self._timers.setdefault(name, TimerStat()).merge(
                    TimerStat(
                        count=count,
                        total=total,
                        minimum=minimum,
                        maximum=maximum,
                    )
                )

    def reset(self) -> None:
        """Drop every instrument (run/test boundary hygiene)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


class LatencyHistogram:
    """Log-bucketed latency histogram with p50/p99 quantile estimates.

    :class:`TimerStat` keeps count/total/min/max only — enough for
    throughput accounting, useless for tail latency. This histogram
    buckets observations on a geometric grid from ``lowest`` seconds
    (everything below lands in bucket 0) with ``growth`` spacing, so a
    few hundred ints cover nanoseconds to minutes at ≤5% relative error
    per bucket. Quantiles interpolate inside the winning bucket.
    Serving loops keep one per phase (block / extract / predict) and
    render them next to the registry snapshot; ``to_dict`` is JSON-ready
    and deterministic for a fixed observation multiset.
    """

    __slots__ = ("lowest", "growth", "_counts", "_stat")

    def __init__(self, lowest: float = 1e-6, growth: float = 1.1) -> None:
        if lowest <= 0:
            raise ValueError(f"lowest must be > 0, got {lowest}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.lowest = lowest
        self.growth = growth
        self._counts: dict[int, int] = {}
        self._stat = TimerStat()

    def __len__(self) -> int:
        return self._stat.count

    def _bucket(self, seconds: float) -> int:
        if seconds <= self.lowest:
            return 0
        return 1 + int(math.log(seconds / self.lowest) / math.log(self.growth))

    def _edge(self, bucket: int) -> float:
        return self.lowest * self.growth**bucket

    def observe(self, seconds: float) -> None:
        self._stat.observe(seconds)
        bucket = self._bucket(seconds)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def quantile(self, fraction: float) -> float:
        """The estimated ``fraction`` quantile in seconds (0 when empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        count = self._stat.count
        if count == 0:
            return 0.0
        rank = fraction * (count - 1)
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen > rank:
                # Interpolate inside the bucket; clamp to observed range.
                low = self._edge(bucket - 1) if bucket else 0.0
                high = self._edge(bucket)
                estimate = (low + high) / 2.0
                return min(max(estimate, self._stat.minimum), self._stat.maximum)
        return self._stat.maximum

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "LatencyHistogram") -> None:
        if other.lowest != self.lowest or other.growth != self.growth:
            raise ValueError("cannot merge histograms with different grids")
        self._stat.merge(other._stat)
        for bucket, count in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + count

    def to_dict(self) -> dict[str, float]:
        """JSON-ready summary: count/mean/min/max plus p50/p90/p99."""
        summary = self._stat.to_dict()
        summary["p50"] = round(self.quantile(0.50), 6)
        summary["p90"] = round(self.quantile(0.90), 6)
        summary["p99"] = round(self.quantile(0.99), 6)
        return summary


def is_metrics_snapshot(artifact: object) -> bool:
    """True when ``artifact`` looks like a :meth:`MetricsRegistry.snapshot`."""
    return (
        isinstance(artifact, dict)
        and set(artifact) == set(SNAPSHOT_KEYS)
        and all(isinstance(artifact[key], dict) for key in SNAPSHOT_KEYS)
    )
