"""Metrics registry: counters, gauges and histogram timers.

The registry is the quantitative half of :mod:`repro.obs` — spans say
*where* a run spent its time, metrics say *how much of what happened*:
cache hits and misses, journal skips, policy retries, injected faults,
per-matcher fit/predict seconds, blocking throughput. Everything is
stdlib-only and cheap enough to stay on in production runs.

Three instrument kinds:

* **counter** — monotonically increasing float/int (``inc``);
* **gauge** — last-write-wins value (``gauge``);
* **timer** — a histogram summary of observed durations: count, total,
  min, max (``observe`` / ``time``).

``snapshot()`` returns a plain, JSON-ready dict with sorted keys, so two
runs that did the same work produce byte-identical snapshots (timer
*totals* aside — wall clock is never deterministic). ``export`` /
``merge`` marshal a registry across the :mod:`repro.runtime.parallel`
fork boundary: counters and timers add, gauges last-write-win.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: The exact top-level keys of a metrics snapshot dict.  The unified
#: :func:`repro.experiments.report.render` dispatcher uses this to tell a
#: metrics snapshot apart from a figure series (both are dicts of dicts).
SNAPSHOT_KEYS = ("counters", "gauges", "timers")


@dataclass
class TimerStat:
    """Histogram summary of one timer: count/total/min/max seconds."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.minimum, 6) if self.count else 0.0,
            "max": round(self.maximum, 6),
        }

    def merge(self, other: "TimerStat") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and timers.

    All mutators are no-ops while ``enabled`` is ``False``, so a disabled
    registry costs one attribute check per call — the overhead budget of
    DESIGN.md §8 depends on that.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration in the timer histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._timers.setdefault(name, TimerStat()).observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dict of every instrument, keys sorted (see module doc)."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
                "gauges": {
                    name: round(self._gauges[name], 6)
                    for name in sorted(self._gauges)
                },
                "timers": {
                    name: self._timers[name].to_dict()
                    for name in sorted(self._timers)
                },
            }

    # -- fork marshalling --------------------------------------------------

    def export(self) -> dict[str, dict]:
        """Picklable form for crossing the worker/parent boundary."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: (stat.count, stat.total, stat.minimum, stat.maximum)
                    for name, stat in self._timers.items()
                },
            }

    def merge(self, exported: dict[str, dict]) -> None:
        """Fold a worker's :meth:`export` into this registry.

        Counters and timers add; gauges last-write-win (the merge order is
        the workers' completion order, matching what a sequential run
        would have left behind only approximately — gauges are point-in-
        time readings, not accumulations, so this is the honest choice).
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in exported.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in exported.get("gauges", {}).items():
                self._gauges[name] = value
            for name, packed in exported.get("timers", {}).items():
                count, total, minimum, maximum = packed
                self._timers.setdefault(name, TimerStat()).merge(
                    TimerStat(
                        count=count,
                        total=total,
                        minimum=minimum,
                        maximum=maximum,
                    )
                )

    def reset(self) -> None:
        """Drop every instrument (run/test boundary hygiene)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


def is_metrics_snapshot(artifact: object) -> bool:
    """True when ``artifact`` looks like a :meth:`MetricsRegistry.snapshot`."""
    return (
        isinstance(artifact, dict)
        and set(artifact) == set(SNAPSHOT_KEYS)
        and all(isinstance(artifact[key], dict) for key in SNAPSHOT_KEYS)
    )
