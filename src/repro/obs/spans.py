"""Hierarchical trace spans: where a regeneration actually spends time.

A *span* covers one named unit of work (``span("sweep", dataset="Ds4")``)
and records wall and CPU seconds, an ok/degraded/failed status, and its
parent span — so a full run yields a tree: sweeps containing matcher
evaluations containing nothing, assessments beside them. Completed spans
land in an in-memory :class:`TraceCollector` and, when a cache directory
is configured, are appended as one JSON line each to ``trace.jsonl``
(append-only, like the checkpoint journal — a crash loses at most the
in-flight span).

Parenting uses a :mod:`contextvars` stack, so spans nest correctly across
the deadline threads of :class:`repro.runtime.policy.ExecutionPolicy`
(which copies its context into the worker thread) and across ``fork``:
a pool worker inherits the parent process's open-span stack, so a matcher
span opened inside a worker carries the parent's sweep span id and the
re-assembled trace is shaped exactly like a sequential run's.

Fork marshalling: a worker calls :meth:`TraceCollector.begin_capture`
(forget inherited completed spans, stop writing the trace file — the
parent stays the single writer), runs its unit, and ships
:meth:`TraceCollector.export` back; the parent's
:meth:`TraceCollector.ingest` re-attaches orphaned roots under whatever
span is active at the merge point.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Allowed span statuses, in increasing severity.
STATUSES = ("ok", "degraded", "failed")

_SPAN_STACK: contextvars.ContextVar[tuple[str, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)

_SEQUENCE = itertools.count(1)


def _new_span_id() -> str:
    """Process-unique span id; the pid prefix keeps fork children distinct."""
    return f"{os.getpid():x}-{next(_SEQUENCE):x}"


@dataclass
class Span:
    """One completed unit of traced work."""

    span_id: str
    parent_id: str | None
    name: str
    attributes: dict[str, Any]
    start_time: float
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    status: str = "ok"
    error: str | None = None

    def set_status(self, status: str, error: str | None = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown span status {status!r}; expected {STATUSES}")
        self.status = status
        if error is not None:
            self.error = error

    def mark_degraded(self) -> None:
        """Record partial failure without overriding a hard ``failed``."""
        if self.status != "failed":
            self.status = "degraded"

    def identity(self) -> tuple:
        """The id-free identity used to compare traces across worker counts."""
        return (
            self.name,
            tuple(sorted((k, repr(v)) for k, v in self.attributes.items())),
            self.status,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": self.attributes,
            "start": round(self.start_time, 6),
            "wall_s": round(self.wall_seconds, 6),
            "cpu_s": round(self.cpu_seconds, 6),
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            span_id=str(payload["span"]),
            parent_id=payload.get("parent"),
            name=str(payload["name"]),
            attributes=dict(payload.get("attrs") or {}),
            start_time=float(payload.get("start", 0.0)),
            wall_seconds=float(payload.get("wall_s", 0.0)),
            cpu_seconds=float(payload.get("cpu_s", 0.0)),
            status=str(payload.get("status", "ok")),
            error=payload.get("error"),
        )


@dataclass
class _ActiveSpan:
    """Book-keeping for a span that is still open (profiler sampling)."""

    span_id: str
    parent_id: str | None
    label: str
    started: float = field(default_factory=time.perf_counter)
    record: "Span | None" = None


class TraceCollector:
    """In-memory span sink plus the optional append-only JSONL trace file."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._active: dict[str, _ActiveSpan] = {}
        self._trace_path: Path | None = None
        self._run_id: str | None = None

    # -- trace file --------------------------------------------------------

    @property
    def run_id(self) -> str | None:
        return self._run_id

    @property
    def trace_path(self) -> Path | None:
        return self._trace_path

    def attach_file(self, path: Path | str, run_id: str) -> None:
        """Append this collector's spans to ``path``, tagged with ``run_id``."""
        self._trace_path = Path(path)
        self._run_id = run_id

    def detach_file(self) -> None:
        self._trace_path = None

    def _write_line(self, span: Span) -> None:
        if self._trace_path is None:
            return
        record = {"run": self._run_id, **span.to_dict()}
        try:
            self._trace_path.parent.mkdir(parents=True, exist_ok=True)
            with self._trace_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            # Tracing must never take a run down; drop the line.
            self.detach_file()

    # -- span lifecycle ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of whatever span is active in this context."""
        if not self.enabled:
            yield Span(
                span_id="disabled",
                parent_id=None,
                name=name,
                attributes=attributes,
                start_time=0.0,
            )
            return
        stack = _SPAN_STACK.get()
        record = Span(
            span_id=_new_span_id(),
            parent_id=stack[-1] if stack else None,
            name=name,
            attributes=attributes,
            start_time=time.time(),
        )
        token = _SPAN_STACK.set(stack + (record.span_id,))
        with self._lock:
            self._active[record.span_id] = _ActiveSpan(
                span_id=record.span_id,
                parent_id=record.parent_id,
                label=_label(name, attributes),
                record=record,
            )
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield record
        except BaseException as exc:
            record.set_status("failed", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            record.wall_seconds = time.perf_counter() - wall_start
            record.cpu_seconds = time.process_time() - cpu_start
            _SPAN_STACK.reset(token)
            with self._lock:
                self._active.pop(record.span_id, None)
                self._spans.append(record)
            self._write_line(record)

    def current_span_id(self) -> str | None:
        stack = _SPAN_STACK.get()
        return stack[-1] if stack else None

    def annotate(self, **attributes: Any) -> bool:
        """Merge *attributes* into the innermost open span of this context.

        Lets deep layers (the resource guard above all) stamp state onto
        the unit span that is running them — e.g. which degradation level
        a sweep ran under — without threading the span object through
        every call. Returns False when no span is open (annotations are
        best-effort, never an error).
        """
        span_id = self.current_span_id()
        if span_id is None:
            return False
        with self._lock:
            info = self._active.get(span_id)
            if info is None or info.record is None:
                return False
            info.record.attributes.update(attributes)
        return True

    # -- accessors ---------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def active_spans(self) -> list[_ActiveSpan]:
        with self._lock:
            return list(self._active.values())

    def active_leaf_labels(self) -> list[str]:
        """Labels of active spans with no active children (profiler units)."""
        with self._lock:
            parents = {info.parent_id for info in self._active.values()}
            return [
                info.label
                for info in self._active.values()
                if info.span_id not in parents
            ]

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._active.clear()

    # -- fork marshalling --------------------------------------------------

    def begin_capture(self) -> None:
        """Start a fresh capture inside a fork worker.

        Drops completed spans inherited from the parent and detaches the
        trace file so the parent process remains its single writer. The
        contextvar stack is deliberately left alone: it carries the ids of
        the parent's open spans, which is exactly the parentage worker
        spans should record.
        """
        self.reset()
        self.detach_file()

    def export(self) -> list[dict[str, Any]]:
        """Picklable form of every completed span (worker → parent)."""
        return [span.to_dict() for span in self.spans()]

    def ingest(self, exported: list[dict[str, Any]]) -> None:
        """Merge spans marshalled back from a worker.

        A span whose parent is neither in the batch nor already known to
        this collector is re-attached under the currently active span (or
        becomes a root), so single-dataset fan-outs keep their sweep →
        matcher shape.
        """
        if not self.enabled or not exported:
            return
        imported_ids = {str(entry["span"]) for entry in exported}
        with self._lock:
            known = {span.span_id for span in self._spans}
            known.update(self._active)
        fallback_parent = self.current_span_id()
        for entry in exported:
            span = Span.from_dict(entry)
            if span.parent_id is not None and span.parent_id not in imported_ids \
                    and span.parent_id not in known:
                span.parent_id = fallback_parent
            with self._lock:
                self._spans.append(span)
            self._write_line(span)


def _label(name: str, attributes: dict[str, Any]) -> str:
    if not attributes:
        return name
    detail = ",".join(f"{key}={value}" for key, value in sorted(attributes.items()))
    return f"{name}[{detail}]"


def read_trace(path: Path | str) -> dict[str, list[Span]]:
    """Parse a ``trace.jsonl`` file into ``run_id -> spans`` (file order).

    Tolerates a truncated final line (crash mid-append), like the
    checkpoint journal loader.
    """
    source = Path(path)
    runs: dict[str, list[Span]] = {}
    if not source.exists():
        return runs
    for line in source.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict) or "span" not in entry:
            continue
        runs.setdefault(str(entry.get("run")), []).append(Span.from_dict(entry))
    return runs
