"""Zero-dependency observability: trace spans, metrics, profiling hooks.

The paper's verdicts hinge on a handful of expensive matcher sweeps;
this package makes a regeneration *legible* — where the wall-clock goes
(:mod:`~repro.obs.spans`), how much of what happened
(:mod:`~repro.obs.metrics`), and which units are hottest
(:mod:`~repro.obs.probe`) — without adding a dependency or measurable
overhead (DESIGN.md §8 budgets ≤2%, enforced by
``benchmarks/bench_obs.py``).

One :class:`Observability` instance bundles a trace collector, a metrics
registry and the probe list. A process-wide instance is active by
default, mirroring how :mod:`repro.runtime.faults` works: low-level code
(cache readers, execution policies, matchers, blockers) calls the
module-level helpers —

    from repro import obs

    obs.inc("cache.hit")
    with obs.span("sweep", dataset="Ds4") as sweep_span:
        ...
    obs.observe("matcher.fit_seconds", dt)

— and everything lands in the active instance. Tests and embedders swap
in their own via :func:`activate` (restore the previous one afterwards).
Fork workers of :mod:`repro.runtime.parallel` capture their spans and
metric deltas and marshal them back to the parent collector, so a
``--workers N`` run produces the same span set and counter values as a
sequential one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator
from uuid import uuid4

from repro.obs.metrics import (
    SNAPSHOT_KEYS,
    LatencyHistogram,
    MetricsRegistry,
    TimerStat,
    is_metrics_snapshot,
)
from repro.obs.probe import PhaseAccumulator, Probe, SamplingProfiler
from repro.obs.spans import STATUSES, Span, TraceCollector, read_trace

__all__ = [
    "STATUSES",
    "SNAPSHOT_KEYS",
    "LatencyHistogram",
    "MetricsRegistry",
    "Observability",
    "PhaseAccumulator",
    "Probe",
    "SamplingProfiler",
    "Span",
    "TimerStat",
    "TraceCollector",
    "activate",
    "active",
    "annotate",
    "counter",
    "gauge",
    "inc",
    "is_metrics_snapshot",
    "new_run_id",
    "observe",
    "phase",
    "read_trace",
    "snapshot",
    "span",
    "timed",
]

#: File name of the append-only trace inside a cache directory.
TRACE_FILE_NAME = "trace.jsonl"


def new_run_id() -> str:
    """A fresh opaque run id for tagging trace-file lines."""
    return uuid4().hex[:12]


class Observability:
    """One coherent observability surface: spans + metrics + probes."""

    def __init__(self, enabled: bool = True) -> None:
        self.trace = TraceCollector(enabled=enabled)
        self.metrics = MetricsRegistry(enabled=enabled)
        self.probes: list[Probe] = []
        self.profiler = SamplingProfiler(self.trace)

    # -- enablement --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.trace.enabled

    def enable(self) -> None:
        self.trace.enabled = True
        self.metrics.enabled = True

    def disable(self) -> None:
        self.trace.enabled = False
        self.metrics.enabled = False

    # -- span / metric shorthands -----------------------------------------

    def span(self, name: str, **attributes: Any):
        return self.trace.span(name, **attributes)

    def annotate(self, **attributes: Any) -> bool:
        return self.trace.annotate(**attributes)

    def inc(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, seconds: float) -> None:
        self.metrics.observe(name, seconds)

    def timed(self, name: str):
        return self.metrics.time(name)

    def snapshot(self) -> dict[str, dict]:
        return self.metrics.snapshot()

    # -- probes ------------------------------------------------------------

    def add_probe(self, probe: Probe) -> None:
        self.probes.append(probe)

    def remove_probe(self, probe: Probe) -> None:
        if probe in self.probes:
            self.probes.remove(probe)

    def phase(self, unit: str, phase_name: str, seconds: float) -> None:
        """Phase-boundary hook: notify probes and feed the phase timer."""
        if not self.enabled:
            return
        self.metrics.observe(f"phase.{phase_name}", seconds)
        for probe in self.probes:
            probe.on_phase(unit, phase_name, seconds)

    # -- fork marshalling --------------------------------------------------

    def begin_worker_capture(self) -> None:
        """Called inside a fork worker before a unit: capture only its own."""
        self.trace.begin_capture()
        self.metrics.reset()

    def export_worker_capture(self) -> dict[str, Any] | None:
        """The worker's spans and metric deltas, picklable (worker → parent)."""
        if not self.enabled:
            return None
        return {"spans": self.trace.export(), "metrics": self.metrics.export()}

    def ingest_worker_capture(self, exported: dict[str, Any] | None) -> None:
        """Fold a worker's capture into this (parent) instance."""
        if exported is None or not self.enabled:
            return
        self.trace.ingest(exported.get("spans") or [])
        self.metrics.merge(exported.get("metrics") or {})

    def reset(self) -> None:
        """Clear spans, metrics and probe/profiler state (test hygiene)."""
        self.trace.reset()
        self.trace.detach_file()
        self.metrics.reset()
        self.probes.clear()
        self.profiler.stop()
        self.profiler.reset()


_ACTIVE = Observability()


def active() -> Observability:
    """The process-wide instance every module-level helper routes to."""
    return _ACTIVE


def activate(observability: Observability) -> Observability:
    """Install ``observability`` as the active instance; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = observability
    return previous


@contextmanager
def use(observability: Observability) -> Iterator[Observability]:
    """Activate an instance for a ``with`` block, then restore the old one."""
    previous = activate(observability)
    try:
        yield observability
    finally:
        activate(previous)


# -- module-level helpers (the API low-level code calls) -------------------


def span(name: str, **attributes: Any):
    """Open a span on the active instance (context manager)."""
    return _ACTIVE.span(name, **attributes)


def annotate(**attributes: Any) -> bool:
    """Stamp attributes onto the innermost open span of the active instance."""
    return _ACTIVE.annotate(**attributes)


def inc(name: str, value: float = 1.0) -> None:
    _ACTIVE.inc(name, value)


def gauge(name: str, value: float) -> None:
    _ACTIVE.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    _ACTIVE.observe(name, seconds)


def timed(name: str):
    """Time a ``with`` block into the active registry's timer ``name``."""
    return _ACTIVE.timed(name)


def phase(unit: str, phase_name: str, seconds: float) -> None:
    _ACTIVE.phase(unit, phase_name, seconds)


def snapshot() -> dict[str, dict]:
    return _ACTIVE.snapshot()


def counter(name: str) -> float:
    """Current value of a counter on the active instance (0 if never hit)."""
    return _ACTIVE.metrics.counter(name)
