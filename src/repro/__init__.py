"""repro — reproduction of "A Critical Re-evaluation of Record Linkage
Benchmarks for Learning-Based Matching Algorithms" (ICDE 2024).

The package implements the paper's full apparatus:

* :mod:`repro.core` — the four difficulty measures (degree of linearity,
  the 17 complexity measures, non-linear boost, learning-based margin), the
  combined assessment verdict, the Section VI benchmark-construction
  methodology, and extensions (difficulty continuum, leakage analysis);
* :mod:`repro.matchers` — the evaluation roster: 6 linear ESDE variants,
  Magellan (4 heads), ZeroER, and five deep-matcher stand-ins;
* :mod:`repro.blocking` — token/q-gram/sorted-neighborhood blocking, the
  DeepBlocker equivalent, PC/PQ evaluation and the recall-targeted tuner;
* :mod:`repro.datasets` — synthetic equivalents of the 13 established
  benchmarks and the 8 Table V source pairs;
* :mod:`repro.embeddings` — the synthetic pre-trained language model
  (static / contextual / sentence embedders);
* :mod:`repro.ml` — from-scratch numpy estimators;
* :mod:`repro.data` — records, pair sets, matching tasks, CSV round-trip;
* :mod:`repro.experiments` — the table/figure harness, paper comparison,
  SVG rendering and the ``python -m repro`` CLI.

* :mod:`repro.obs` — zero-dependency observability: trace spans, a
  metrics registry and profiling hooks, shared by every layer above;
* :mod:`repro.runtime` — fault-tolerant execution (policies, cache
  envelopes, checkpoint journal, process-pool scheduling);
* :mod:`repro.serve` — resident matching sessions: a fitted matcher plus
  an incremental ANN index answering queries online (``python -m repro
  serve``).

Quickstart::

    from repro import default_runner, render
    from repro.experiments.tables import table3

    print(render(table3(default_runner()), title="Table III"))

or, assessing one dataset directly::

    from repro.datasets import load_established_task
    from repro.core import assess_benchmark

    task = load_established_task("Ds4")
    print(assess_benchmark(task).summary())

The facade below re-exports the runner/reporting surface so common use
needs only ``from repro import ...``.
"""

__version__ = "1.0.0"

# The obs package is stdlib-only and imported by low-level modules
# (runtime.cache, matchers.base); importing it first keeps the facade's
# heavier imports below free of partially-initialised-package surprises.
from repro import obs
from repro.obs import Observability
from repro.experiments.report import render
from repro.experiments.runner import (
    ExperimentRunner,
    RunnerConfig,
    default_runner,
)
from repro.runtime import ExecutionPolicy
from repro.serve import MatcherSession, SessionConfig, open_session

__all__ = [
    "ExecutionPolicy",
    "ExperimentRunner",
    "MatcherSession",
    "Observability",
    "RunnerConfig",
    "SessionConfig",
    "__version__",
    "default_runner",
    "obs",
    "open_session",
    "render",
]
