"""Matching algorithms: the paper's full roster.

Three families (Section IV):

* **DL-based** (:mod:`repro.matchers.deep`) — neural stand-ins for
  DeepMatcher, EMTransformer (B/R), GNEM, DITTO and HierMatcher, each
  faithful to its taxonomy row (Table II).
* **Non-neural, non-linear ML** — :class:`MagellanMatcher` (DT/LR/RF/SVM
  heads over automatically extracted similarity features) and
  :class:`ZeroERMatcher` (unsupervised Gaussian-mixture EM).
* **Non-neural, linear** — the six ESDE variants of Algorithm 2
  (:mod:`repro.matchers.esde`).

Every matcher follows the :class:`Matcher` API: ``fit(task)`` trains on the
task's training/validation sets, ``predict(pairs)`` labels a pair set, and
``evaluate(task)`` reports test-set precision/recall/F1.
"""

from repro.matchers.base import Matcher, MatcherResult
from repro.matchers.esde import (
    ESDE_VARIANTS,
    EsdeMatcher,
    make_esde,
)
from repro.matchers.magellan import MAGELLAN_HEADS, MagellanMatcher
from repro.matchers.oracle import OracleMatcher
from repro.matchers.zeroer import ZeroERMatcher

__all__ = [
    "ESDE_VARIANTS",
    "EsdeMatcher",
    "MAGELLAN_HEADS",
    "MagellanMatcher",
    "Matcher",
    "MatcherResult",
    "OracleMatcher",
    "ZeroERMatcher",
    "make_esde",
]
