"""Best-F1 threshold selection shared by Algorithm 1 and the ESDE matchers.

Both sweep thresholds over [0.01, 0.99] with step 0.01 and keep the first
threshold attaining the maximum F1. Re-exported from the linearity module so
there is a single implementation.
"""

from repro.core.linearity import best_threshold_f1

__all__ = ["best_threshold_f1"]
