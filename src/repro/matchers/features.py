"""Pair feature extraction for the linear and ML-based matchers.

Two families of feature vectors:

* **ESDE features** (Section IV-C): schema-agnostic or per-attribute
  [cosine, Dice, Jaccard] over tokens (SA/SB), over character q-grams with
  q in [2, 10] (SAQ/SBQ), or [cosine, Euclidean, Wasserstein] similarity
  over sentence embeddings (SAS/SBS).
* **Magellan features** (Section IV-B): per attribute, a battery of
  established similarity functions (token overlap measures, edit-based
  measures, 3-gram Jaccard, numeric similarity) — the "automatically
  extracted features" of the original system.

All features live in [0, 1]. Matrix extraction runs on the vectorized
kernels of :mod:`repro.text.kernels` through the task's shared
:class:`~repro.text.feature_store.FeatureStore` (tokenize/q-gram every
record once, batch the set measures, consult the content-addressed disk
cache when one is active); the per-pair ``features(pair)`` path keeps its
private caches and stays byte-identical to the matrix path — it is the
oracle the parity tests compare against.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.data.task import MatchingTask
from repro.embeddings.distances import (
    cosine_vector_similarity,
    euclidean_similarity,
    wasserstein_similarity,
)
from repro.embeddings.provider import sentence_embedder_for_task
from repro.text.feature_store import FeatureStore, store_for_task
from repro.text.kernels import SET_MEASURES
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import qgrams, tokenize

#: q-gram lengths of the SAQ/SBQ variants (Section IV-C: q in [2, 10]).
QGRAM_RANGE: tuple[int, ...] = tuple(range(2, 11))

#: Caps that keep the edit-based Magellan features affordable on long values.
_EDIT_MAX_CHARS = 32
_MONGE_ELKAN_MAX_TOKENS = 6

PairFeatureFn = Callable[[RecordPair], np.ndarray]


def _set_trio(a: set[str], b: set[str]) -> tuple[float, float, float]:
    """(cosine, dice, jaccard) of two sets."""
    return (
        cosine_similarity(a, b),
        dice_similarity(a, b),
        jaccard_similarity(a, b),
    )


class EsdeFeatureExtractor:
    """Feature vectors for one ESDE variant on one task.

    ``variant`` is one of ``"SA"``, ``"SB"``, ``"SAQ"``, ``"SBQ"``,
    ``"SAS"``, ``"SBS"`` — schema-agnostic/schema-based crossed with
    tokens / q-grams / sentence embeddings.
    """

    VARIANTS = ("SA", "SB", "SAQ", "SBQ", "SAS", "SBS")

    def __init__(self, variant: str, task: MatchingTask) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(
                f"unknown ESDE variant {variant!r}; known: {self.VARIANTS}"
            )
        self.variant = variant
        self.task = task
        self.attributes = task.attributes
        self._token_cache: dict[str, set[str]] = {}
        self._qgram_cache: dict[tuple[str, int], set[str]] = {}
        self._embedding_cache: dict[str, np.ndarray] = {}
        self._embedder = (
            sentence_embedder_for_task(task) if variant in ("SAS", "SBS") else None
        )
        self._store = store_for_task(task)
        # Embedding features depend on the task's fitted vocabulary, which
        # record content alone does not address — keep them out of the
        # content-addressed disk cache.
        self._cacheable = variant not in ("SAS", "SBS")
        self.feature_names = self._build_feature_names()

    def _build_feature_names(self) -> tuple[str, ...]:
        if self.variant == "SA":
            return ("cs", "ds", "js")
        if self.variant == "SB":
            return tuple(
                f"{attr}:{sim}" for attr in self.attributes for sim in ("cs", "ds", "js")
            )
        if self.variant == "SAQ":
            return tuple(
                f"q{q}:{sim}" for q in QGRAM_RANGE for sim in ("cs", "ds", "js")
            )
        if self.variant == "SBQ":
            return tuple(
                f"{attr}:q{q}:{sim}"
                for attr in self.attributes
                for q in QGRAM_RANGE
                for sim in ("cs", "ds", "js")
            )
        if self.variant == "SAS":
            return ("cs", "es", "ws")
        return tuple(  # SBS
            f"{attr}:{sim}" for attr in self.attributes for sim in ("cs", "es", "ws")
        )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    # -- cached record views -------------------------------------------------

    def _record_tokens(self, record: Record, attribute: str | None) -> set[str]:
        key = record.record_id if attribute is None else f"{record.record_id}\x00{attribute}"
        cached = self._token_cache.get(key)
        if cached is None:
            cached = (
                record.tokens() if attribute is None
                else record.attribute_tokens(attribute)
            )
            self._token_cache[key] = cached
        return cached

    def _record_qgrams(
        self, record: Record, q: int, attribute: str | None
    ) -> set[str]:
        suffix = "" if attribute is None else f"\x00{attribute}"
        key = (record.record_id + suffix, q)
        cached = self._qgram_cache.get(key)
        if cached is None:
            text = record.full_text() if attribute is None else record.value(attribute)
            cached = qgrams(text, q)
            self._qgram_cache[key] = cached
        return cached

    def _record_embedding(
        self, record: Record, attribute: str | None
    ) -> np.ndarray:
        assert self._embedder is not None
        key = record.record_id if attribute is None else f"{record.record_id}\x00{attribute}"
        cached = self._embedding_cache.get(key)
        if cached is None:
            cached = (
                self._embedder.embed_record(record)
                if attribute is None
                else self._embedder.embed_attribute(record, attribute)
            )
            self._embedding_cache[key] = cached
        return cached

    # -- feature vectors -----------------------------------------------------

    def _embedding_trio(
        self, pair: RecordPair, attribute: str | None
    ) -> tuple[float, float, float]:
        left = self._record_embedding(pair.left, attribute)
        right = self._record_embedding(pair.right, attribute)
        return (
            cosine_vector_similarity(left, right),
            euclidean_similarity(left, right),
            wasserstein_similarity(left, right),
        )

    def features(self, pair: RecordPair) -> np.ndarray:
        """The variant's feature vector for one pair."""
        values: list[float] = []
        if self.variant == "SA":
            values.extend(
                _set_trio(
                    self._record_tokens(pair.left, None),
                    self._record_tokens(pair.right, None),
                )
            )
        elif self.variant == "SB":
            for attribute in self.attributes:
                values.extend(
                    _set_trio(
                        self._record_tokens(pair.left, attribute),
                        self._record_tokens(pair.right, attribute),
                    )
                )
        elif self.variant == "SAQ":
            for q in QGRAM_RANGE:
                values.extend(
                    _set_trio(
                        self._record_qgrams(pair.left, q, None),
                        self._record_qgrams(pair.right, q, None),
                    )
                )
        elif self.variant == "SBQ":
            for attribute in self.attributes:
                for q in QGRAM_RANGE:
                    values.extend(
                        _set_trio(
                            self._record_qgrams(pair.left, q, attribute),
                            self._record_qgrams(pair.right, q, attribute),
                        )
                    )
        elif self.variant == "SAS":
            values.extend(self._embedding_trio(pair, None))
        else:  # SBS
            for attribute in self.attributes:
                values.extend(self._embedding_trio(pair, attribute))
        return np.asarray(values, dtype=np.float64)

    # -- vectorized matrix path ----------------------------------------------

    def _views(self) -> list[tuple]:
        """The record views backing this variant's columns, in column order.

        Each view contributes one contiguous trio of columns; SAS/SBS
        have no set views (their trios come from embeddings).
        """
        if self.variant == "SA":
            return [("tokens", None)]
        if self.variant == "SB":
            return [("tokens", attr) for attr in self.attributes]
        if self.variant == "SAQ":
            return [("qgrams", None, q) for q in QGRAM_RANGE]
        if self.variant == "SBQ":
            return [
                ("qgrams", attr, q)
                for attr in self.attributes
                for q in QGRAM_RANGE
            ]
        return []

    def _embedding_fn(self, index: int):
        return (
            cosine_vector_similarity,
            euclidean_similarity,
            wasserstein_similarity,
        )[index]

    def _compute_matrix(self, pair_list: list[RecordPair]) -> np.ndarray:
        views = self._views()
        if views:
            # One pair->record index shared by every view's batch.
            records, left_index, right_index = self._store.pair_index(
                pair_list
            )
            blocks = [
                self._store.set_similarities_indexed(
                    records, left_index, right_index, view
                )
                for view in views
            ]
            return np.hstack(blocks)
        # SAS / SBS: embeddings are cached per record; the trio itself is
        # scalar work dominated by the embedding lookups.
        if not pair_list:
            return np.empty((0, self.n_features), dtype=np.float64)
        attributes = [None] if self.variant == "SAS" else list(self.attributes)
        return np.asarray(
            [
                [
                    value
                    for attribute in attributes
                    for value in self._embedding_trio(pair, attribute)
                ]
                for pair in pair_list
            ],
            dtype=np.float64,
        )

    def _compute_column(
        self, pair_list: list[RecordPair], index: int
    ) -> np.ndarray:
        """One feature column as a (n_pairs, 1) matrix."""
        views = self._views()
        if views:
            view = views[index // 3]
            measure = SET_MEASURES[index % 3]
            return self._store.set_similarities(
                pair_list, view, measures=(measure,)
            )
        attribute = None if self.variant == "SAS" else self.attributes[index // 3]
        similarity = self._embedding_fn(index % 3)
        return np.asarray(
            [
                [
                    similarity(
                        self._record_embedding(pair.left, attribute),
                        self._record_embedding(pair.right, attribute),
                    )
                ]
                for pair in pair_list
            ],
            dtype=np.float64,
        ).reshape(len(pair_list), 1)

    def feature_matrix(self, pairs: LabeledPairSet) -> np.ndarray:
        """(n_pairs, n_features) matrix in the pair set's order.

        Vectorized through the task's shared feature store; identical to
        stacking :meth:`features` per pair (the parity-tested oracle).
        """
        pair_list = pairs.pairs
        return self._store.matrix(
            spec=f"esde:{self.variant}",
            pairs=pair_list,
            names=self.feature_names,
            compute=lambda: self._compute_matrix(pair_list),
            cacheable=self._cacheable,
            compute_pairs=lambda subset: self._compute_matrix(list(subset)),
        )

    def feature_column(self, pairs: LabeledPairSet, index: int) -> np.ndarray:
        """One feature's values over *pairs* — the ESDE predict fast path.

        Computes only the selected (view, measure) column instead of the
        variant's full matrix.
        """
        pair_list = pairs.pairs
        name = self.feature_names[index]
        column = self._store.matrix(
            spec=f"esde:{self.variant}:col{index}",
            pairs=pair_list,
            names=(name,),
            compute=lambda: self._compute_column(pair_list, index),
            cacheable=self._cacheable,
            compute_pairs=lambda subset: self._compute_column(
                list(subset), index
            ),
        )
        return column.reshape(len(pair_list))


class MagellanFeatureExtractor:
    """Magellan-style automatic feature extraction, cached per pair.

    Per attribute: token cosine / Dice / Jaccard / overlap, 3-gram Jaccard,
    Levenshtein and Jaro-Winkler similarity on lower-cased values truncated
    to the first ``_EDIT_MAX_CHARS`` characters (truncate-and-compute — no
    fallback; an *empty* value yields 0.0 for both), Monge-Elkan when both
    token lists are non-empty with at most ``_MONGE_ELKAN_MAX_TOKENS``
    tokens (0.5 otherwise — uninformative rather than misleading), and
    numeric similarity when both values parse as numbers (0.5 otherwise).
    """

    _PER_ATTRIBUTE = (
        "cos", "dice", "jac", "overlap", "qg3_jac", "lev", "jw", "me", "num",
    )

    def __init__(
        self, attributes: Sequence[str], store: FeatureStore | None = None
    ) -> None:
        if not attributes:
            raise ValueError("MagellanFeatureExtractor needs attributes")
        self.attributes = tuple(attributes)
        self.feature_names = tuple(
            f"{attr}:{name}" for attr in self.attributes for name in self._PER_ATTRIBUTE
        )
        # The set-measure columns batch through a feature store; pass the
        # task's shared store to reuse its token/q-gram rows.
        self._store = store if store is not None else FeatureStore()
        self._cache: dict[tuple[str, str], np.ndarray] = {}
        # Attribute values repeat heavily (brands, years, genres), so the
        # per-(value, value) similarity battery is memoized independently
        # of which records carry the values. Every measure is symmetric
        # (Monge-Elkan explicitly symmetrized), so keys are canonicalized
        # to sorted order — (b, a) must not recompute (a, b).
        self._value_cache: dict[tuple[str, str], list[float]] = {}
        self._edit_cache: dict[tuple[str, str], tuple[float, float, float, float]] = {}

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @staticmethod
    def _maybe_number(value: str) -> float | None:
        try:
            return float(value)
        except ValueError:
            return None

    def _edit_tail(self, left: str, right: str) -> tuple[float, float, float, float]:
        """The scalar (lev, jw, me, num) quartet, memoized symmetrically."""
        key = (left, right) if left <= right else (right, left)
        cached = self._edit_cache.get(key)
        if cached is not None:
            return cached
        left, right = key
        left_short = left[:_EDIT_MAX_CHARS].lower()
        right_short = right[:_EDIT_MAX_CHARS].lower()
        if left_short and right_short:
            lev = levenshtein_similarity(left_short, right_short)
            jw = jaro_winkler_similarity(left_short, right_short)
        else:
            lev, jw = 0.0, 0.0
        left_tokens = tokenize(left)
        right_tokens = tokenize(right)
        if (
            0 < len(left_tokens) <= _MONGE_ELKAN_MAX_TOKENS
            and 0 < len(right_tokens) <= _MONGE_ELKAN_MAX_TOKENS
        ):
            me = monge_elkan_similarity(left_tokens, right_tokens)
        else:
            me = 0.5
        left_number = self._maybe_number(left)
        right_number = self._maybe_number(right)
        if left_number is not None and right_number is not None:
            num = numeric_similarity(left_number, right_number)
        else:
            num = 0.5
        cached = (lev, jw, me, num)
        self._edit_cache[key] = cached
        return cached

    def _attribute_features(self, left: str, right: str) -> list[float]:
        left_set = set(tokenize(left))
        right_set = set(tokenize(right))
        features = [
            cosine_similarity(left_set, right_set),
            dice_similarity(left_set, right_set),
            jaccard_similarity(left_set, right_set),
            overlap_coefficient(left_set, right_set),
            jaccard_similarity(qgrams(left, 3), qgrams(right, 3)),
        ]
        features.extend(self._edit_tail(left, right))
        return features

    def _cached_attribute_features(self, left: str, right: str) -> list[float]:
        key = (left, right) if left <= right else (right, left)
        cached = self._value_cache.get(key)
        if cached is None:
            cached = self._attribute_features(*key)
            self._value_cache[key] = cached
        return cached

    def features(self, pair: RecordPair) -> np.ndarray:
        cached = self._cache.get(pair.key)
        if cached is None:
            values: list[float] = []
            for attribute in self.attributes:
                values.extend(
                    self._cached_attribute_features(
                        pair.left.value(attribute), pair.right.value(attribute)
                    )
                )
            cached = np.asarray(values, dtype=np.float64)
            self._cache[pair.key] = cached
        return cached

    def _compute_matrix(self, pair_list: list[RecordPair]) -> np.ndarray:
        """Vectorized battery: batched set measures + memoized edit tail."""
        width = len(self._PER_ATTRIBUTE)
        matrix = np.empty((len(pair_list), self.n_features), dtype=np.float64)
        records, left_index, right_index = self._store.pair_index(pair_list)
        for attr_index, attribute in enumerate(self.attributes):
            base = attr_index * width
            matrix[:, base : base + 4] = self._store.set_similarities_indexed(
                records,
                left_index,
                right_index,
                ("tokens", attribute),
                measures=("cosine", "dice", "jaccard", "overlap"),
            )
            matrix[:, base + 4 : base + 5] = (
                self._store.set_similarities_indexed(
                    records,
                    left_index,
                    right_index,
                    ("qgrams", attribute, 3),
                    measures=("jaccard",),
                )
            )
            for row, pair in enumerate(pair_list):
                matrix[row, base + 5 : base + 9] = self._edit_tail(
                    pair.left.value(attribute), pair.right.value(attribute)
                )
        return matrix

    def feature_matrix(self, pairs: LabeledPairSet) -> np.ndarray:
        pair_list = pairs.pairs
        return self._store.matrix(
            spec="magellan",
            pairs=pair_list,
            names=self.feature_names,
            compute=lambda: self._compute_matrix(pair_list),
            compute_pairs=lambda subset: self._compute_matrix(list(subset)),
        )
