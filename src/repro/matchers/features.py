"""Pair feature extraction for the linear and ML-based matchers.

Two families of feature vectors:

* **ESDE features** (Section IV-C): schema-agnostic or per-attribute
  [cosine, Dice, Jaccard] over tokens (SA/SB), over character q-grams with
  q in [2, 10] (SAQ/SBQ), or [cosine, Euclidean, Wasserstein] similarity
  over sentence embeddings (SAS/SBS).
* **Magellan features** (Section IV-B): per attribute, a battery of
  established similarity functions (token overlap measures, edit-based
  measures, 3-gram Jaccard, numeric similarity) — the "automatically
  extracted features" of the original system.

All features live in [0, 1]. Extractors cache per-record token/q-gram sets
and embeddings, because every matcher revisits the same records many times.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.data.task import MatchingTask
from repro.embeddings.distances import (
    cosine_vector_similarity,
    euclidean_similarity,
    wasserstein_similarity,
)
from repro.embeddings.provider import sentence_embedder_for_task
from repro.text.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import qgrams, tokenize

#: q-gram lengths of the SAQ/SBQ variants (Section IV-C: q in [2, 10]).
QGRAM_RANGE: tuple[int, ...] = tuple(range(2, 11))

#: Caps that keep the edit-based Magellan features affordable on long values.
_EDIT_MAX_CHARS = 32
_MONGE_ELKAN_MAX_TOKENS = 6

PairFeatureFn = Callable[[RecordPair], np.ndarray]


def _set_trio(a: set[str], b: set[str]) -> tuple[float, float, float]:
    """(cosine, dice, jaccard) of two sets."""
    return (
        cosine_similarity(a, b),
        dice_similarity(a, b),
        jaccard_similarity(a, b),
    )


class EsdeFeatureExtractor:
    """Feature vectors for one ESDE variant on one task.

    ``variant`` is one of ``"SA"``, ``"SB"``, ``"SAQ"``, ``"SBQ"``,
    ``"SAS"``, ``"SBS"`` — schema-agnostic/schema-based crossed with
    tokens / q-grams / sentence embeddings.
    """

    VARIANTS = ("SA", "SB", "SAQ", "SBQ", "SAS", "SBS")

    def __init__(self, variant: str, task: MatchingTask) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(
                f"unknown ESDE variant {variant!r}; known: {self.VARIANTS}"
            )
        self.variant = variant
        self.task = task
        self.attributes = task.attributes
        self._token_cache: dict[str, set[str]] = {}
        self._qgram_cache: dict[tuple[str, int], set[str]] = {}
        self._embedding_cache: dict[str, np.ndarray] = {}
        self._embedder = (
            sentence_embedder_for_task(task) if variant in ("SAS", "SBS") else None
        )
        self.feature_names = self._build_feature_names()

    def _build_feature_names(self) -> tuple[str, ...]:
        if self.variant == "SA":
            return ("cs", "ds", "js")
        if self.variant == "SB":
            return tuple(
                f"{attr}:{sim}" for attr in self.attributes for sim in ("cs", "ds", "js")
            )
        if self.variant == "SAQ":
            return tuple(
                f"q{q}:{sim}" for q in QGRAM_RANGE for sim in ("cs", "ds", "js")
            )
        if self.variant == "SBQ":
            return tuple(
                f"{attr}:q{q}:{sim}"
                for attr in self.attributes
                for q in QGRAM_RANGE
                for sim in ("cs", "ds", "js")
            )
        if self.variant == "SAS":
            return ("cs", "es", "ws")
        return tuple(  # SBS
            f"{attr}:{sim}" for attr in self.attributes for sim in ("cs", "es", "ws")
        )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    # -- cached record views -------------------------------------------------

    def _record_tokens(self, record: Record, attribute: str | None) -> set[str]:
        key = record.record_id if attribute is None else f"{record.record_id}\x00{attribute}"
        cached = self._token_cache.get(key)
        if cached is None:
            cached = (
                record.tokens() if attribute is None
                else record.attribute_tokens(attribute)
            )
            self._token_cache[key] = cached
        return cached

    def _record_qgrams(
        self, record: Record, q: int, attribute: str | None
    ) -> set[str]:
        suffix = "" if attribute is None else f"\x00{attribute}"
        key = (record.record_id + suffix, q)
        cached = self._qgram_cache.get(key)
        if cached is None:
            text = record.full_text() if attribute is None else record.value(attribute)
            cached = qgrams(text, q)
            self._qgram_cache[key] = cached
        return cached

    def _record_embedding(
        self, record: Record, attribute: str | None
    ) -> np.ndarray:
        assert self._embedder is not None
        key = record.record_id if attribute is None else f"{record.record_id}\x00{attribute}"
        cached = self._embedding_cache.get(key)
        if cached is None:
            cached = (
                self._embedder.embed_record(record)
                if attribute is None
                else self._embedder.embed_attribute(record, attribute)
            )
            self._embedding_cache[key] = cached
        return cached

    # -- feature vectors -----------------------------------------------------

    def _embedding_trio(
        self, pair: RecordPair, attribute: str | None
    ) -> tuple[float, float, float]:
        left = self._record_embedding(pair.left, attribute)
        right = self._record_embedding(pair.right, attribute)
        return (
            cosine_vector_similarity(left, right),
            euclidean_similarity(left, right),
            wasserstein_similarity(left, right),
        )

    def features(self, pair: RecordPair) -> np.ndarray:
        """The variant's feature vector for one pair."""
        values: list[float] = []
        if self.variant == "SA":
            values.extend(
                _set_trio(
                    self._record_tokens(pair.left, None),
                    self._record_tokens(pair.right, None),
                )
            )
        elif self.variant == "SB":
            for attribute in self.attributes:
                values.extend(
                    _set_trio(
                        self._record_tokens(pair.left, attribute),
                        self._record_tokens(pair.right, attribute),
                    )
                )
        elif self.variant == "SAQ":
            for q in QGRAM_RANGE:
                values.extend(
                    _set_trio(
                        self._record_qgrams(pair.left, q, None),
                        self._record_qgrams(pair.right, q, None),
                    )
                )
        elif self.variant == "SBQ":
            for attribute in self.attributes:
                for q in QGRAM_RANGE:
                    values.extend(
                        _set_trio(
                            self._record_qgrams(pair.left, q, attribute),
                            self._record_qgrams(pair.right, q, attribute),
                        )
                    )
        elif self.variant == "SAS":
            values.extend(self._embedding_trio(pair, None))
        else:  # SBS
            for attribute in self.attributes:
                values.extend(self._embedding_trio(pair, attribute))
        return np.asarray(values, dtype=np.float64)

    def feature_matrix(self, pairs: LabeledPairSet) -> np.ndarray:
        """(n_pairs, n_features) matrix in the pair set's order."""
        return np.stack([self.features(pair) for pair, __ in pairs])


class MagellanFeatureExtractor:
    """Magellan-style automatic feature extraction, cached per pair.

    Per attribute: token cosine / Dice / Jaccard / overlap, 3-gram Jaccard,
    Levenshtein and Jaro-Winkler similarity on (truncated) raw values,
    Monge-Elkan on short token lists, and numeric similarity when both
    values parse as numbers. Strings longer than the caps fall back to 0.5
    for the edit measures (uninformative rather than misleading).
    """

    _PER_ATTRIBUTE = (
        "cos", "dice", "jac", "overlap", "qg3_jac", "lev", "jw", "me", "num",
    )

    def __init__(self, attributes: Sequence[str]) -> None:
        if not attributes:
            raise ValueError("MagellanFeatureExtractor needs attributes")
        self.attributes = tuple(attributes)
        self.feature_names = tuple(
            f"{attr}:{name}" for attr in self.attributes for name in self._PER_ATTRIBUTE
        )
        self._cache: dict[tuple[str, str], np.ndarray] = {}
        # Attribute values repeat heavily (brands, years, genres), so the
        # per-(value, value) similarity battery is memoized independently of
        # which records carry the values.
        self._value_cache: dict[tuple[str, str], list[float]] = {}

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @staticmethod
    def _maybe_number(value: str) -> float | None:
        try:
            return float(value)
        except ValueError:
            return None

    def _attribute_features(self, left: str, right: str) -> list[float]:
        left_tokens = tokenize(left)
        right_tokens = tokenize(right)
        left_set = set(left_tokens)
        right_set = set(right_tokens)
        features = [
            cosine_similarity(left_set, right_set),
            dice_similarity(left_set, right_set),
            jaccard_similarity(left_set, right_set),
            overlap_coefficient(left_set, right_set),
            jaccard_similarity(qgrams(left, 3), qgrams(right, 3)),
        ]
        left_short = left[:_EDIT_MAX_CHARS].lower()
        right_short = right[:_EDIT_MAX_CHARS].lower()
        if left_short and right_short:
            features.append(levenshtein_similarity(left_short, right_short))
            features.append(jaro_winkler_similarity(left_short, right_short))
        else:
            features.extend((0.0, 0.0))
        if (
            0 < len(left_tokens) <= _MONGE_ELKAN_MAX_TOKENS
            and 0 < len(right_tokens) <= _MONGE_ELKAN_MAX_TOKENS
        ):
            features.append(monge_elkan_similarity(left_tokens, right_tokens))
        else:
            features.append(0.5)
        left_number = self._maybe_number(left)
        right_number = self._maybe_number(right)
        if left_number is not None and right_number is not None:
            features.append(numeric_similarity(left_number, right_number))
        else:
            features.append(0.5)
        return features

    def _cached_attribute_features(self, left: str, right: str) -> list[float]:
        key = (left, right)
        cached = self._value_cache.get(key)
        if cached is None:
            cached = self._attribute_features(left, right)
            self._value_cache[key] = cached
        return cached

    def features(self, pair: RecordPair) -> np.ndarray:
        cached = self._cache.get(pair.key)
        if cached is None:
            values: list[float] = []
            for attribute in self.attributes:
                values.extend(
                    self._cached_attribute_features(
                        pair.left.value(attribute), pair.right.value(attribute)
                    )
                )
            cached = np.asarray(values, dtype=np.float64)
            self._cache[pair.key] = cached
        return cached

    def feature_matrix(self, pairs: LabeledPairSet) -> np.ndarray:
        return np.stack([self.features(pair) for pair, __ in pairs])
